"""The 25 classic AlphaRegex benchmarks (Table 2 of the paper),
reconstructed.

The paper compares Paresy against AlphaRegex on the 25 introductory-
automata tasks of Lee et al. [2016/2017].  The artifact's exact example
strings are not reproduced in the paper, but the task *concepts* are the
classic textbook binary-language exercises.  Each task here carries a
ground-truth predicate; its example set is generated deterministically:
the first ``n_pos`` positive and ``n_neg`` negative words in shortlex
order with lengths in ``1..max_len`` (``ε`` excluded, mirroring
AlphaRegex's inability to handle the empty string that the paper
notes).

The reconstruction is a documented substitution (see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Tuple

from ..spec import Spec


@dataclass(frozen=True)
class SuiteTask:
    """One reconstructed AlphaRegex benchmark."""

    number: int
    name: str
    description: str
    target: str
    predicate: Callable[[str], bool] = field(compare=False)
    #: Tasks the paper reports as infeasible at some scale (no6, no9,
    #: no14 in Table 2): kept in the suite, skipped by quick harnesses.
    hard: bool = False

    def build_spec(
        self,
        n_pos: int = 10,
        n_neg: int = 10,
        max_len: int = 7,
        include_epsilon: bool = False,
        clamp: bool = False,
    ) -> Spec:
        """Deterministic example set for this task.

        Takes the first ``n_pos``/``n_neg`` matching/non-matching binary
        words in shortlex order (lengths ``1..max_len``, or ``0..`` with
        ``include_epsilon``).  Raises if either class cannot be filled —
        unless ``clamp`` is set, in which case the class is shrunk to
        whatever exists (e.g. "length ≥ 3" has only six short negatives).
        """
        positives, negatives = [], []
        min_len = 0 if include_epsilon else 1
        for length in range(min_len, max_len + 1):
            for letters in itertools.product("01", repeat=length):
                word = "".join(letters)
                if self.predicate(word):
                    if len(positives) < n_pos:
                        positives.append(word)
                else:
                    if len(negatives) < n_neg:
                        negatives.append(word)
            if len(positives) >= n_pos and len(negatives) >= n_neg:
                break
        if len(positives) < n_pos or len(negatives) < n_neg:
            if not clamp:
                raise ValueError(
                    "task %s: not enough examples with max_len=%d"
                    % (self.name, max_len)
                )
            if not positives or not negatives:
                raise ValueError(
                    "task %s: a class is empty even with max_len=%d"
                    % (self.name, max_len)
                )
        return Spec(positives, negatives, alphabet=("0", "1"))


def _count(word: str, symbol: str) -> int:
    return word.count(symbol)


ALPHAREGEX_TASKS: Tuple[SuiteTask, ...] = (
    SuiteTask(1, "no1", "strings starting with 0", "0(0+1)*",
              lambda w: w.startswith("0")),
    SuiteTask(2, "no2", "strings ending with 01", "(0+1)*01",
              lambda w: w.endswith("01")),
    SuiteTask(3, "no3", "strings containing 0101", "(0+1)*0101(0+1)*",
              lambda w: "0101" in w, hard=True),
    SuiteTask(4, "no4", "strings starting with 1 and ending with 0",
              "1(0+1)*0", lambda w: w.startswith("1") and w.endswith("0")),
    SuiteTask(5, "no5", "strings of even length", "((0+1)(0+1))*",
              lambda w: len(w) % 2 == 0),
    SuiteTask(6, "no6", "number of 0s divisible by 3",
              "(1*01*01*0)*1*", lambda w: _count(w, "0") % 3 == 0, hard=True),
    SuiteTask(7, "no7", "strings with at least two 1s",
              "0*10*1(0+1)*", lambda w: _count(w, "1") >= 2),
    SuiteTask(8, "no8", "strings of length at least 3",
              "(0+1)(0+1)(0+1)(0+1)*", lambda w: len(w) >= 3),
    SuiteTask(9, "no9", "even number of 0s and even number of 1s",
              "(00+11+(01+10)(00+11)*(01+10))*",
              lambda w: _count(w, "0") % 2 == 0 and _count(w, "1") % 2 == 0,
              hard=True),
    SuiteTask(10, "no10", "strings without substring 00",
              "1*(011*)*0?", lambda w: "00" not in w),
    SuiteTask(11, "no11", "strings ending with 0", "(0+1)*0",
              lambda w: w.endswith("0")),
    SuiteTask(12, "no12", "strings containing 11", "(0+1)*11(0+1)*",
              lambda w: "11" in w),
    SuiteTask(13, "no13", "every 1 immediately followed by a 0",
              "(0+10)*", lambda w: all(
                  ch != "1" or (i + 1 < len(w) and w[i + 1] == "0")
                  for i, ch in enumerate(w))),
    SuiteTask(14, "no14", "strings starting with 0 or ending with 1",
              "0(0+1)*+(0+1)*1",
              lambda w: w.startswith("0") or w.endswith("1"), hard=True),
    SuiteTask(15, "no15", "strings of odd length", "(0+1)((0+1)(0+1))*",
              lambda w: len(w) % 2 == 1),
    SuiteTask(16, "no16", "first symbol equals last symbol",
              "0(0+1)*0+1(0+1)*1+0+1",
              lambda w: len(w) >= 1 and w[0] == w[-1], hard=True),
    SuiteTask(17, "no17", "strings with at most one 1", "0*1?0*",
              lambda w: _count(w, "1") <= 1),
    SuiteTask(18, "no18", "strings containing 010", "(0+1)*010(0+1)*",
              lambda w: "010" in w),
    SuiteTask(19, "no19", "strings with exactly one 0", "1*01*",
              lambda w: _count(w, "0") == 1),
    SuiteTask(20, "no20", "strings starting with a doubled symbol",
              "(00+11)(0+1)*",
              lambda w: len(w) >= 2 and w[0] == w[1]),
    SuiteTask(21, "no21", "strings containing 101", "(0+1)*101(0+1)*",
              lambda w: "101" in w),
    SuiteTask(22, "no22", "even number of 1s", "(0*10*1)*0*",
              lambda w: _count(w, "1") % 2 == 0, hard=True),
    SuiteTask(23, "no23", "all 1s before all 0s", "1*0*",
              lambda w: "01" not in w),
    SuiteTask(24, "no24", "strings of length at most 3",
              "(0+1)?(0+1)?(0+1)?", lambda w: len(w) <= 3),
    # The paper's footnote notes that the regex Paresy synthesises for
    # no25 (``0+((1+00)(0+1))*``) meets the examples but *not* the English
    # description (it accepts 1111); the target below is the faithful one.
    SuiteTask(25, "no25", "at most one pair of consecutive 1s",
              "(0+10)*1?+(0+10)*11(0+01)*",
              lambda w: sum(
                  1 for i in range(len(w) - 1) if w[i] == w[i + 1] == "1"
              ) <= 1, hard=True),
)


def task_by_name(name: str) -> SuiteTask:
    """Look a task up by its ``noK`` name."""
    for task in ALPHAREGEX_TASKS:
        if task.name == name:
            return task
    raise KeyError(name)


def easy_tasks() -> Tuple[SuiteTask, ...]:
    """The tasks quick harnesses run (the paper's feasible subset)."""
    return tuple(task for task in ALPHAREGEX_TASKS if not task.hard)
