"""Random benchmark generation — the paper's Type 1 and Type 2 schemes.

§4.3 of the paper defines two complementary ways of sampling a
specification ``(P, N)`` with parameters ``Σ`` (alphabet), ``le``
(maximal example length), ``p`` and ``n`` (example counts):

* **Type 1** samples ``p + n`` distinct strings uniformly from
  ``Σ^{≤le}``.  Because there are exponentially more long strings than
  short ones, Type 1 specifications are dominated by long strings.
* **Type 2** first samples a *length* uniformly for every example, then
  a fresh string of that length — so short strings (including ``ε``) are
  likely to appear, which the paper found makes inference
  disproportionately harder.

Both schemes are fully deterministic given a seed.  The paper's
parameter ranges (Type 1: ``p, n ∈ 8..12``, ``le ∈ 0..7``; Type 2:
``p, n ∈ 7..14``, ``le ∈ 0..10``) target a 25 GB A100; the scaled
defaults below target a pure-Python engine and are the ones the
benchmark harness uses (a documented substitution; see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import InvalidSpecError
from ..spec import Spec


@dataclass(frozen=True)
class SuiteParams:
    """Parameter ranges for one generated benchmark suite."""

    alphabet: str = "01"
    le_range: Tuple[int, int] = (3, 5)
    p_range: Tuple[int, int] = (4, 8)
    n_range: Tuple[int, int] = (4, 8)


#: The paper's own ranges (Colab A100 scale — infeasible in pure Python).
PAPER_TYPE1_PARAMS = SuiteParams(le_range=(0, 7), p_range=(8, 12), n_range=(8, 12))
PAPER_TYPE2_PARAMS = SuiteParams(le_range=(0, 10), p_range=(7, 14), n_range=(7, 14))

#: Scaled ranges used by this reproduction's benchmark harness.  Chosen
#: (like the paper chose its ranges for a 25 GB A100) to sit at the edge
#: of what the engines solve in a few seconds: solutions typically cost
#: 8-14 under (1,1,1,1,1), i.e. up to a few hundred thousand candidates.
SCALED_TYPE1_PARAMS = SuiteParams(le_range=(3, 4), p_range=(3, 6), n_range=(3, 6))
SCALED_TYPE2_PARAMS = SuiteParams(le_range=(3, 4), p_range=(3, 6), n_range=(3, 6))


@dataclass(frozen=True)
class GeneratedBenchmark:
    """One named, reproducible benchmark instance."""

    name: str
    benchmark_type: int
    seed: int
    le: int
    n_pos: int
    n_neg: int
    spec: Spec


def _count_strings(alphabet_size: int, max_length: int) -> int:
    return sum(alphabet_size ** i for i in range(max_length + 1))


def _decode_string(index: int, alphabet: Sequence[str]) -> str:
    """The ``index``-th string of ``Σ*`` in shortlex order."""
    size = len(alphabet)
    length = 0
    block = 1
    while index >= block:
        index -= block
        block *= size
        length += 1
    digits: List[str] = []
    for _ in range(length):
        digits.append(alphabet[index % size])
        index //= size
    return "".join(reversed(digits))


def generate_type1(
    seed: int,
    alphabet: str = "01",
    le: int = 5,
    n_pos: int = 6,
    n_neg: int = 6,
) -> Spec:
    """Sample a Type 1 specification (uniform over ``Σ^{≤le}``)."""
    total = _count_strings(len(alphabet), le)
    if n_pos + n_neg > total:
        raise InvalidSpecError(
            "cannot sample %d distinct strings from Σ^≤%d (only %d exist)"
            % (n_pos + n_neg, le, total)
        )
    rng = random.Random("type1|%d|%s|%d|%d|%d" % (seed, alphabet, le, n_pos, n_neg))
    indices = rng.sample(range(total), n_pos + n_neg)
    words = [_decode_string(i, alphabet) for i in indices]
    return Spec(words[:n_pos], words[n_pos:], alphabet=tuple(alphabet))


def generate_type2(
    seed: int,
    alphabet: str = "01",
    le: int = 5,
    n_pos: int = 6,
    n_neg: int = 6,
) -> Spec:
    """Sample a Type 2 specification (uniform length first, then string)."""
    size = len(alphabet)
    capacity = {length: size ** length for length in range(le + 1)}
    if n_pos + n_neg > sum(capacity.values()):
        raise InvalidSpecError(
            "cannot sample %d distinct strings with le=%d" % (n_pos + n_neg, le)
        )
    rng = random.Random("type2|%d|%s|%d|%d|%d" % (seed, alphabet, le, n_pos, n_neg))
    used = {length: set() for length in range(le + 1)}

    def sample_one() -> str:
        open_lengths = [
            length
            for length in range(le + 1)
            if len(used[length]) < capacity[length]
        ]
        length = rng.choice(open_lengths)
        while True:
            word = "".join(rng.choice(alphabet) for _ in range(length))
            if word not in used[length]:
                used[length].add(word)
                return word

    positives = [sample_one() for _ in range(n_pos)]
    negatives = [sample_one() for _ in range(n_neg)]
    return Spec(positives, negatives, alphabet=tuple(alphabet))


def generate_suite(
    benchmark_type: int,
    count: int,
    params: SuiteParams = SCALED_TYPE1_PARAMS,
    base_seed: int = 0,
) -> List[GeneratedBenchmark]:
    """Generate ``count`` named benchmarks with parameters drawn
    uniformly from ``params``' ranges (deterministic in ``base_seed``)."""
    if benchmark_type not in (1, 2):
        raise ValueError("benchmark_type must be 1 or 2")
    sampler = generate_type1 if benchmark_type == 1 else generate_type2
    rng = random.Random("suite|%d|%d" % (benchmark_type, base_seed))
    suite: List[GeneratedBenchmark] = []
    for i in range(count):
        le = rng.randint(*params.le_range)
        n_pos = rng.randint(*params.p_range)
        n_neg = rng.randint(*params.n_range)
        # Clamp counts to the number of available distinct strings so any
        # parameter ranges are safe (relevant only for tiny ``le``).
        capacity = _count_strings(len(params.alphabet), le)
        while n_pos + n_neg > capacity:
            n_pos = max(1, n_pos - 1)
            n_neg = max(1, n_neg - 1)
        seed = base_seed * 100000 + i
        spec = sampler(
            seed, alphabet=params.alphabet, le=le, n_pos=n_pos, n_neg=n_neg
        )
        suite.append(
            GeneratedBenchmark(
                name="T%d-%03d" % (benchmark_type, i),
                benchmark_type=benchmark_type,
                seed=seed,
                le=le,
                n_pos=n_pos,
                n_neg=n_neg,
                spec=spec,
            )
        )
    return suite
