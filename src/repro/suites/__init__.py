"""Benchmark suites: the paper's Type 1/Type 2 random schemes and the
reconstructed AlphaRegex 25-task suite."""

from .alpharegex_suite import ALPHAREGEX_TASKS, SuiteTask, easy_tasks, task_by_name
from .from_regex import spec_from_regex
from .generator import (
    GeneratedBenchmark,
    PAPER_TYPE1_PARAMS,
    PAPER_TYPE2_PARAMS,
    SCALED_TYPE1_PARAMS,
    SCALED_TYPE2_PARAMS,
    SuiteParams,
    generate_suite,
    generate_type1,
    generate_type2,
)

__all__ = [
    "ALPHAREGEX_TASKS",
    "SuiteTask",
    "easy_tasks",
    "task_by_name",
    "spec_from_regex",
    "GeneratedBenchmark",
    "PAPER_TYPE1_PARAMS",
    "PAPER_TYPE2_PARAMS",
    "SCALED_TYPE1_PARAMS",
    "SCALED_TYPE2_PARAMS",
    "SuiteParams",
    "generate_suite",
    "generate_type1",
    "generate_type2",
]
