"""Deriving labelled specifications from a ground-truth regex.

A common way to build REI benchmarks (and how this reproduction builds
the Lee et al. suite) is to start from a *target* language and label
enumerated words with it.  This module exposes that as a public helper:
``spec_from_regex`` compiles the target to a DFA, enumerates accepted
and rejected words in shortlex order, and packages them as a
:class:`~repro.spec.Spec` — optionally sub-sampled deterministically so
the spec does not consist solely of the shortest words.
"""

from __future__ import annotations

import itertools
import random
from typing import Optional, Sequence

from ..regex import dfa as dfa_mod
from ..regex.ast import Regex
from ..spec import Spec


def spec_from_regex(
    target: Regex,
    alphabet: Sequence[str],
    n_pos: int = 10,
    n_neg: int = 10,
    max_len: int = 8,
    include_epsilon: bool = True,
    seed: Optional[int] = None,
) -> Spec:
    """Build a specification whose ground truth is ``Lang(target)``.

    With ``seed=None`` the first ``n_pos``/``n_neg`` words per class (in
    shortlex order) are taken; with a seed, each class is sampled
    uniformly from all candidate words up to ``max_len`` — deterministic
    for a fixed seed.  Raises ``ValueError`` when a class cannot be
    filled (e.g. asking for negatives of ``(0+1)*``).
    """
    symbols = tuple(sorted(alphabet))
    automaton = dfa_mod.from_regex(target, symbols)
    min_len = 0 if include_epsilon else 1

    positives, negatives = [], []
    for length in range(min_len, max_len + 1):
        for letters in itertools.product(symbols, repeat=length):
            word = "".join(letters)
            (positives if automaton.accepts(word) else negatives).append(word)

    if len(positives) < n_pos or len(negatives) < n_neg:
        raise ValueError(
            "target yields only %d positive / %d negative words up to "
            "length %d" % (len(positives), len(negatives), max_len)
        )
    if seed is None:
        chosen_pos = positives[:n_pos]
        chosen_neg = negatives[:n_neg]
    else:
        rng = random.Random("spec_from_regex|%d" % seed)
        chosen_pos = rng.sample(positives, n_pos)
        chosen_neg = rng.sample(negatives, n_neg)
    return Spec(chosen_pos, chosen_neg, alphabet=symbols)
