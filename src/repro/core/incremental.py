"""Incremental REI — the paper's explicitly-flagged future work.

§5.1 of the paper: "FlashFill is used as an incremental synthesis tool
... Paresy is currently not incremental.  We leave the question of
incrementalising our algorithm as important future work."

This module provides the natural first incrementalisation, exploiting
two observations:

1. **Solution reuse is sound.**  Adding an example only shrinks the
   feasible set.  If the current minimal regex already classifies the
   new example correctly it remains feasible, and since the optimum of
   a subset cannot be cheaper than the optimum of its superset, it
   remains *minimal* — no search at all is needed.
2. **Staging reuse.**  The universe ``ic(P ∪ N)`` and the guide table
   only depend on the example *strings*.  If every infix of a new
   example is already a universe word, both staged structures are
   reused verbatim and only the fast search phase re-runs; otherwise
   they are rebuilt (the paper's staging split makes exactly this the
   expensive/cheap boundary).

Example::

    inc = IncrementalSynthesizer(Spec(["10"], ["0"]))
    inc.result.regex_str          # current minimal regex
    inc.add_positive("100")       # cheap or free, see stats
    inc.stats.searches_skipped
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..regex.derivatives import matches
from ..spec import Spec
from .result import SynthesisResult


@dataclass
class IncrementalStats:
    """Bookkeeping of how much work incrementality saved."""

    searches_run: int = 0
    searches_skipped: int = 0
    staging_reuses: int = 0
    staging_rebuilds: int = 0


class IncrementalSynthesizer:
    """A specification that can grow, with cached staging and solution.

    Serving goes through a :class:`~repro.api.session.Session` (pass
    your own to share a backend registry and staging cache with other
    request streams); the incremental-specific *superset* staging reuse
    — the universe may cover more than the current spec's infixes after
    removals and skipped searches — stays here, handed to the session as
    explicit ``universe``/``guide`` overrides.
    """

    def __init__(
        self,
        spec: Spec,
        cost_fn: Optional[CostFunction] = None,
        backend: str = "vector",
        session=None,
        **synth_kwargs,
    ) -> None:
        from ..api.config import EngineConfig, SynthesisRequest
        from ..api.session import Session

        self.cost_fn = cost_fn if cost_fn is not None else CostFunction.uniform()
        self.backend = backend
        config = EngineConfig(
            backend=backend,
            max_cache_size=synth_kwargs.pop("max_cache_size", None),
            use_guide_table=synth_kwargs.pop("use_guide_table", True),
            check_uniqueness=synth_kwargs.pop("check_uniqueness", True),
            max_generated=synth_kwargs.pop("max_generated", None),
        )
        self._request_template = SynthesisRequest(
            spec=spec,
            cost_fn=self.cost_fn,
            max_cost=synth_kwargs.pop("max_cost", None),
            allowed_error=synth_kwargs.pop("allowed_error", 0.0),
            config=config,
        )
        if synth_kwargs:
            raise TypeError(
                "unknown synthesis options: %s" % sorted(synth_kwargs)
            )
        self.session = session if session is not None else Session(config)
        self.stats = IncrementalStats()
        self._spec = spec
        self._universe: Optional[Universe] = None
        self._guide: Optional[GuideTable] = None
        self._result: Optional[SynthesisResult] = None
        self._refresh_staging()
        self._search()

    # ------------------------------------------------------------------
    @property
    def spec(self) -> Spec:
        """The current specification."""
        return self._spec

    @property
    def result(self) -> SynthesisResult:
        """The current synthesis result (kept in sync with the spec)."""
        assert self._result is not None
        return self._result

    # ------------------------------------------------------------------
    def add_positive(self, word: str) -> SynthesisResult:
        """Add a positive example and return the refreshed result."""
        return self._add(word, positive=True)

    def add_negative(self, word: str) -> SynthesisResult:
        """Add a negative example and return the refreshed result."""
        return self._add(word, positive=False)

    def remove_example(self, word: str) -> SynthesisResult:
        """Remove an example (from whichever class holds it).

        Relaxing a specification can lower the optimum, so a removal
        always re-runs the search; staging is reused (the universe may
        then be a superset of ``ic(P ∪ N)``, which is harmless — extra
        words only widen the bitvectors).
        """
        positives = tuple(w for w in self._spec.positive if w != word)
        negatives = tuple(w for w in self._spec.negative if w != word)
        if len(positives) == len(self._spec.positive) and len(negatives) == len(
            self._spec.negative
        ):
            raise KeyError("example %r not in the specification" % (word,))
        self._spec = Spec(positives, negatives, alphabet=self._spec.alphabet)
        self.stats.staging_reuses += 1
        self._search()
        return self.result

    # ------------------------------------------------------------------
    def _add(self, word: str, positive: bool) -> SynthesisResult:
        # Preserve the configured alphabet, widened by any new characters.
        alphabet = tuple(sorted(set(self._spec.alphabet) | set(word)))
        if positive:
            new_spec = Spec(self._spec.positive + (word,),
                            self._spec.negative, alphabet=alphabet)
        else:
            new_spec = Spec(self._spec.positive,
                            self._spec.negative + (word,), alphabet=alphabet)
        self._spec = new_spec

        current = self._result.regex if self._result is not None else None
        if (
            current is not None
            and self._result.found
            and matches(current, word) == positive
        ):
            # Observation 1: the cached optimum stays feasible *and*
            # minimal; only the spec recorded in the result changes.
            self.stats.searches_skipped += 1
            self._result.spec = new_spec
            return self.result

        assert self._universe is not None
        # The staged universe must cover *every* current example — words
        # added during skipped searches were never integrated into it.
        # (A universe word's infixes are all present by infix-closure.)
        covered = all(w in self._universe.index for w in self._spec.all_words)
        if covered:
            self.stats.staging_reuses += 1
        else:
            self._refresh_staging()
        self._search()
        return self.result

    def _refresh_staging(self) -> None:
        self._universe = Universe(self._spec.all_words,
                                  alphabet=self._spec.alphabet)
        self._guide = GuideTable(self._universe)
        self.stats.staging_rebuilds += 1

    def _search(self) -> None:
        self.stats.searches_run += 1
        self._result = self.session.synthesize(
            self._request_template.replace(spec=self._spec),
            universe=self._universe,
            guide=self._guide,
        )
