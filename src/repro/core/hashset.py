"""WarpCore-style open-addressing hash sets for uniqueness checking.

The paper's GPU implementation checks uniqueness of freshly-built CSs by
inserting them into a modified WarpCore hash set (Jünger et al. 2020):
open addressing over a power-of-two table of machine words.  This module
reproduces that structure twice:

* :class:`FingerprintHashSet` — the scalar engine's per-candidate set
  (splitmix64 fingerprint mixing, linear probing, amortised growth, an
  ``insert`` that reports whether the key was new — the single
  operation Algorithm 2, line 15, needs);
* :class:`PackedKeySet` — the vectorised engine's batched *two-tier*
  set: one packed fingerprint+ref word per slot probed with double
  hashing, full multi-lane key compares only on fingerprint hits, and
  keys stored once in an append-only dense log.

Both are property-tested against Python's built-in ``set``
(``tests/test_hashset*.py``), including engineered fingerprint
collisions for the two-tier fallback path.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np


_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser — WarpCore's default hasher family."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def fingerprint(key: int) -> int:
    """64-bit fingerprint of an arbitrary-width int key.

    Wide keys (CSs longer than 64 bits) are folded lane-by-lane, mixing
    each 64-bit lane through splitmix64 — the same chunked treatment
    WarpCore applies to multi-word keys.
    """
    if key < 0:
        raise ValueError("keys must be non-negative")
    acc = splitmix64(key & _MASK64)
    key >>= 64
    while key:
        acc = splitmix64(acc ^ (key & _MASK64))
        key >>= 64
    return acc


_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a uint64 array.

    uint64 arithmetic wraps modulo 2⁶⁴, so this is bit-identical to the
    scalar finaliser applied element-wise (property-tested).
    """
    v = values.astype(np.uint64, copy=True)
    v += _SM_GAMMA
    v = (v ^ (v >> np.uint64(30))) * _SM_MUL1
    v = (v ^ (v >> np.uint64(27))) * _SM_MUL2
    return v ^ (v >> np.uint64(31))


#: Odd multipliers for the per-lane fingerprint fold (splitmix64 of the
#: lane number, forced odd).
_LANE_MIX = tuple(
    np.uint64(splitmix64(lane) | 1) for lane in range(1, 9)
)

_SM_S30 = np.uint64(30)
_SM_S27 = np.uint64(27)
_SM_S31 = np.uint64(31)


def _splitmix64_inplace(v: np.ndarray) -> np.ndarray:
    """:func:`splitmix64_array` mutating ``v`` (uint64) in place.

    Bit-identical to the copying variant (uint64 arithmetic wraps the
    same way); one scratch allocation instead of five.
    """
    t = np.empty_like(v)
    v += _SM_GAMMA
    np.right_shift(v, _SM_S30, out=t)
    v ^= t
    v *= _SM_MUL1
    np.right_shift(v, _SM_S27, out=t)
    v ^= t
    v *= _SM_MUL2
    np.right_shift(v, _SM_S31, out=t)
    v ^= t
    return v


#: Probe-round tail threshold: once at most this many rows are still
#: unresolved, a sequential scalar loop finishes the batch — the fixed
#: cost of a full numpy round is far larger than probing a handful of
#: rows one slot at a time.
_SCALAR_TAIL = 24

#: Largest slot-table size whose probe arithmetic still fits int32
#: (slot + step stays below 2**31); beyond it the index arrays
#: transparently switch to int64.
_INT32_SLOTS = 1 << 30

#: Slot-word layout: high 32 bits fingerprint, low 32 bits ``ref + 1``.
_FP_SHIFT = np.uint64(32)
_REF_MASK = (1 << 32) - 1


class PackedKeySet:
    """Batched two-tier open-addressing set of multi-lane uint64 keys.

    The numpy-native counterpart of :class:`FingerprintHashSet` for the
    vectorised engine: keys are rows of a ``(n, lanes)`` uint64 matrix
    (packed CSs), and the one operation — :meth:`insert_batch` — checks
    and inserts a whole batch with array-level probing, no per-row
    Python loop.  This is the paper's WarpCore uniqueness check: every
    candidate probes the table "in parallel"; contended empty slots are
    claimed by the candidate with the lowest batch index, so the
    returned novelty mask marks exactly the *first* occurrence of each
    distinct key in batch order — the property the engine needs to keep
    its enumeration order bit-identical to the scalar engine's.

    Three design points make the probe loop cheap:

    * **Fingerprint-first probing.**  A probe round compares one
      machine word per candidate — the stored key's 32-bit fingerprint —
      and only the fingerprint-*equal* rows fall back to the full
      ``(lanes)``-wide key compare (tier 2).  Probe cost is independent
      of key width: WarpCore's probing-on-the-hash, generalised to
      multi-word keys.
    * **Dense key log.**  Keys live in an append-only ``(size, lanes)``
      matrix in insertion order; the hash table stores only
      fingerprint + ref.  Winning keys append *contiguously*, and
      rehashing moves slot words only — never keys.
    * **One word per slot.**  Fingerprint and ref pack into a single
      uint64 (``fp << 32 | ref + 1``; 0 = empty slot), so claiming a
      slot is one random write and probing one random read — half the
      cache misses of separate fingerprint/ref tables.
    """

    __slots__ = (
        "_lanes",
        "_table",
        "_claim",
        "_dense_keys",
        "_dense_fps",
        "_mask",
        "_size",
        "_max_load",
    )

    def __init__(
        self,
        lanes: int,
        initial_capacity: int = 1024,
        max_load: float = 0.6,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if not (0.1 <= max_load < 1.0):
            raise ValueError("max_load must be in [0.1, 1.0)")
        capacity = 2
        while capacity < initial_capacity:
            capacity <<= 1
        self._lanes = lanes
        self._allocate_slots(capacity)
        self._dense_keys = np.zeros((64, lanes), dtype=np.uint64)
        self._dense_fps = np.zeros(64, dtype=np.uint32)
        self._size = 0
        self._max_load = max_load

    def _allocate_slots(self, capacity: int) -> None:
        """Fresh (empty) slot table of ``capacity`` one-word entries.

        The zero slot word means empty, so the table allocates as
        untouched zero pages; the claim scratch may hold garbage — every
        entry is written before it is read within a probing round.
        """
        self._table = np.zeros(capacity, dtype=np.uint64)
        itype = np.int64 if capacity > _INT32_SLOTS else np.int32
        # Claim-arbitration scratch (see :meth:`_claim_won`).
        self._claim = np.empty(capacity, dtype=itype)
        self._mask = capacity - 1

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current table size (a power of two)."""
        return self._mask + 1

    @property
    def lanes(self) -> int:
        """Number of uint64 lanes per key."""
        return self._lanes

    def keys(self) -> np.ndarray:
        """The stored keys, in first-insertion order (read-only view)."""
        return self._dense_keys[: self._size]

    def _fingerprints(self, rows: np.ndarray) -> np.ndarray:
        """32-bit fingerprint per row: mix the lanes, then one splitmix64.

        Lanes fold with per-lane odd multipliers (a multilinear hash)
        and the splitmix64 finaliser scrambles the sum — one finaliser
        pass per batch instead of one per lane.  Fingerprint equality is
        only ever a *filter* (tier 2 compares full keys), so the mixing
        quality trades against per-batch cost, not correctness.  The
        zero fingerprint is remapped to 1: slot word 0 means "empty".
        """
        acc = rows[:, 0].astype(np.uint64, copy=True)
        for lane in range(1, self._lanes):
            acc ^= rows[:, lane] * _LANE_MIX[(lane - 1) % len(_LANE_MIX)]
        acc = _splitmix64_inplace(acc)
        fps = acc.astype(np.uint32)
        fps[fps == 0] = 1
        return fps

    def _probe_start(self, fps: np.ndarray):
        """Home slot and double-hashing step per row.

        Both derive from the stored 32-bit fingerprint — the *only*
        per-key datum that survives a rehash — so insertion, lookup,
        rehash and the scalar tails all walk identical probe sequences.
        The step is forced odd (coprime with the power-of-two capacity),
        so every walk visits every slot.
        """
        wide = fps.astype(np.int64)
        itype = self._claim.dtype
        idx = (wide & self._mask).astype(itype)
        steps = (((wide >> 7) | 1) & self._mask).astype(itype)
        return idx, steps

    def _ensure_dense(self, extra: int) -> None:
        """Grow the dense key log so ``extra`` appends surely fit."""
        needed = self._size + extra
        if needed >= _REF_MASK:
            raise OverflowError(
                "PackedKeySet supports at most 2**32 - 2 stored keys"
            )
        capacity = self._dense_keys.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((capacity, self._lanes), dtype=np.uint64)
        grown[: self._size] = self._dense_keys[: self._size]
        self._dense_keys = grown
        grown_fps = np.zeros(capacity, dtype=np.uint32)
        grown_fps[: self._size] = self._dense_fps[: self._size]
        self._dense_fps = grown_fps

    def _claim_won(self, empty: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Arbitrate contended empty slots: lowest batch index wins.

        ``empty`` holds the batch indices probing an empty slot this
        round, in ascending order, and ``slots`` their probe slots;
        returns the boolean won-mask over them.  Scattering the claims
        in *descending* batch order makes the last (= lowest-index)
        write win, so arbitration costs one reversed scatter + one
        gather — no per-round sort, no ``ufunc.at``.
        """
        claim = self._claim
        claim[slots[::-1]] = empty[::-1]
        return claim.take(slots) == empty

    def _place(self, rows: np.ndarray, fps: np.ndarray, winners: np.ndarray,
               slots: np.ndarray) -> None:
        """Append the winning rows to the dense log and publish their
        packed slot words to the claimed ``slots``."""
        count = int(winners.size)
        lo = self._size
        np.take(rows, winners, axis=0, out=self._dense_keys[lo : lo + count])
        won_fps = fps.take(winners)
        self._dense_fps[lo : lo + count] = won_fps
        words = won_fps.astype(np.uint64)
        words <<= _FP_SHIFT
        words |= np.arange(lo + 1, lo + count + 1, dtype=np.uint64)
        self._table[slots] = words
        self._size = lo + count

    def _reserve(self, extra: int) -> None:
        """Grow (and vectorised-rehash) so ``extra`` keys surely fit."""
        needed = self._size + extra
        new_capacity = self.capacity
        while needed > self._max_load * new_capacity:
            new_capacity *= 2
        if new_capacity != self.capacity:
            self._rehash(new_capacity)

    def _rehash(self, new_capacity: int) -> None:
        """Dedicated no-novelty rehash into ``new_capacity`` slots.

        Stored keys are distinct by construction, so re-placement never
        compares keys or fingerprints and never derives a novelty mask:
        every pending ref either claims an empty slot or advances past
        an occupied one.  The old slot table is dropped *before* the new
        one is allocated, and the keys themselves never move (they live
        in the dense log), so peak rehash memory is the new slot table
        plus the dense log — not old table + new table + a copy of
        every key.
        """
        size = self._size
        fps = self._dense_fps[:size]
        self._allocate_slots(new_capacity)
        if size == 0:
            return
        table = self._table
        idx, steps = self._probe_start(fps)
        pending = np.arange(size, dtype=self._claim.dtype)
        while pending.size > _SCALAR_TAIL:
            slots = idx.take(pending)
            used = table.take(slots) != 0
            keep = used.copy()  # blocked refs advance and stay pending
            empty_pos = np.flatnonzero(~used)
            if empty_pos.size:
                empty = pending.take(empty_pos)
                empty_slots = slots.take(empty_pos)
                won = self._claim_won(empty, empty_slots)
                winners = empty.compress(won)
                words = fps.take(winners).astype(np.uint64)
                words <<= _FP_SHIFT
                words |= winners.astype(np.uint64) + np.uint64(1)
                table[empty_slots.compress(won)] = words
                keep[empty_pos.compress(~won)] = True  # losers re-probe
            blocked = pending.compress(used)
            idx[blocked] = (idx.take(blocked) + steps.take(blocked)) & self._mask
            pending = pending.compress(keep)
        mask = self._mask
        for p in pending:
            p = int(p)
            slot = int(idx[p])
            step = int(steps[p])
            while table[slot]:
                slot = (slot + step) & mask
            table[slot] = (int(fps[p]) << 32) | (p + 1)

    def insert_batch(self, rows: np.ndarray) -> np.ndarray:
        """Insert a ``(n, lanes)`` batch; return the novelty mask.

        ``mask[i]`` is True iff row ``i`` is the first occurrence of its
        key — not present before the call and not preceded by an equal
        row within the batch.  Equivalent to ``n`` sequential
        ``FingerprintHashSet.insert`` calls, evaluated with batched
        linear probing: per probing round every unresolved row either
        resolves against an occupied slot (duplicate), claims an empty
        slot (lowest batch index wins contended slots), or advances.

        Fingerprints are computed once for the whole batch; a probe
        round compares them against the slot words first and only the
        fingerprint-equal rows run the ``(lanes)``-wide key compare.
        Two equal rows always probe the same slot sequence in lockstep,
        so the first-occurrence property is preserved exactly: the
        earlier one wins the claim (or resolves first), the later one
        re-probes the now-decided slot and resolves as a duplicate.
        """
        if rows.ndim != 2 or rows.shape[1] != self._lanes:
            raise ValueError("rows must have shape (n, %d)" % self._lanes)
        n = rows.shape[0]
        is_new = np.zeros(n, dtype=bool)
        if n == 0:
            return is_new
        self._reserve(n)
        self._ensure_dense(n)
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        fps = self._fingerprints(rows)
        wide_fps = fps.astype(np.uint64)  # pre-widened for tier-1 compares
        idx, steps = self._probe_start(fps)
        pending = np.arange(n, dtype=self._claim.dtype)
        table = self._table
        first_round = True
        if self._size == 0 and n > _SCALAR_TAIL:
            # Empty-table shortcut: every row probes an empty home slot,
            # so the first round is pure claim arbitration — no table
            # gather, no fingerprint compares — and the won-mask *is*
            # the novelty mask so far.
            won = self._claim_won(pending, idx)
            is_new = won.copy()
            winners = pending.compress(won)
            self._place(rows, fps, winners, idx.compress(won))
            pending = pending.compress(~won)
            first_round = False
        while pending.size > _SCALAR_TAIL:
            # The first round probes every row at its home slot, so the
            # ``pending`` indirection is the identity there.
            if first_round:
                slots, row_fps = idx, wide_fps
            else:
                slots = idx.take(pending)
                row_fps = wide_fps.take(pending)
            # Tier 1 reads one word per candidate: slot word 0 means
            # empty, its high half is the stored key's fingerprint.
            words = table.take(slots)
            empty_mask = words == 0
            fp_hit = (words >> _FP_SHIFT) == row_fps
            advance = ~(empty_mask | fp_hit)
            hit_pos = np.flatnonzero(fp_hit)
            if hit_pos.size:
                # Tier 2: full-key compare only on fingerprint hits;
                # engineered collisions advance like any mismatch.  The
                # ref is already in hand — the low half of the word.
                colliding = pending.take(hit_pos)
                hit_refs = (
                    words.take(hit_pos).astype(np.int64) & _REF_MASK
                ) - 1
                equal = (
                    self._dense_keys.take(hit_refs, axis=0)
                    == rows.take(colliding, axis=0)
                ).all(axis=1)
                advance[hit_pos.compress(~equal)] = True
            keep = advance.copy()
            empty_pos = np.flatnonzero(empty_mask)
            if empty_pos.size:
                empty = pending.take(empty_pos)
                empty_slots = slots.take(empty_pos)
                won = self._claim_won(empty, empty_slots)
                winners = empty.compress(won)
                self._place(rows, fps, winners, empty_slots.compress(won))
                is_new[winners] = True
                keep[empty_pos.compress(~won)] = True  # losers re-probe
            advancing = pending.compress(advance)
            idx[advancing] = (
                idx.take(advancing) + steps.take(advancing)
            ) & self._mask
            pending = pending.compress(keep)
            first_round = False
        # Scalar tail: resolve the last few rows sequentially (ascending
        # batch order preserves first-occurrence novelty exactly).
        if pending.size:
            self._insert_tail(rows, fps, idx, steps, pending, is_new)
        return is_new

    def _insert_tail(
        self,
        rows: np.ndarray,
        fps: np.ndarray,
        idx: np.ndarray,
        steps: np.ndarray,
        pending: np.ndarray,
        is_new: np.ndarray,
    ) -> None:
        """Sequential per-row probing for the tail of a batch — the
        fixed cost of a numpy round dwarfs probing a handful of rows."""
        mask = self._mask
        table = self._table
        for p in pending:
            p = int(p)
            fp = int(fps[p])
            row = rows[p]
            row_bytes = row.tobytes()
            slot = int(idx[p])
            step = int(steps[p])
            while True:
                word = int(table[slot])
                if word == 0:
                    lo = self._size
                    self._dense_keys[lo] = row
                    self._dense_fps[lo] = fp
                    table[slot] = (fp << 32) | (lo + 1)
                    self._size = lo + 1
                    is_new[p] = True
                    break
                if (
                    (word >> 32) == fp
                    and self._dense_keys[(word & 0xFFFFFFFF) - 1].tobytes()
                    == row_bytes
                ):
                    break
                slot = (slot + step) & mask

    def contains_batch(self, rows: np.ndarray) -> np.ndarray:
        """Batched membership probe: ``mask[i]`` iff row ``i`` is stored.

        Pure lookup — the set is never mutated, so rows equal to each
        other but absent from the set all report False.  The shard
        workers use this as the phase-one filter against their mirror of
        the confirmed key set; probing follows the exact same
        fingerprint-first two-tier walk as :meth:`insert_batch`.
        """
        if rows.ndim != 2 or rows.shape[1] != self._lanes:
            raise ValueError("rows must have shape (n, %d)" % self._lanes)
        n = rows.shape[0]
        present = np.zeros(n, dtype=bool)
        if n == 0 or self._size == 0:
            return present
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        fps = self._fingerprints(rows)
        wide_fps = fps.astype(np.uint64)
        idx, steps = self._probe_start(fps)
        pending = np.arange(n, dtype=self._claim.dtype)
        table = self._table
        while pending.size > _SCALAR_TAIL:
            slots = idx.take(pending)
            words = table.take(slots)
            empty_mask = words == 0  # absent: resolves as False
            fp_hit = (words >> _FP_SHIFT) == wide_fps.take(pending)
            advance = ~(empty_mask | fp_hit)
            hit_pos = np.flatnonzero(fp_hit)
            if hit_pos.size:
                colliding = pending.take(hit_pos)
                hit_refs = (
                    words.take(hit_pos).astype(np.int64) & _REF_MASK
                ) - 1
                equal = (
                    self._dense_keys.take(hit_refs, axis=0)
                    == rows.take(colliding, axis=0)
                ).all(axis=1)
                present[colliding.compress(equal)] = True
                advance[hit_pos.compress(~equal)] = True
            advancing = pending.compress(advance)
            idx[advancing] = (
                idx.take(advancing) + steps.take(advancing)
            ) & self._mask
            pending = pending.compress(advance)
        mask = self._mask
        for p in pending:
            p = int(p)
            fp = int(fps[p])
            row_bytes = rows[p].tobytes()
            slot = int(idx[p])
            step = int(steps[p])
            while True:
                word = int(table[slot])
                if word == 0:
                    break
                if (
                    (word >> 32) == fp
                    and self._dense_keys[(word & 0xFFFFFFFF) - 1].tobytes()
                    == row_bytes
                ):
                    present[p] = True
                    break
                slot = (slot + step) & mask
        return present

    def insert_novel_batch(self, rows: np.ndarray) -> None:
        """Bulk-insert rows known to be pairwise distinct and absent.

        The fast path for adopting *pre-filtered* novel keys (the shard
        workers' confirmed-set sync: every broadcast row already
        survived the coordinator's authoritative dedupe).  Like
        :meth:`_rehash`, placement never compares keys or fingerprints —
        every pending ref either claims an empty slot or advances past
        an occupied one — and the rows append contiguously to the dense
        log, so the set ends in the same state ``insert_batch`` would
        produce, at a fraction of the cost.  The caller's guarantee is
        *required*: inserting a duplicate corrupts the set.
        """
        if rows.ndim != 2 or rows.shape[1] != self._lanes:
            raise ValueError("rows must have shape (n, %d)" % self._lanes)
        n = rows.shape[0]
        if n == 0:
            return
        self._reserve(n)
        self._ensure_dense(n)
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        fps = self._fingerprints(rows)
        lo = self._size
        self._dense_keys[lo : lo + n] = rows
        self._dense_fps[lo : lo + n] = fps
        self._size = lo + n
        table = self._table
        ref_base = np.uint64(lo + 1)
        idx, steps = self._probe_start(fps)
        pending = np.arange(n, dtype=self._claim.dtype)
        while pending.size > _SCALAR_TAIL:
            slots = idx.take(pending)
            used = table.take(slots) != 0
            keep = used.copy()  # blocked refs advance and stay pending
            empty_pos = np.flatnonzero(~used)
            if empty_pos.size:
                empty = pending.take(empty_pos)
                empty_slots = slots.take(empty_pos)
                won = self._claim_won(empty, empty_slots)
                winners = empty.compress(won)
                words = fps.take(winners).astype(np.uint64)
                words <<= _FP_SHIFT
                words |= winners.astype(np.uint64) + ref_base
                table[empty_slots.compress(won)] = words
                keep[empty_pos.compress(~won)] = True  # losers re-probe
            blocked = pending.compress(used)
            idx[blocked] = (
                idx.take(blocked) + steps.take(blocked)
            ) & self._mask
            pending = pending.compress(keep)
        mask = self._mask
        for p in pending:
            p = int(p)
            slot = int(idx[p])
            step = int(steps[p])
            while table[slot]:
                slot = (slot + step) & mask
            table[slot] = (int(fps[p]) << 32) | (lo + p + 1)


class FingerprintHashSet:
    """Open-addressing hash set of non-negative int keys.

    ``capacity`` is always a power of two; the load factor is kept below
    ``max_load`` by doubling.  ``insert`` returns True iff the key was not
    present — mirroring WarpCore's insert semantics used for CS
    uniqueness checking.
    """

    __slots__ = ("_slots", "_mask", "_size", "_max_load")

    _EMPTY: Optional[int] = None

    def __init__(self, initial_capacity: int = 1024, max_load: float = 0.6) -> None:
        if initial_capacity < 2:
            initial_capacity = 2
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        if not (0.1 <= max_load < 1.0):
            raise ValueError("max_load must be in [0.1, 1.0)")
        self._slots: List[Optional[int]] = [self._EMPTY] * capacity
        self._mask = capacity - 1
        self._size = 0
        self._max_load = max_load

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current table size (a power of two)."""
        return self._mask + 1

    def __contains__(self, key: int) -> bool:
        slots = self._slots
        index = fingerprint(key) & self._mask
        while True:
            slot = slots[index]
            if slot is self._EMPTY:
                return False
            if slot == key:
                return True
            index = (index + 1) & self._mask

    def insert(self, key: int) -> bool:
        """Insert ``key``; return True iff it was new (Algorithm 2, l.15)."""
        if (self._size + 1) > self._max_load * self.capacity:
            self._grow()
        slots = self._slots
        index = fingerprint(key) & self._mask
        while True:
            slot = slots[index]
            if slot is self._EMPTY:
                slots[index] = key
                self._size += 1
                return True
            if slot == key:
                return False
            index = (index + 1) & self._mask

    def _grow(self) -> None:
        old = self._slots
        new_capacity = self.capacity * 2
        self._slots = [self._EMPTY] * new_capacity
        self._mask = new_capacity - 1
        self._size = 0
        for key in old:
            if key is not self._EMPTY:
                self.insert(key)

    def __iter__(self) -> Iterator[int]:
        return (key for key in self._slots if key is not self._EMPTY)
