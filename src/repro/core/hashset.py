"""A WarpCore-style open-addressing hash set for uniqueness checking.

The paper's GPU implementation checks uniqueness of freshly-built CSs by
inserting them into a modified WarpCore hash set (Jünger et al. 2020):
open addressing over a power-of-two table of machine words.  This module
reproduces that structure in Python: splitmix64 fingerprint mixing,
linear probing, amortised growth, and an ``insert`` that reports whether
the key was new — the single operation Algorithm 2 (line 15) needs.

The scalar engine uses this class; its behaviour is property-tested
against Python's built-in ``set``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from .bitops import popcount

_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser — WarpCore's default hasher family."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def fingerprint(key: int) -> int:
    """64-bit fingerprint of an arbitrary-width int key.

    Wide keys (CSs longer than 64 bits) are folded lane-by-lane, mixing
    each 64-bit lane through splitmix64 — the same chunked treatment
    WarpCore applies to multi-word keys.
    """
    if key < 0:
        raise ValueError("keys must be non-negative")
    acc = splitmix64(key & _MASK64)
    key >>= 64
    while key:
        acc = splitmix64(acc ^ (key & _MASK64))
        key >>= 64
    return acc


_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_MUL2 = np.uint64(0x94D049BB133111EB)


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over a uint64 array.

    uint64 arithmetic wraps modulo 2⁶⁴, so this is bit-identical to the
    scalar finaliser applied element-wise (property-tested).
    """
    v = values.astype(np.uint64, copy=True)
    v += _SM_GAMMA
    v = (v ^ (v >> np.uint64(30))) * _SM_MUL1
    v = (v ^ (v >> np.uint64(27))) * _SM_MUL2
    return v ^ (v >> np.uint64(31))


class PackedKeySet:
    """Batched open-addressing set of multi-lane uint64 keys.

    The numpy-native counterpart of :class:`FingerprintHashSet` for the
    vectorised engine: keys are rows of a ``(n, lanes)`` uint64 matrix
    (packed CSs), and the one operation — :meth:`insert_batch` — checks
    and inserts a whole batch with array-level probing, no per-row
    Python loop.  This is the paper's WarpCore uniqueness check: every
    candidate probes the table "in parallel"; contended empty slots are
    claimed by the candidate with the lowest batch index, so the
    returned novelty mask marks exactly the *first* occurrence of each
    distinct key in batch order — the property the engine needs to keep
    its enumeration order bit-identical to the scalar engine's.
    """

    __slots__ = ("_lanes", "_keys", "_used", "_mask", "_size", "_max_load")

    def __init__(
        self,
        lanes: int,
        initial_capacity: int = 1024,
        max_load: float = 0.6,
    ) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        if not (0.1 <= max_load < 1.0):
            raise ValueError("max_load must be in [0.1, 1.0)")
        capacity = 2
        while capacity < initial_capacity:
            capacity <<= 1
        self._lanes = lanes
        self._keys = np.zeros((capacity, lanes), dtype=np.uint64)
        self._used = np.zeros(capacity, dtype=bool)
        self._mask = capacity - 1
        self._size = 0
        self._max_load = max_load

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current table size (a power of two)."""
        return self._mask + 1

    @property
    def lanes(self) -> int:
        """Number of uint64 lanes per key."""
        return self._lanes

    def _fingerprints(self, rows: np.ndarray) -> np.ndarray:
        """Fold each row's lanes through splitmix64 (chunked, WarpCore-style)."""
        acc = splitmix64_array(rows[:, 0])
        for lane in range(1, self._lanes):
            acc = splitmix64_array(acc ^ rows[:, lane])
        return acc

    def _reserve(self, extra: int) -> None:
        """Grow (and vectorised-rehash) so ``extra`` keys surely fit."""
        needed = self._size + extra
        new_capacity = self.capacity
        while needed > self._max_load * new_capacity:
            new_capacity *= 2
        if new_capacity == self.capacity:
            return
        old_keys = self._keys[self._used]
        self._keys = np.zeros((new_capacity, self._lanes), dtype=np.uint64)
        self._used = np.zeros(new_capacity, dtype=bool)
        self._mask = new_capacity - 1
        self._size = 0
        if old_keys.shape[0]:
            self.insert_batch(old_keys)

    def insert_batch(self, rows: np.ndarray) -> np.ndarray:
        """Insert a ``(n, lanes)`` batch; return the novelty mask.

        ``mask[i]`` is True iff row ``i`` is the first occurrence of its
        key — not present before the call and not preceded by an equal
        row within the batch.  Equivalent to ``n`` sequential
        ``FingerprintHashSet.insert`` calls, evaluated with batched
        linear probing: per probing round every unresolved row either
        resolves against an occupied slot (duplicate), claims an empty
        slot (lowest batch index wins contended slots), or advances.
        """
        if rows.ndim != 2 or rows.shape[1] != self._lanes:
            raise ValueError("rows must have shape (n, %d)" % self._lanes)
        n = rows.shape[0]
        is_new = np.zeros(n, dtype=bool)
        if n == 0:
            return is_new
        self._reserve(n)
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        idx = (
            self._fingerprints(rows) & np.uint64(self._mask)
        ).astype(np.int64)
        pending = np.arange(n, dtype=np.int64)
        while pending.size:
            slots = idx[pending]
            used = self._used[slots]
            advancing = pending[:0]
            occupied = pending[used]
            if occupied.size:
                equal = (self._keys[idx[occupied]] == rows[occupied]).all(axis=1)
                advancing = occupied[~equal]
                idx[advancing] = (idx[advancing] + 1) & self._mask
            losers = pending[:0]
            empty = pending[~used]
            if empty.size:
                # ``empty`` ascends, so a stable sort by slot keeps batch
                # order within each contended group: the first entry per
                # slot claims it, the rest re-probe the now-used slot.
                order = np.argsort(idx[empty], kind="stable")
                contenders = empty[order]
                slot_ids = idx[contenders]
                first = np.ones(contenders.size, dtype=bool)
                first[1:] = slot_ids[1:] != slot_ids[:-1]
                winners = contenders[first]
                losers = contenders[~first]
                self._keys[idx[winners]] = rows[winners]
                self._used[idx[winners]] = True
                is_new[winners] = True
                self._size += int(winners.size)
            pending = np.sort(np.concatenate((advancing, losers)))
        return is_new


class FingerprintHashSet:
    """Open-addressing hash set of non-negative int keys.

    ``capacity`` is always a power of two; the load factor is kept below
    ``max_load`` by doubling.  ``insert`` returns True iff the key was not
    present — mirroring WarpCore's insert semantics used for CS
    uniqueness checking.
    """

    __slots__ = ("_slots", "_mask", "_size", "_max_load")

    _EMPTY: Optional[int] = None

    def __init__(self, initial_capacity: int = 1024, max_load: float = 0.6) -> None:
        if initial_capacity < 2:
            initial_capacity = 2
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        if not (0.1 <= max_load < 1.0):
            raise ValueError("max_load must be in [0.1, 1.0)")
        self._slots: List[Optional[int]] = [self._EMPTY] * capacity
        self._mask = capacity - 1
        self._size = 0
        self._max_load = max_load

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current table size (a power of two)."""
        return self._mask + 1

    def __contains__(self, key: int) -> bool:
        slots = self._slots
        index = fingerprint(key) & self._mask
        while True:
            slot = slots[index]
            if slot is self._EMPTY:
                return False
            if slot == key:
                return True
            index = (index + 1) & self._mask

    def insert(self, key: int) -> bool:
        """Insert ``key``; return True iff it was new (Algorithm 2, l.15)."""
        if (self._size + 1) > self._max_load * self.capacity:
            self._grow()
        slots = self._slots
        index = fingerprint(key) & self._mask
        while True:
            slot = slots[index]
            if slot is self._EMPTY:
                slots[index] = key
                self._size += 1
                return True
            if slot == key:
                return False
            index = (index + 1) & self._mask

    def _grow(self) -> None:
        old = self._slots
        new_capacity = self.capacity * 2
        self._slots = [self._EMPTY] * new_capacity
        self._mask = new_capacity - 1
        self._size = 0
        for key in old:
            if key is not self._EMPTY:
                self.insert(key)

    def __iter__(self) -> Iterator[int]:
        return (key for key in self._slots if key is not self._EMPTY)
