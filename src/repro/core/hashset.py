"""A WarpCore-style open-addressing hash set for uniqueness checking.

The paper's GPU implementation checks uniqueness of freshly-built CSs by
inserting them into a modified WarpCore hash set (Jünger et al. 2020):
open addressing over a power-of-two table of machine words.  This module
reproduces that structure in Python: splitmix64 fingerprint mixing,
linear probing, amortised growth, and an ``insert`` that reports whether
the key was new — the single operation Algorithm 2 (line 15) needs.

The scalar engine uses this class; its behaviour is property-tested
against Python's built-in ``set``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from .bitops import popcount

_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser — WarpCore's default hasher family."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def fingerprint(key: int) -> int:
    """64-bit fingerprint of an arbitrary-width int key.

    Wide keys (CSs longer than 64 bits) are folded lane-by-lane, mixing
    each 64-bit lane through splitmix64 — the same chunked treatment
    WarpCore applies to multi-word keys.
    """
    if key < 0:
        raise ValueError("keys must be non-negative")
    acc = splitmix64(key & _MASK64)
    key >>= 64
    while key:
        acc = splitmix64(acc ^ (key & _MASK64))
        key >>= 64
    return acc


class FingerprintHashSet:
    """Open-addressing hash set of non-negative int keys.

    ``capacity`` is always a power of two; the load factor is kept below
    ``max_load`` by doubling.  ``insert`` returns True iff the key was not
    present — mirroring WarpCore's insert semantics used for CS
    uniqueness checking.
    """

    __slots__ = ("_slots", "_mask", "_size", "_max_load")

    _EMPTY: Optional[int] = None

    def __init__(self, initial_capacity: int = 1024, max_load: float = 0.6) -> None:
        if initial_capacity < 2:
            initial_capacity = 2
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        if not (0.1 <= max_load < 1.0):
            raise ValueError("max_load must be in [0.1, 1.0)")
        self._slots: List[Optional[int]] = [self._EMPTY] * capacity
        self._mask = capacity - 1
        self._size = 0
        self._max_load = max_load

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current table size (a power of two)."""
        return self._mask + 1

    def __contains__(self, key: int) -> bool:
        slots = self._slots
        index = fingerprint(key) & self._mask
        while True:
            slot = slots[index]
            if slot is self._EMPTY:
                return False
            if slot == key:
                return True
            index = (index + 1) & self._mask

    def insert(self, key: int) -> bool:
        """Insert ``key``; return True iff it was new (Algorithm 2, l.15)."""
        if (self._size + 1) > self._max_load * self.capacity:
            self._grow()
        slots = self._slots
        index = fingerprint(key) & self._mask
        while True:
            slot = slots[index]
            if slot is self._EMPTY:
                slots[index] = key
                self._size += 1
                return True
            if slot == key:
                return False
            index = (index + 1) & self._mask

    def _grow(self) -> None:
        old = self._slots
        new_capacity = self.capacity * 2
        self._slots = [self._EMPTY] * new_capacity
        self._mask = new_capacity - 1
        self._size = 0
        for key in old:
            if key is not self._EMPTY:
                self.insert(key)

    def __iter__(self) -> Iterator[int]:
        return (key for key in self._slots if key is not self._EMPTY)
