"""The vectorised ("GPU-sim") engine: batched data-parallel kernels.

This engine reproduces the *structure* of the paper's CUDA
implementation on top of numpy:

* the language cache is one contiguous, power-of-two padded
  ``(n_cs, lanes)`` uint64 bit-matrix (:class:`~repro.core.cache.PackedCache`),
* a cost level is *plane-resident*: each completed level is bit-sliced
  into word planes once (lazily, cached on the
  :class:`~repro.core.cache.PackedCache`), and every concat pairing and
  star fixpoint iteration gathers from those cached planes instead of
  re-transposing operand rows per batch,
* the concatenation kernel folds over every guide-table split with no
  data-dependent early exit (the paper folds "as fast exits are
  data-dependent branching and problematic on GPUs"): every split is
  one AND of two plane rows — 8 candidates per byte — and each word's
  splits collapse with one segmented OR-reduction,
* the Kleene-star fixpoint iterates entirely in plane form, masking out
  converged byte-columns, and un-bit-slices only the final result,
* all pairings of a cost level that share a constructor are *fused*
  into shared solution-check/dedupe/store batches, with pair indices
  generated lazily per block (no O(n²) index materialisation up front),
* uniqueness is a batched probe of a numpy-native fingerprint-first
  two-tier set (:class:`~repro.core.hashset.PackedKeySet` — the
  WarpCore check), and solution checks are evaluated on whole batches
  over only the lanes the specification masks touch.

Enumeration order matches the scalar engine exactly, so both engines
return identical expressions and identical ``generated`` counters; only
the wall-clock differs — which is precisely the comparison Table 1 of
the paper makes.  The kernel design is documented in
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .bitops import (
    bitslice_rows,
    int_to_lanes,
    ints_to_matrix,
    plane_segment,
    unbitslice_rows,
)
from .cache import PackedCache
from .engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
    BudgetExhausted,
    SearchEngine,
    _pair_candidates,
)
from .hashset import PackedKeySet
from .shard import LaneMatcher

#: Byte budget for the concat kernel's bit-sliced gather intermediates
#: (the batch × padded-splits planes).  Word-aligned blocks of the split
#: axis are sized so the gathered planes stay within this budget.
DEFAULT_SPLIT_BLOCK_BYTES = 1 << 25

_FULL_BYTE = np.uint8(255)


class _Kernels:
    """Precompiled index/shift tables and the batched bit-kernels.

    Everything operates on the *bit-sliced* plane layout: one packed
    uint8 row per universe word, one bit per candidate, so each
    guide-table split costs a single AND of two plane rows — 8
    candidates per byte — and each word's splits collapse with one
    vectorised OR-reduction over the uniform-width padded segment.  See
    ``docs/ARCHITECTURE.md`` for why this layout beats row-layout flat
    gathers in numpy.
    """

    def __init__(
        self,
        universe: Universe,
        guide: GuideTable,
        split_block_bytes: int = DEFAULT_SPLIT_BLOCK_BYTES,
    ) -> None:
        flat = guide.flat
        self.n_words = universe.n_words
        self.lanes = universe.lanes
        self.n_splits = flat.n_splits
        self.offsets = flat.offsets
        self.left_padded = flat.left_padded
        self.right_padded = flat.right_padded
        self.pad_width = flat.max_splits_per_word
        self.split_block_bytes = split_block_bytes
        self.eps_index = universe.eps_index
        self.eps_lane = universe.eps_index >> 6
        self.eps_mask = np.uint64(1 << (universe.eps_index & 63))
        self.max_word_length = universe.max_word_length
        # Plane matrices carry 8·ceil(n_words/8) rows (whole bytes).
        self.n_planes = 8 * ((self.n_words + 7) // 8)

    # ------------------------------------------------------------------
    # Plane-level primitives
    # ------------------------------------------------------------------
    def fold_planes(
        self, left_planes: np.ndarray, right_planes: np.ndarray
    ) -> np.ndarray:
        """The concat fold on candidate-aligned planes.

        ``left_planes``/``right_planes`` hold one plane row per universe
        word over the *same* candidate columns; the result's word ``w``
        plane is the OR over ``w``'s splits ``(u, v)`` of
        ``left_planes[u] & right_planes[v]`` — Algorithm 2 with one AND
        per split and one segmented reduction per word.  The split axis
        is blocked (word-aligned) so the gathered intermediates stay
        under ``split_block_bytes``.
        """
        cols = left_planes.shape[1]
        out = np.zeros((self.n_planes, cols), dtype=np.uint8)
        if self.n_splits == 0 or cols == 0:
            return out
        pad = self.pad_width
        block_words = max(1, self.split_block_bytes // (3 * pad * cols))
        for w0 in range(0, self.n_words, block_words):
            w1 = min(w0 + block_words, self.n_words)
            gathered = (
                left_planes.take(
                    self.left_padded[w0 * pad : w1 * pad], axis=0
                )
                & right_planes.take(
                    self.right_padded[w0 * pad : w1 * pad], axis=0
                )
            )
            np.bitwise_or.reduce(
                gathered.reshape(w1 - w0, pad, cols),
                axis=1,
                out=out[w0:w1],
            )
        return out

    def star_planes(self, batch_planes: np.ndarray, m: int) -> np.ndarray:
        """Plane-resident Kleene star: fixpoint of ``res ← res | res·cs``.

        The whole fixpoint runs in plane form — no per-iteration
        transposes.  Byte-columns (groups of 8 candidates) that have
        converged are masked out, so each iteration folds only the
        still-growing remainder; the result is identical to iterating
        the whole batch until global convergence.  Un-bit-slices only
        the final planes.
        """
        cols = batch_planes.shape[1]
        result = np.zeros((self.n_planes, cols), dtype=np.uint8)
        result[self.eps_index] = _FULL_BYTE
        if m == 0 or cols == 0:
            return unbitslice_rows(result, m, self.lanes)
        active = np.arange(cols, dtype=np.int64)
        current = result
        batch_active = batch_planes
        for _ in range(self.max_word_length + 1):
            grown = self.fold_planes(current, batch_active)
            grown |= current
            changed = (grown != current).any(axis=0)
            if not changed.any():
                break
            active = active.compress(changed)
            result[:, active] = grown.compress(changed, axis=1)
            current = result.take(active, axis=1)
            batch_active = batch_planes.take(active, axis=1)
        return unbitslice_rows(result, m, self.lanes)

    def concat_pair_planes(
        self,
        left_planes: np.ndarray,
        right_planes: np.ndarray,
        i0: int,
        i1: int,
    ) -> np.ndarray:
        """Concat over a pair block: left rows ``[i0, i1)`` × all right.

        Both operands arrive as cached *level* planes; the block's batch
        planes are assembled from them with byte-level tile/repeat — the
        right level's planes tile once per left row, and each left row
        contributes a repeated 0x00/0xFF byte mask of its bit — so the
        candidate batch is never bit-sliced and no operand rows are ever
        gathered.  The fold then runs on the assembled planes with full
        batch-length contiguous rows.

        Returns ``(n_planes, (i1 - i0) * b8)`` planes of the *padded*
        pair index ``(i - i0) * b8 * 8 + j``; callers drop the phantom
        ``j >= n_b`` candidates after un-bit-slicing.
        """
        b8 = right_planes.shape[1]
        bi = i1 - i0
        if self.n_splits == 0 or bi == 0 or b8 == 0:
            return np.zeros((self.n_planes, bi * b8), dtype=np.uint8)
        ii = np.arange(i0, i1, dtype=np.int64)
        left_bits = (
            left_planes[:, ii >> 3] >> (ii & 7).astype(np.uint8)
        ) & np.uint8(1)
        left_bits *= _FULL_BYTE
        left_batch = np.repeat(left_bits, b8, axis=1)
        right_batch = (
            np.tile(right_planes, (1, bi))
            if bi > 1
            else np.ascontiguousarray(right_planes)
        )
        return self.fold_planes(left_batch, right_batch)

    # ------------------------------------------------------------------
    # Packed-row entry points (benchmarks, tests, ad-hoc callers)
    # ------------------------------------------------------------------
    def concat(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Batched Algorithm 2 on packed rows: concatenate row ``k`` of
        ``left`` with row ``k`` of ``right`` for every ``k``.

        Bit-slices both operands, folds, and un-bit-slices — the
        row-batch adapter around :meth:`fold_planes`.  The engine's
        level pipeline skips the slicing entirely (cached level planes);
        this entry point serves batches that exist only in row form.
        """
        m = left.shape[0]
        if m == 0 or self.n_splits == 0:
            return np.zeros((m, self.lanes), dtype=np.uint64)
        out = self.fold_planes(
            bitslice_rows(left, self.n_words),
            bitslice_rows(right, self.n_words),
        )
        return unbitslice_rows(out, m, self.lanes)

    def star(self, batch: np.ndarray) -> np.ndarray:
        """Batched Kleene star on packed rows (adapter around
        :meth:`star_planes`)."""
        m = batch.shape[0]
        if m == 0:
            result = np.zeros((m, self.lanes), dtype=np.uint64)
            return result
        return self.star_planes(bitslice_rows(batch, self.n_words), m)

    def question(self, batch: np.ndarray) -> np.ndarray:
        """Batched option: set the ε bit of every row."""
        out = batch.copy()
        out[:, self.eps_lane] |= self.eps_mask
        return out


class VectorEngine(SearchEngine):
    """Data-parallel bottom-up synthesis over a packed CS matrix."""

    def __init__(
        self,
        spec: Spec,
        cost_fn: CostFunction,
        universe: Universe,
        guide: GuideTable,
        max_cache_size: Optional[int] = None,
        allowed_error: float = 0.0,
        use_guide_table: bool = True,
        check_uniqueness: bool = True,
        max_generated: Optional[int] = None,
        shard_workers: int = 1,
        max_batch: int = 1 << 17,
        split_block_bytes: int = DEFAULT_SPLIT_BLOCK_BYTES,
    ) -> None:
        super().__init__(
            spec,
            cost_fn,
            universe,
            guide,
            max_cache_size=max_cache_size,
            allowed_error=allowed_error,
            use_guide_table=use_guide_table,
            check_uniqueness=check_uniqueness,
            max_generated=max_generated,
            shard_workers=shard_workers,
        )
        self._cache = PackedCache(universe.lanes, max_size=max_cache_size)
        self._seen = PackedKeySet(universe.lanes, initial_capacity=1 << 12)
        self._kernels = _Kernels(
            universe, guide, split_block_bytes=split_block_bytes
        )
        self._shard_split_block_bytes = split_block_bytes
        # Star segments slice cached level planes byte-aligned, so the
        # chunk size must be a multiple of 8.
        self._max_batch = max(8, max_batch & ~7)
        self._shard_max_batch = self._max_batch
        self._pos_lanes = int_to_lanes(self.pos_mask, universe.lanes)
        self._neg_lanes = int_to_lanes(self.neg_mask, universe.lanes)
        self._refresh_active_lanes()
        # Fused-emit accumulator: candidate blocks of the current
        # constructor, flushed to `_handle_batch` near `max_batch` rows.
        self._accum: List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = []
        self._accum_rows = 0

    @property
    def cache(self) -> PackedCache:
        return self._cache

    def _refresh_active_lanes(self) -> None:
        """Rebuild the lane-restricted batch matcher (it skips the
        lanes where both spec masks are all-zero — most lanes of a wide
        spec; shard workers run the identical matcher)."""
        self._matcher = LaneMatcher(
            self._pos_lanes, self._neg_lanes, self.max_errors
        )

    def disable_solution_checks(self) -> None:
        """See :meth:`SearchEngine.disable_solution_checks`; also resets
        the precomputed lane-array masks the batched check uses."""
        super().disable_solution_checks()
        self._pos_lanes = int_to_lanes(self.pos_mask, self.universe.lanes)
        self._neg_lanes = int_to_lanes(self.neg_mask, self.universe.lanes)
        self._refresh_active_lanes()

    # ------------------------------------------------------------------
    def _solve_flags(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised ``|= (P, N)`` (error-relaxed when configured),
        restricted to the lanes where the spec masks are nonzero."""
        return self._matcher.flags(rows)

    def _handle_batch(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: Optional[np.ndarray],
    ) -> bool:
        """Solution-check, dedupe and store a batch of candidates.

        Duplicates can never be solutions (their first occurrence was
        already solution-checked when it was constructed), so checking
        solutions before uniqueness is equivalent to Algorithm 2's order
        and keeps the check fully data-parallel.

        The candidate budget is enforced with per-candidate granularity
        (the batch is truncated to the remaining budget), so budget
        verdicts are bit-identical to the scalar engine's.
        """
        truncated = False
        if self.max_generated is not None:
            remaining = self.max_generated - self.generated
            if remaining <= 0:
                raise BudgetExhausted()
            if rows.shape[0] > remaining:
                rows = rows[:remaining]
                a_idx = a_idx[:remaining]
                if b_idx is not None:
                    b_idx = b_idx[:remaining]
                truncated = True
        started = time.perf_counter()
        flags = self._solve_flags(rows)
        self.phase_seconds["solve"] += time.perf_counter() - started
        base = self.generated
        hits = np.flatnonzero(flags)
        if hits.size:
            first = int(hits[0])
            # Count candidates up to and including the solution, and store
            # the non-solution prefix of the batch, so the cache and the
            # ``generated`` counter match the scalar engine's sequential
            # behaviour exactly.
            self.generated = base + first + 1
            if not self.otf:
                self._store_rows(
                    op,
                    rows[:first],
                    a_idx,
                    b_idx,
                    base + 1 + np.arange(first, dtype=np.int64),
                )
            right = -1 if b_idx is None else int(b_idx[first])
            self._record_solution(op, int(a_idx[first]), right, self._current_cost)
            return True
        self.generated = base + rows.shape[0]
        if not self.otf:
            self._store_rows(
                op,
                rows,
                a_idx,
                b_idx,
                base + 1 + np.arange(rows.shape[0], dtype=np.int64),
            )
        if truncated:
            raise BudgetExhausted()
        self._check_budget()
        # The batch is fully stored and the fused-emit accumulator is
        # empty whenever this runs (``_flush`` drains it before calling
        # in), so this is a safe point for partial checkpoints and
        # preemption.
        self._safe_point()
        return False

    def _store_rows(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: Optional[np.ndarray],
        ordinals: np.ndarray,
    ) -> None:
        """Dedupe (order-preserving) and bulk-append a batch to the cache.

        Uniqueness is one batched probe of the packed two-tier hash set;
        its novelty mask marks exactly the first occurrence of each
        distinct key in batch order, so the surviving rows — and
        therefore the cache — are ordered identically to the scalar
        engine's sequential inserts.  No per-row Python loop anywhere.
        """
        if rows.shape[0] == 0:
            return
        contiguous = np.ascontiguousarray(rows)
        if self.check_uniqueness:
            started = time.perf_counter()
            kept = np.flatnonzero(self._seen.insert_batch(contiguous))
            self.phase_seconds["dedupe"] += time.perf_counter() - started
        else:
            kept = np.arange(rows.shape[0], dtype=np.int64)
        if kept.size == 0:
            return
        if self._cache.max_size is not None:
            space = self._cache.max_size - len(self._cache)
            if kept.size > space:
                # Capacity reached mid-batch: store the prefix that fits
                # and enter OnTheFly mode (paper §3), exactly as the
                # scalar engine does one candidate at a time.
                kept = kept[:space]
                self.otf = True
        if kept.size == 0:
            return
        started = time.perf_counter()
        lefts = a_idx[kept]
        if b_idx is None:
            rights = np.full(kept.size, -1, dtype=np.int64)
        else:
            rights = b_idx[kept]
        self._cache.append_rows(
            contiguous[kept], op, lefts, rights, ordinals[kept]
        )
        self.phase_seconds["store"] += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Fused emit accumulator
    # ------------------------------------------------------------------
    def _flush(self, op: int) -> bool:
        """Hand the accumulated candidate blocks to `_handle_batch`."""
        if not self._accum:
            return False
        if len(self._accum) == 1:
            rows, a_idx, b_idx = self._accum[0]
        else:
            rows = np.concatenate([block[0] for block in self._accum])
            a_idx = np.concatenate([block[1] for block in self._accum])
            b_idx = np.concatenate([block[2] for block in self._accum])
        self._accum.clear()
        self._accum_rows = 0
        return self._handle_batch(op, rows, a_idx, b_idx)

    def _push(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: np.ndarray,
    ) -> bool:
        """Accumulate one candidate block; flush near the batch bound."""
        self._accum.append((rows, a_idx, b_idx))
        self._accum_rows += rows.shape[0]
        if self._accum_rows >= self._max_batch:
            return self._flush(op)
        return False

    def _emit_pair_group_serial(
        self,
        op: int,
        pairings: List[Tuple[Tuple[int, int], Tuple[int, int], bool]],
        skip: int = 0,
    ) -> bool:
        """All same-constructor pairings of a level, fused.

        Candidate blocks stream through the shared accumulator in
        enumeration order, so dedupe/solve/store see near-``max_batch``
        batches even when individual pairings are tiny — the batched
        stages' fixed costs amortise across the whole level.  A solution
        found mid-level flushes exactly like the per-pairing emit would:
        the first satisfying candidate in order wins.  A mid-level
        resume offset skips whole pairings structurally and enters the
        pairing containing the resume point at the residual offset.
        """
        self._accum.clear()
        self._accum_rows = 0
        try:
            for pairing in pairings:
                left, right, triangular = pairing
                if skip:
                    count = _pair_candidates(pairing)
                    if skip >= count:
                        skip -= count
                        continue
                pair_skip, skip = skip, 0
                if op == OP_CONCAT:
                    if self._emit_concat_pairs(left, right, pair_skip):
                        return True
                else:
                    if self._emit_union_pairs(
                        left, right, triangular, pair_skip
                    ):
                        return True
            return self._flush(op)
        finally:
            self._accum.clear()
            self._accum_rows = 0

    def _emit_pairs(
        self,
        op: int,
        left: Tuple[int, int],
        right: Tuple[int, int],
        triangular: bool,
        skip: int = 0,
    ) -> bool:
        """One pairing on its own (kept for the `SearchEngine` surface);
        the level loop goes through :meth:`_emit_pair_group`."""
        return self._emit_pair_group(op, [(left, right, triangular)], skip)

    # ------------------------------------------------------------------
    # Intra-query sharding hooks (see repro.core.shard)
    # ------------------------------------------------------------------
    def _shard_rows(self, start: int, end: int) -> np.ndarray:
        return self._cache.matrix[start:end]

    def _apply_shard_outcome(self, op: int, outcome) -> bool:
        """Phase two of the sharded dedupe: the locally-novel survivors
        pass through the engine's normal store path (authoritative
        seen-set insert, order-preserving), and the counters advance by
        the ordinals the partition plan fixed up front — exactly the
        serial batch semantics."""
        base = self.generated
        absolute = base + 1 + outcome.ordinals
        if outcome.hit is not None:
            ordinal, left, right = outcome.hit
            self.generated = base + ordinal + 1
            self._store_rows(
                op, outcome.rows, outcome.a_idx, outcome.b_idx, absolute
            )
            self._record_solution(op, left, right, self._current_cost)
            return True
        self.generated = base + outcome.total
        self._store_rows(
            op, outcome.rows, outcome.a_idx, outcome.b_idx, absolute
        )
        self._check_budget()
        return False

    # ------------------------------------------------------------------
    # Level checkpointing (see SearchEngine.restore_levels)
    # ------------------------------------------------------------------
    def _level_payload(
        self, start: int, end: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        ops, lefts, rights = self._cache.provenance_arrays(start, end)
        return (
            np.array(self._cache.rows(start, end), dtype=np.uint64),
            np.array(ops, dtype=np.int64),
            np.array(lefts, dtype=np.int64),
            np.array(rights, dtype=np.int64),
            np.array(self._cache.gen_ordinals(start, end), dtype=np.int64),
        )

    def _adopt_restored(self, payload, lo: int, hi: int) -> None:
        if hi <= lo:
            return
        rows = np.ascontiguousarray(payload.rows[lo:hi])
        if self.check_uniqueness:
            # Stored cache rows are globally distinct by construction,
            # so the cheap no-probe bulk insert applies.
            self._seen.insert_novel_batch(rows)
        self._cache.append_rows(
            rows,
            payload.ops[lo:hi],
            payload.lefts[lo:hi],
            payload.rights[lo:hi],
            payload.ordinals[lo:hi],
        )

    def _scan_restored(self, payload, limit: int) -> Optional[int]:
        if limit <= 0:
            return None
        rows = np.ascontiguousarray(payload.rows[:limit])
        hits = np.flatnonzero(self._matcher.flags(rows))
        return int(hits[0]) if hits.size else None

    # ------------------------------------------------------------------
    # Concatenation: plane-resident pair blocks
    # ------------------------------------------------------------------
    def _concat_blocks(
        self, n_a: int, n_b: int, b8: int
    ) -> Iterator[Tuple[int, int, int, int]]:
        """Lazy pair blocking: yields ``(i0, i1, c0, c1)`` — left rows
        ``[i0, i1)`` × right byte-columns ``[c0, c1)`` — in enumeration
        order, each block at most ``max_batch`` candidates."""
        if n_b <= self._max_batch:
            bi = max(1, self._max_batch // (b8 * 8))
            for i0 in range(0, n_a, bi):
                yield i0, min(i0 + bi, n_a), 0, b8
        else:
            cb = self._max_batch >> 3  # byte-columns per block
            for i0 in range(n_a):
                for c0 in range(0, b8, cb):
                    yield i0, i0 + 1, c0, min(c0 + cb, b8)

    def _emit_concat_pairs(
        self, left: Tuple[int, int], right: Tuple[int, int], skip: int = 0
    ) -> bool:
        """All concat candidates of one ``(left level, right level)``
        pairing, gathered from the levels' cached planes.

        A mid-level resume offset (``skip``) drops whole pair blocks
        without building them; only the block containing the resume
        point is assembled and sliced past the already-adopted prefix —
        rework is bounded by one block.
        """
        kernels = self._kernels
        n_a = left[1] - left[0]
        n_b = right[1] - right[0]
        n_words = kernels.n_words
        left_planes = self._cache.planes(left[0], left[1], n_words)
        right_planes = self._cache.planes(right[0], right[1], n_words)
        b8 = right_planes.shape[1]
        lanes = kernels.lanes
        right_all = None
        for i0, i1, c0, c1 in self._concat_blocks(n_a, n_b, b8):
            j_lo = c0 * 8
            j_hi = min(c1 * 8, n_b)
            width = j_hi - j_lo
            if skip >= (i1 - i0) * width:
                skip -= (i1 - i0) * width
                continue
            planes = kernels.concat_pair_planes(
                left_planes, right_planes[:, c0:c1], i0, i1
            )
            cb8 = c1 - c0
            padded = unbitslice_rows(planes, (i1 - i0) * cb8 * 8, lanes)
            rows = (
                padded.reshape(i1 - i0, cb8 * 8, lanes)[:, :width]
                .reshape(-1, lanes)
            )
            a_idx = np.repeat(
                np.arange(left[0] + i0, left[0] + i1, dtype=np.int64), width
            )
            if c0 == 0 and c1 == b8:
                if right_all is None:
                    right_all = np.arange(
                        right[0], right[0] + width, dtype=np.int64
                    )
                j_range = right_all
            else:
                j_range = np.arange(
                    right[0] + j_lo, right[0] + j_hi, dtype=np.int64
                )
            b_idx = np.tile(j_range, i1 - i0)
            if skip:
                rows = rows[skip:]
                a_idx = a_idx[skip:]
                b_idx = b_idx[skip:]
                skip = 0
            if self._push(OP_CONCAT, rows, a_idx, b_idx):
                return True
        return False

    # ------------------------------------------------------------------
    # Union: lazy pair blocks on packed rows
    # ------------------------------------------------------------------
    def _union_blocks(
        self, left: Tuple[int, int], right: Tuple[int, int], triangular: bool
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Lazy ``(a_idx, b_idx)`` blocks in enumeration order, at most
        ``max_batch`` pairs each — nothing O(n²) is ever materialised."""
        cap = self._max_batch
        if not triangular:
            n_b = right[1] - right[0]
            total = (left[1] - left[0]) * n_b
            for k0 in range(0, total, cap):
                ks = np.arange(k0, min(k0 + cap, total), dtype=np.int64)
                yield left[0] + ks // n_b, right[0] + ks % n_b
            return
        # Same level on both sides; upper triangle, diagonal excluded.
        start, end = left
        i = start
        while i < end - 1:
            count_i = end - 1 - i
            if count_i > cap:
                # One left row's pairs alone exceed a batch: chunk js.
                for j0 in range(i + 1, end, cap):
                    j1 = min(j0 + cap, end)
                    yield (
                        np.full(j1 - j0, i, dtype=np.int64),
                        np.arange(j0, j1, dtype=np.int64),
                    )
                i += 1
                continue
            total = 0
            i2 = i
            while i2 < end - 1 and total + (end - 1 - i2) <= cap:
                total += end - 1 - i2
                i2 += 1
            lefts = np.arange(i, i2, dtype=np.int64)
            counts = (end - 1) - lefts
            a_idx = np.repeat(lefts, counts)
            offsets = np.zeros(lefts.size, dtype=np.int64)
            np.cumsum(counts[:-1], out=offsets[1:])
            b_idx = (
                np.arange(total, dtype=np.int64)
                - np.repeat(offsets, counts)
                + np.repeat(lefts + 1, counts)
            )
            yield a_idx, b_idx
            i = i2

    def _emit_union_pairs(
        self,
        left: Tuple[int, int],
        right: Tuple[int, int],
        triangular: bool,
        skip: int = 0,
    ) -> bool:
        matrix = self._cache.matrix
        for a_idx, b_idx in self._union_blocks(left, right, triangular):
            if skip:
                # Mid-level resume: drop already-adopted pairs before
                # any rows are gathered.
                if skip >= a_idx.size:
                    skip -= a_idx.size
                    continue
                a_idx = a_idx[skip:]
                b_idx = b_idx[skip:]
                skip = 0
            rows = matrix.take(a_idx, axis=0)
            rows |= matrix.take(b_idx, axis=0)
            if self._push(OP_UNION, rows, a_idx, b_idx):
                return True
        return False

    # ------------------------------------------------------------------
    # Seeding and unary constructors
    # ------------------------------------------------------------------
    def _seed_alphabet(self) -> bool:
        universe = self.universe
        rows = ints_to_matrix(
            [universe.char_cs(symbol) for symbol in universe.alphabet],
            universe.lanes,
        )
        indices = np.arange(len(universe.alphabet), dtype=np.int64)
        return self._handle_batch(OP_CHAR, rows, indices, None)

    def _emit_unary(self, op: int, start: int, end: int) -> bool:
        kernels = self._kernels
        level_planes = (
            self._cache.planes(start, end, kernels.n_words)
            if op == OP_STAR
            else None
        )
        for lo in range(start, end, self._max_batch):
            hi = min(lo + self._max_batch, end)
            if op == OP_QUESTION:
                out = kernels.question(self._cache.rows(lo, hi))
            else:
                # Byte-aligned sub-segment of the cached level planes:
                # the star fixpoint never re-slices the operands.
                segment = plane_segment(level_planes, lo - start, hi - start)
                out = kernels.star_planes(segment, hi - lo)
            indices = np.arange(lo, hi, dtype=np.int64)
            if self._handle_batch(op, out, indices, None):
                return True
        return False
