"""The vectorised ("GPU-sim") engine: batched data-parallel kernels.

This engine reproduces the *structure* of the paper's CUDA
implementation on top of numpy:

* the language cache is one contiguous, power-of-two padded
  ``(n_cs, lanes)`` uint64 bit-matrix (:class:`~repro.core.cache.PackedCache`),
* each ``(constructor, cost-level)`` combination is a single batched
  kernel over *all* candidate operand pairs — the analogue of one CUDA
  kernel launch with one thread per candidate,
* the concatenation/star kernels fold over every guide-table split with
  no data-dependent early exit (the paper folds "as fast exits are
  data-dependent branching and problematic on GPUs"),
* uniqueness and solution checks are evaluated on whole batches.

Enumeration order matches the scalar engine exactly, so both engines
return identical expressions and identical ``generated`` counters; only
the wall-clock differs — which is precisely the comparison Table 1 of
the paper makes.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .bitops import int_to_lanes, popcount_rows
from .cache import PackedCache
from .engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
    SearchEngine,
)

_ONE = np.uint64(1)


class _Kernels:
    """Precompiled index/shift tables and the batched bit-kernels."""

    def __init__(self, universe: Universe, guide: GuideTable) -> None:
        flat = guide.flat
        self.n_words = universe.n_words
        self.lanes = universe.lanes
        self.offsets = flat.offsets
        self.left_lane = (flat.left_index >> 6).astype(np.int64)
        self.left_off = (flat.left_index & 63).astype(np.uint64)
        self.right_lane = (flat.right_index >> 6).astype(np.int64)
        self.right_off = (flat.right_index & 63).astype(np.uint64)
        self.word_lane = np.arange(self.n_words, dtype=np.int64) >> 6
        self.word_off = (np.arange(self.n_words, dtype=np.int64) & 63).astype(
            np.uint64
        )
        self.eps_lane = universe.eps_index >> 6
        self.eps_mask = np.uint64(1 << (universe.eps_index & 63))
        self.max_word_length = universe.max_word_length

    def concat(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Batched Algorithm 2: concatenate row ``k`` of ``left`` with row
        ``k`` of ``right`` for every ``k``, folding over all splits."""
        m = left.shape[0]
        out = np.zeros((m, self.lanes), dtype=np.uint64)
        offsets = self.offsets
        for w in range(self.n_words):
            acc = np.zeros(m, dtype=np.uint64)
            for k in range(offsets[w], offsets[w + 1]):
                left_bit = (left[:, self.left_lane[k]] >> self.left_off[k]) & _ONE
                right_bit = (right[:, self.right_lane[k]] >> self.right_off[k]) & _ONE
                acc |= left_bit & right_bit
            out[:, self.word_lane[w]] |= acc << self.word_off[w]
        return out

    def star(self, batch: np.ndarray) -> np.ndarray:
        """Batched Kleene star: fixpoint of ``res ← res | res·cs``."""
        m = batch.shape[0]
        result = np.zeros((m, self.lanes), dtype=np.uint64)
        result[:, self.eps_lane] |= self.eps_mask
        for _ in range(self.max_word_length + 1):
            grown = result | self.concat(result, batch)
            if np.array_equal(grown, result):
                break
            result = grown
        return result

    def question(self, batch: np.ndarray) -> np.ndarray:
        """Batched option: set the ε bit of every row."""
        out = batch.copy()
        out[:, self.eps_lane] |= self.eps_mask
        return out


class VectorEngine(SearchEngine):
    """Data-parallel bottom-up synthesis over a packed CS matrix."""

    def __init__(
        self,
        spec: Spec,
        cost_fn: CostFunction,
        universe: Universe,
        guide: GuideTable,
        max_cache_size: Optional[int] = None,
        allowed_error: float = 0.0,
        use_guide_table: bool = True,
        check_uniqueness: bool = True,
        max_generated: Optional[int] = None,
        max_batch: int = 1 << 17,
    ) -> None:
        super().__init__(
            spec,
            cost_fn,
            universe,
            guide,
            max_cache_size=max_cache_size,
            allowed_error=allowed_error,
            use_guide_table=use_guide_table,
            check_uniqueness=check_uniqueness,
            max_generated=max_generated,
        )
        self._cache = PackedCache(universe.lanes, max_size=max_cache_size)
        self._seen: Set[bytes] = set()
        self._kernels = _Kernels(universe, guide)
        self._max_batch = max_batch
        self._pos_lanes = int_to_lanes(self.pos_mask, universe.lanes)
        self._neg_lanes = int_to_lanes(self.neg_mask, universe.lanes)
        self._void_dtype = np.dtype((np.void, universe.lanes * 8))

    @property
    def cache(self) -> PackedCache:
        return self._cache

    # ------------------------------------------------------------------
    def _solve_flags(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised ``|= (P, N)`` (error-relaxed when configured)."""
        if self.max_errors == 0:
            pos_ok = ((rows & self._pos_lanes) == self._pos_lanes).all(axis=1)
            neg_ok = ((rows & self._neg_lanes) == 0).all(axis=1)
            return pos_ok & neg_ok
        mistakes = popcount_rows((rows & self._pos_lanes) ^ self._pos_lanes)
        mistakes += popcount_rows(rows & self._neg_lanes)
        return mistakes <= self.max_errors

    def _handle_batch(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: Optional[np.ndarray],
    ) -> bool:
        """Solution-check, dedupe and store a batch of candidates.

        Duplicates can never be solutions (their first occurrence was
        already solution-checked when it was constructed), so checking
        solutions before uniqueness is equivalent to Algorithm 2's order
        and keeps the check fully data-parallel.

        The candidate budget is enforced with per-candidate granularity
        (the batch is truncated to the remaining budget), so budget
        verdicts are bit-identical to the scalar engine's.
        """
        truncated = False
        if self.max_generated is not None:
            remaining = self.max_generated - self.generated
            if remaining <= 0:
                from .engine import BudgetExhausted

                raise BudgetExhausted()
            if rows.shape[0] > remaining:
                rows = rows[:remaining]
                a_idx = a_idx[:remaining]
                if b_idx is not None:
                    b_idx = b_idx[:remaining]
                truncated = True
        flags = self._solve_flags(rows)
        hits = np.flatnonzero(flags)
        if hits.size:
            first = int(hits[0])
            # Count candidates up to and including the solution, and store
            # the non-solution prefix of the batch, so the cache and the
            # ``generated`` counter match the scalar engine's sequential
            # behaviour exactly.
            self.generated += first + 1
            if not self.otf:
                self._store_rows(op, rows[:first], a_idx, b_idx)
            right = -1 if b_idx is None else int(b_idx[first])
            self._record_solution(op, int(a_idx[first]), right, self._current_cost)
            return True
        self.generated += rows.shape[0]
        if not self.otf:
            self._store_rows(op, rows, a_idx, b_idx)
        if truncated:
            from .engine import BudgetExhausted

            raise BudgetExhausted()
        self._check_budget()
        return False

    def _store_rows(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: Optional[np.ndarray],
    ) -> None:
        """Dedupe (order-preserving) and bulk-append a batch to the cache."""
        if rows.shape[0] == 0:
            return
        contiguous = np.ascontiguousarray(rows)
        if self.check_uniqueness:
            keys = contiguous.view(self._void_dtype).ravel()
            _, first_occurrence = np.unique(keys, return_index=True)
            first_occurrence.sort()
            seen = self._seen
            kept = []
            for k in first_occurrence:
                key = contiguous[k].tobytes()
                if key in seen:
                    continue
                seen.add(key)
                kept.append(int(k))
        else:
            kept = list(range(rows.shape[0]))
        if not kept:
            return
        if self._cache.max_size is not None:
            space = self._cache.max_size - len(self._cache)
            if len(kept) > space:
                # Capacity reached mid-batch: store the prefix that fits
                # and enter OnTheFly mode (paper §3), exactly as the
                # scalar engine does one candidate at a time.
                kept = kept[:space]
                self.otf = True
        if not kept:
            return
        if b_idx is None:
            provenance = [(op, int(a_idx[k]), -1) for k in kept]
        else:
            provenance = [(op, int(a_idx[k]), int(b_idx[k])) for k in kept]
        self._cache.append_rows(contiguous[kept], provenance)

    # ------------------------------------------------------------------
    def _seed_alphabet(self) -> bool:
        universe = self.universe
        rows = np.zeros((len(universe.alphabet), universe.lanes), dtype=np.uint64)
        for char_index, symbol in enumerate(universe.alphabet):
            rows[char_index] = int_to_lanes(universe.char_cs(symbol), universe.lanes)
        indices = np.arange(len(universe.alphabet), dtype=np.int64)
        return self._handle_batch(OP_CHAR, rows, indices, None)

    def _emit_unary(self, op: int, start: int, end: int) -> bool:
        kernel = self._kernels.question if op == OP_QUESTION else self._kernels.star
        for lo in range(start, end, self._max_batch):
            hi = min(lo + self._max_batch, end)
            batch = self._cache.rows(lo, hi)
            out = kernel(batch)
            indices = np.arange(lo, hi, dtype=np.int64)
            if self._handle_batch(op, out, indices, None):
                return True
        return False

    def _emit_pairs(
        self,
        op: int,
        left: Tuple[int, int],
        right: Tuple[int, int],
        triangular: bool,
    ) -> bool:
        if triangular:
            # Same level on both sides; upper triangle, diagonal excluded.
            n = left[1] - left[0]
            i_idx, j_idx = np.triu_indices(n, k=1)
            left_idx = (i_idx + left[0]).astype(np.int64)
            right_idx = (j_idx + left[0]).astype(np.int64)
        else:
            n_left = left[1] - left[0]
            n_right = right[1] - right[0]
            left_idx = np.repeat(
                np.arange(left[0], left[1], dtype=np.int64), n_right
            )
            right_idx = np.tile(
                np.arange(right[0], right[1], dtype=np.int64), n_left
            )
        total = left_idx.shape[0]
        matrix = self._cache.matrix
        for lo in range(0, total, self._max_batch):
            hi = min(lo + self._max_batch, total)
            li = left_idx[lo:hi]
            ri = right_idx[lo:hi]
            left_rows = matrix[li]
            right_rows = matrix[ri]
            if op == OP_CONCAT:
                out = self._kernels.concat(left_rows, right_rows)
            else:  # OP_UNION
                out = left_rows | right_rows
            if self._handle_batch(op, out, li, ri):
                return True
        return False
