"""The vectorised ("GPU-sim") engine: batched data-parallel kernels.

This engine reproduces the *structure* of the paper's CUDA
implementation on top of numpy:

* the language cache is one contiguous, power-of-two padded
  ``(n_cs, lanes)`` uint64 bit-matrix (:class:`~repro.core.cache.PackedCache`),
* each ``(constructor, cost-level)`` combination is a single batched
  kernel over *all* candidate operand pairs — the analogue of one CUDA
  kernel launch with one thread per candidate,
* the concatenation kernel folds over every guide-table split with no
  data-dependent early exit (the paper folds "as fast exits are
  data-dependent branching and problematic on GPUs"): the batch is
  transposed into *bit-sliced* planes (one packed row per universe
  word, one bit per candidate), every split becomes one AND of two
  gathered planes, and each word's splits are collapsed with one
  segmented OR-reduction — all array-level numpy operations, no Python
  loop over words or splits,
* the Kleene-star fixpoint masks out converged rows, so each iteration
  re-concatenates only the still-growing remainder of the batch,
* uniqueness is a batched probe of a numpy-native open-addressing set
  (:class:`~repro.core.hashset.PackedKeySet` — the WarpCore check), and
  solution checks are evaluated on whole batches.

Enumeration order matches the scalar engine exactly, so both engines
return identical expressions and identical ``generated`` counters; only
the wall-clock differs — which is precisely the comparison Table 1 of
the paper makes.  The kernel design is documented in
``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .bitops import (
    bitslice_rows,
    int_to_lanes,
    ints_to_matrix,
    popcount_rows,
    unbitslice_rows,
)
from .cache import PackedCache
from .engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
    SearchEngine,
)
from .hashset import PackedKeySet

#: Byte budget for the concat kernel's bit-sliced gather intermediates
#: (the batch × padded-splits planes).  Word-aligned blocks of the split
#: axis are sized so the gathered planes stay within this budget.
DEFAULT_SPLIT_BLOCK_BYTES = 1 << 25


class _Kernels:
    """Precompiled index/shift tables and the batched bit-kernels.

    The concat kernel is *bit-sliced*: the packed ``(m, lanes)`` batch
    is transposed into word planes (one packed uint8 row per universe
    word, one bit per candidate), so each guide-table split costs a
    single AND of two gathered plane rows — 8 candidates per byte — and
    each word's splits collapse with one vectorised OR-reduction over
    the uniform-width padded segment.  See ``docs/ARCHITECTURE.md`` for
    why this layout beats the row-layout flat gather in numpy.
    """

    def __init__(
        self,
        universe: Universe,
        guide: GuideTable,
        split_block_bytes: int = DEFAULT_SPLIT_BLOCK_BYTES,
    ) -> None:
        flat = guide.flat
        self.n_words = universe.n_words
        self.lanes = universe.lanes
        self.n_splits = flat.n_splits
        self.offsets = flat.offsets
        self.left_padded = flat.left_padded
        self.right_padded = flat.right_padded
        self.pad_width = flat.max_splits_per_word
        self.split_block_bytes = split_block_bytes
        self.eps_lane = universe.eps_index >> 6
        self.eps_mask = np.uint64(1 << (universe.eps_index & 63))
        self.max_word_length = universe.max_word_length
        # Plane matrices carry 8·ceil(n_words/8) rows (whole bytes).
        self.n_planes = 8 * ((self.n_words + 7) // 8)

    def concat(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Batched Algorithm 2: concatenate row ``k`` of ``left`` with row
        ``k`` of ``right`` for every ``k``, folding over all splits.

        Three array-level stages, no Python loop over words or splits:

        1. bit-slice both operands into word planes,
        2. one flat gather of the padded split table per operand, one
           AND, and one segmented OR-reduction per word (the padded
           segments have uniform width, so the reduction is a single
           ``bitwise_or.reduce`` over a reshaped axis),
        3. un-bit-slice the word planes into packed output rows (the
           precomputed scatter: word ``w`` → lane ``w >> 6``, bit
           ``w & 63``).

        The split axis is blocked (word-aligned) so the gathered plane
        intermediates stay under ``split_block_bytes``.
        """
        m = left.shape[0]
        if m == 0 or self.n_splits == 0:
            return np.zeros((m, self.lanes), dtype=np.uint64)
        left_planes = bitslice_rows(left, self.n_words)
        right_planes = bitslice_rows(right, self.n_words)
        m8 = left_planes.shape[1]
        word_planes = np.zeros((self.n_planes, m8), dtype=np.uint8)
        pad = self.pad_width
        block_words = max(1, self.split_block_bytes // (3 * pad * m8))
        for w0 in range(0, self.n_words, block_words):
            w1 = min(w0 + block_words, self.n_words)
            gathered = (
                left_planes[self.left_padded[w0 * pad : w1 * pad]]
                & right_planes[self.right_padded[w0 * pad : w1 * pad]]
            )
            np.bitwise_or.reduce(
                gathered.reshape(w1 - w0, pad, m8),
                axis=1,
                out=word_planes[w0:w1],
            )
        return unbitslice_rows(word_planes, m, self.lanes)

    def star(self, batch: np.ndarray) -> np.ndarray:
        """Batched Kleene star: fixpoint of ``res ← res | res·cs``.

        Row fixpoints are independent, so converged rows are masked out
        and each iteration re-enters the concat kernel with only the
        still-growing rows — the result is identical to iterating the
        whole batch until global convergence, without the wasted work.
        """
        m = batch.shape[0]
        result = np.zeros((m, self.lanes), dtype=np.uint64)
        result[:, self.eps_lane] |= self.eps_mask
        if m == 0:
            return result
        active = np.arange(m, dtype=np.int64)
        for _ in range(self.max_word_length + 1):
            current = result[active]
            grown = current | self.concat(current, batch[active])
            changed = (grown != current).any(axis=1)
            if not changed.any():
                break
            active = active[changed]
            result[active] = grown[changed]
            if active.size == 0:
                break
        return result

    def question(self, batch: np.ndarray) -> np.ndarray:
        """Batched option: set the ε bit of every row."""
        out = batch.copy()
        out[:, self.eps_lane] |= self.eps_mask
        return out


class VectorEngine(SearchEngine):
    """Data-parallel bottom-up synthesis over a packed CS matrix."""

    def __init__(
        self,
        spec: Spec,
        cost_fn: CostFunction,
        universe: Universe,
        guide: GuideTable,
        max_cache_size: Optional[int] = None,
        allowed_error: float = 0.0,
        use_guide_table: bool = True,
        check_uniqueness: bool = True,
        max_generated: Optional[int] = None,
        max_batch: int = 1 << 17,
        split_block_bytes: int = DEFAULT_SPLIT_BLOCK_BYTES,
    ) -> None:
        super().__init__(
            spec,
            cost_fn,
            universe,
            guide,
            max_cache_size=max_cache_size,
            allowed_error=allowed_error,
            use_guide_table=use_guide_table,
            check_uniqueness=check_uniqueness,
            max_generated=max_generated,
        )
        self._cache = PackedCache(universe.lanes, max_size=max_cache_size)
        self._seen = PackedKeySet(universe.lanes, initial_capacity=1 << 12)
        self._kernels = _Kernels(
            universe, guide, split_block_bytes=split_block_bytes
        )
        self._max_batch = max_batch
        self._pos_lanes = int_to_lanes(self.pos_mask, universe.lanes)
        self._neg_lanes = int_to_lanes(self.neg_mask, universe.lanes)

    @property
    def cache(self) -> PackedCache:
        return self._cache

    def disable_solution_checks(self) -> None:
        """See :meth:`SearchEngine.disable_solution_checks`; also resets
        the precomputed lane-array masks the batched check uses."""
        super().disable_solution_checks()
        self._pos_lanes = int_to_lanes(self.pos_mask, self.universe.lanes)
        self._neg_lanes = int_to_lanes(self.neg_mask, self.universe.lanes)

    # ------------------------------------------------------------------
    def _solve_flags(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised ``|= (P, N)`` (error-relaxed when configured)."""
        if self.max_errors == 0:
            pos_ok = ((rows & self._pos_lanes) == self._pos_lanes).all(axis=1)
            neg_ok = ((rows & self._neg_lanes) == 0).all(axis=1)
            return pos_ok & neg_ok
        mistakes = popcount_rows((rows & self._pos_lanes) ^ self._pos_lanes)
        mistakes += popcount_rows(rows & self._neg_lanes)
        return mistakes <= self.max_errors

    def _handle_batch(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: Optional[np.ndarray],
    ) -> bool:
        """Solution-check, dedupe and store a batch of candidates.

        Duplicates can never be solutions (their first occurrence was
        already solution-checked when it was constructed), so checking
        solutions before uniqueness is equivalent to Algorithm 2's order
        and keeps the check fully data-parallel.

        The candidate budget is enforced with per-candidate granularity
        (the batch is truncated to the remaining budget), so budget
        verdicts are bit-identical to the scalar engine's.
        """
        truncated = False
        if self.max_generated is not None:
            remaining = self.max_generated - self.generated
            if remaining <= 0:
                from .engine import BudgetExhausted

                raise BudgetExhausted()
            if rows.shape[0] > remaining:
                rows = rows[:remaining]
                a_idx = a_idx[:remaining]
                if b_idx is not None:
                    b_idx = b_idx[:remaining]
                truncated = True
        flags = self._solve_flags(rows)
        hits = np.flatnonzero(flags)
        if hits.size:
            first = int(hits[0])
            # Count candidates up to and including the solution, and store
            # the non-solution prefix of the batch, so the cache and the
            # ``generated`` counter match the scalar engine's sequential
            # behaviour exactly.
            self.generated += first + 1
            if not self.otf:
                self._store_rows(op, rows[:first], a_idx, b_idx)
            right = -1 if b_idx is None else int(b_idx[first])
            self._record_solution(op, int(a_idx[first]), right, self._current_cost)
            return True
        self.generated += rows.shape[0]
        if not self.otf:
            self._store_rows(op, rows, a_idx, b_idx)
        if truncated:
            from .engine import BudgetExhausted

            raise BudgetExhausted()
        self._check_budget()
        return False

    def _store_rows(
        self,
        op: int,
        rows: np.ndarray,
        a_idx: np.ndarray,
        b_idx: Optional[np.ndarray],
    ) -> None:
        """Dedupe (order-preserving) and bulk-append a batch to the cache.

        Uniqueness is one batched probe of the packed hash set; its
        novelty mask marks exactly the first occurrence of each distinct
        key in batch order, so the surviving rows — and therefore the
        cache — are ordered identically to the scalar engine's
        sequential inserts.  No per-row Python loop anywhere.
        """
        if rows.shape[0] == 0:
            return
        contiguous = np.ascontiguousarray(rows)
        if self.check_uniqueness:
            kept = np.flatnonzero(self._seen.insert_batch(contiguous))
        else:
            kept = np.arange(rows.shape[0], dtype=np.int64)
        if kept.size == 0:
            return
        if self._cache.max_size is not None:
            space = self._cache.max_size - len(self._cache)
            if kept.size > space:
                # Capacity reached mid-batch: store the prefix that fits
                # and enter OnTheFly mode (paper §3), exactly as the
                # scalar engine does one candidate at a time.
                kept = kept[:space]
                self.otf = True
        if kept.size == 0:
            return
        lefts = a_idx[kept]
        if b_idx is None:
            rights = np.full(kept.size, -1, dtype=np.int64)
        else:
            rights = b_idx[kept]
        self._cache.append_rows(contiguous[kept], op, lefts, rights)

    # ------------------------------------------------------------------
    def _seed_alphabet(self) -> bool:
        universe = self.universe
        rows = ints_to_matrix(
            [universe.char_cs(symbol) for symbol in universe.alphabet],
            universe.lanes,
        )
        indices = np.arange(len(universe.alphabet), dtype=np.int64)
        return self._handle_batch(OP_CHAR, rows, indices, None)

    def _emit_unary(self, op: int, start: int, end: int) -> bool:
        kernel = self._kernels.question if op == OP_QUESTION else self._kernels.star
        for lo in range(start, end, self._max_batch):
            hi = min(lo + self._max_batch, end)
            batch = self._cache.rows(lo, hi)
            out = kernel(batch)
            indices = np.arange(lo, hi, dtype=np.int64)
            if self._handle_batch(op, out, indices, None):
                return True
        return False

    def _emit_pairs(
        self,
        op: int,
        left: Tuple[int, int],
        right: Tuple[int, int],
        triangular: bool,
    ) -> bool:
        if triangular:
            # Same level on both sides; upper triangle, diagonal excluded.
            n = left[1] - left[0]
            i_idx, j_idx = np.triu_indices(n, k=1)
            left_idx = (i_idx + left[0]).astype(np.int64)
            right_idx = (j_idx + left[0]).astype(np.int64)
        else:
            n_left = left[1] - left[0]
            n_right = right[1] - right[0]
            left_idx = np.repeat(
                np.arange(left[0], left[1], dtype=np.int64), n_right
            )
            right_idx = np.tile(
                np.arange(right[0], right[1], dtype=np.int64), n_left
            )
        total = left_idx.shape[0]
        matrix = self._cache.matrix
        for lo in range(0, total, self._max_batch):
            hi = min(lo + self._max_batch, total)
            li = left_idx[lo:hi]
            ri = right_idx[lo:hi]
            left_rows = matrix[li]
            right_rows = matrix[ri]
            if op == OP_CONCAT:
                out = self._kernels.concat(left_rows, right_rows)
            else:  # OP_UNION
                out = left_rows | right_rows
            if self._handle_batch(op, out, li, ri):
                return True
        return False
