"""The language cache: Paresy's core data structure.

The cache is a write-once sequence of characteristic sequences (CSs),
laid out by strictly increasing cost: a "matrix of matrices of matrices"
(§3).  The translation from cost to position is the ``startPoints``
indirection, reproduced here as :class:`LevelIndex`: each *complete* cost
level records the half-open range of global indices holding its CSs.

Two concrete caches exist:

* :class:`IntCache` — scalar engine; CSs are Python ints.
* :class:`PackedCache` — vectorised engine; CSs are rows of a contiguous
  ``(capacity, lanes)`` uint64 numpy matrix (the paper's contiguous byte
  array, power-of-two padded).

Both also store, per CS, the provenance triple ``(op, left, right)`` that
:mod:`repro.core.reconstruct` uses to rebuild a regular expression — the
paper's "auxiliary data, allowing the conversion of a CS to a
corresponding regular expression".
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from .bitops import bitslice_rows

#: Default byte budget of a :class:`PackedCache`'s plane cache (the
#: bit-sliced copies of completed cost levels).  A level's planes cost
#: roughly as much as its packed rows, so this bounds the overhead of
#: plane residency to a constant factor of the hot working set.
DEFAULT_PLANE_CACHE_BYTES = 1 << 27

#: The on-disk-relevant layout contract of the caches.  Any change that
#: alters what a stored level *means* — row packing, dedupe discipline
#: (which decides what gets stored at all), provenance or ordinal
#: encoding — must be reflected here so persisted level checkpoints
#: keyed by :func:`cache_version_fingerprint` invalidate instead of
#: replaying rows under the wrong interpretation.
CACHE_SCHEMA = {
    "rows": "uint64-le-lanes/pow2-padded/v1",
    "dedupe": "two-tier-fingerprint-exact/v1",
    "provenance": "op-left-right-int64-columns/v1",
    "ordinals": "absolute-1based-generation-int64/v1",
}


def cache_version_fingerprint() -> str:
    """SHA-256 of :data:`CACHE_SCHEMA` (canonical JSON).

    Part of the checkpoint key: two builds agree on this fingerprint
    exactly when a completed level journalled by one is bit-for-bit
    meaningful to the other.
    """
    text = json.dumps(CACHE_SCHEMA, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class LevelIndex:
    """``startPoints``: cost level → half-open global index range.

    Only *complete* levels are recorded; a level interrupted by cache
    exhaustion (OnTheFly mode) is never registered, so operand iteration
    automatically restricts itself to trustworthy levels.
    """

    __slots__ = ("_bounds", "_costs")

    def __init__(self) -> None:
        self._bounds: Dict[int, Tuple[int, int]] = {}
        self._costs: List[int] = []

    def mark(self, cost: int, start: int, end: int) -> None:
        """Record that the CSs of ``cost`` occupy ``[start, end)``."""
        if cost in self._bounds:
            raise ValueError("cost level %d recorded twice" % cost)
        if self._costs and cost <= self._costs[-1]:
            raise ValueError("cost levels must be recorded in increasing order")
        self._bounds[cost] = (start, end)
        self._costs.append(cost)

    def bounds(self, cost: int) -> Optional[Tuple[int, int]]:
        """The range of ``cost``, or None if that level is not recorded."""
        return self._bounds.get(cost)

    def costs(self) -> Tuple[int, ...]:
        """All recorded costs, ascending."""
        return tuple(self._costs)

    @property
    def last_complete_cost(self) -> Optional[int]:
        """The highest recorded (hence complete) cost level."""
        return self._costs[-1] if self._costs else None

    def size_of(self, cost: int) -> int:
        """Number of CSs stored at ``cost`` (0 if unrecorded)."""
        bounds = self._bounds.get(cost)
        return 0 if bounds is None else bounds[1] - bounds[0]


class IntCache:
    """Scalar language cache: CSs as Python ints, plus provenance."""

    __slots__ = ("cs_list", "provenance", "ordinals", "levels", "max_size")

    def __init__(self, max_size: Optional[int] = None) -> None:
        self.cs_list: List[int] = []
        self.provenance: List[Tuple[int, int, int]] = []
        self.ordinals: List[int] = []
        self.levels = LevelIndex()
        self.max_size = max_size

    def __len__(self) -> int:
        return len(self.cs_list)

    @property
    def is_full(self) -> bool:
        """True once the configured capacity has been reached."""
        return self.max_size is not None and len(self.cs_list) >= self.max_size

    def append(
        self, cs: int, op: int, left: int, right: int, ordinal: int = 0
    ) -> int:
        """Store a CS with its provenance; returns its global index.

        ``ordinal`` is the 1-based absolute generation ordinal of the
        candidate (the engine's ``generated`` counter after counting
        it) — what level checkpoints use to replay budget semantics.
        """
        self.cs_list.append(cs)
        self.provenance.append((op, left, right))
        self.ordinals.append(ordinal)
        return len(self.cs_list) - 1

    def cs_at(self, index: int) -> int:
        """The CS stored at a global index."""
        return self.cs_list[index]


class PackedCache:
    """Vectorised language cache: a contiguous uint64 bit-matrix.

    Rows are CSs (``lanes`` little-endian 64-bit words each, power-of-two
    padded as in the paper's second space-time trade-off); the matrix
    grows by doubling but rows, once written, never change.

    Provenance is held column-wise (three parallel int64 arrays) so a
    batch append is three slice assignments — the store-side analogue of
    the batched kernels; the row-wise :attr:`provenance` view used by
    reconstruction and the equivalence tests is materialised lazily.
    """

    __slots__ = (
        "lanes",
        "matrix",
        "n_rows",
        "levels",
        "max_size",
        "plane_cache_bytes",
        "plane_stats",
        "_ops",
        "_lefts",
        "_rights",
        "_gen",
        "_provenance_view",
        "_planes",
        "_plane_bytes",
    )

    def __init__(
        self,
        lanes: int,
        max_size: Optional[int] = None,
        plane_cache_bytes: int = DEFAULT_PLANE_CACHE_BYTES,
    ) -> None:
        self.lanes = lanes
        self.matrix = np.zeros((64, lanes), dtype=np.uint64)
        self.n_rows = 0
        self._ops = np.zeros(64, dtype=np.int64)
        self._lefts = np.zeros(64, dtype=np.int64)
        self._rights = np.zeros(64, dtype=np.int64)
        self._gen = np.zeros(64, dtype=np.int64)
        self._provenance_view: Optional[List[Tuple[int, int, int]]] = None
        self.levels = LevelIndex()
        self.max_size = max_size
        self.plane_cache_bytes = plane_cache_bytes
        #: ``{"builds": …, "hits": …, "evictions": …}`` — exposed for
        #: tests and the benchmark harness.
        self.plane_stats = {"builds": 0, "hits": 0, "evictions": 0}
        self._planes: "OrderedDict[Tuple[int, int, int], np.ndarray]" = (
            OrderedDict()
        )
        self._plane_bytes = 0

    def __len__(self) -> int:
        return self.n_rows

    @property
    def is_full(self) -> bool:
        """True once the configured capacity has been reached."""
        return self.max_size is not None and self.n_rows >= self.max_size

    @property
    def provenance(self) -> List[Tuple[int, int, int]]:
        """Row-wise ``(op, left, right)`` triples (lazily materialised)."""
        if (
            self._provenance_view is None
            or len(self._provenance_view) != self.n_rows
        ):
            n = self.n_rows
            self._provenance_view = list(
                zip(
                    self._ops[:n].tolist(),
                    self._lefts[:n].tolist(),
                    self._rights[:n].tolist(),
                )
            )
        return self._provenance_view

    def _ensure(self, extra: int) -> None:
        needed = self.n_rows + extra
        capacity = self.matrix.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((capacity, self.lanes), dtype=np.uint64)
        grown[: self.n_rows] = self.matrix[: self.n_rows]
        self.matrix = grown
        for name in ("_ops", "_lefts", "_rights", "_gen"):
            column = getattr(self, name)
            grown_col = np.zeros(capacity, dtype=np.int64)
            grown_col[: self.n_rows] = column[: self.n_rows]
            setattr(self, name, grown_col)

    def append_row(
        self,
        row: np.ndarray,
        op: int,
        left: int,
        right: int,
        ordinal: int = 0,
    ) -> int:
        """Store one CS row with provenance; returns its global index."""
        self._ensure(1)
        self.matrix[self.n_rows] = row
        self._ops[self.n_rows] = op
        self._lefts[self.n_rows] = left
        self._rights[self.n_rows] = right
        self._gen[self.n_rows] = ordinal
        self.n_rows += 1
        return self.n_rows - 1

    def append_rows(
        self,
        rows: np.ndarray,
        op,
        lefts: np.ndarray,
        rights: np.ndarray,
        ordinals: Optional[np.ndarray] = None,
    ) -> None:
        """Bulk-store CS rows built by one ``op`` from operand indices.

        Slice assignments instead of a Python loop over provenance
        tuples.  ``op`` may be a scalar (the usual single-operator
        batch) or a per-row array (checkpoint replay, which restores a
        whole mixed-operator level at once); ``ordinals`` are the rows'
        1-based absolute generation ordinals (zeros when omitted).
        """
        count = rows.shape[0]
        if count == 0:
            return
        if count != len(lefts) or count != len(rights):
            raise ValueError("rows and provenance lengths differ")
        if ordinals is not None and count != len(ordinals):
            raise ValueError("rows and ordinals lengths differ")
        self._ensure(count)
        lo, hi = self.n_rows, self.n_rows + count
        self.matrix[lo:hi] = rows
        self._ops[lo:hi] = op
        self._lefts[lo:hi] = lefts
        self._rights[lo:hi] = rights
        if ordinals is not None:
            self._gen[lo:hi] = ordinals
        self.n_rows += count

    def gen_ordinals(self, start: int, end: int) -> np.ndarray:
        """A read-only view of the generation ordinals of ``[start, end)``."""
        return self._gen[start:end]

    def provenance_arrays(
        self, start: int, end: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Column-wise ``(ops, lefts, rights)`` views of ``[start, end)``."""
        return (
            self._ops[start:end],
            self._lefts[start:end],
            self._rights[start:end],
        )

    def planes(self, start: int, end: int, n_bits: int) -> np.ndarray:
        """Bit-sliced planes of rows ``[start, end)`` — sliced once,
        served from the plane cache afterwards.

        The returned ``(8 * ceil(n_bits / 8), ceil((end - start) / 8))``
        uint8 matrix holds bit ``w`` of every row in the range, packed 8
        rows per byte (see :func:`repro.core.bitops.bitslice_rows`).
        Rows are write-once, so a cached entry for a fully-stored range
        can never go stale; ranges that reach past ``n_rows`` are
        rejected outright, which is what makes "append to a level →
        stale planes served" impossible: a grown range is a *different*
        cache key, and it can only be built once its rows exist.

        Entries are evicted least-recently-used once the cache exceeds
        ``plane_cache_bytes``.  Treat the result as read-only — it is
        shared across calls.
        """
        if not 0 <= start <= end <= self.n_rows:
            raise ValueError(
                "plane range [%d, %d) not fully stored (n_rows=%d)"
                % (start, end, self.n_rows)
            )
        key = (start, end, n_bits)
        cached = self._planes.get(key)
        if cached is not None:
            self._planes.move_to_end(key)
            self.plane_stats["hits"] += 1
            return cached
        planes = bitslice_rows(self.matrix[start:end], n_bits)
        self.plane_stats["builds"] += 1
        self._planes[key] = planes
        self._plane_bytes += planes.nbytes
        while self._plane_bytes > self.plane_cache_bytes and len(self._planes) > 1:
            _, evicted = self._planes.popitem(last=False)
            self._plane_bytes -= evicted.nbytes
            self.plane_stats["evictions"] += 1
        return planes

    def rows(self, start: int, end: int) -> np.ndarray:
        """A read-only view of rows ``[start, end)``."""
        return self.matrix[start:end]

    def row(self, index: int) -> np.ndarray:
        """One stored CS row."""
        return self.matrix[index]
