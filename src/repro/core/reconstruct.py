"""Recovering a regular expression from a synthesised CS (§3).

The engines track, per cached CS, the provenance triple
``(op, left, right)`` — the outermost regular constructor and the global
cache indices of its operand CSs.  Because the cache is write-once and
filled in increasing cost order, operand indices are always strictly
smaller than the index of the CS they build, so a solution can be
rebuilt bottom-up without recursion.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..regex.ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    Question,
    Regex,
    Star,
    Union,
)
from .engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_EMPTY,
    OP_EPSILON,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
)

_UNARY = (OP_QUESTION, OP_STAR)
_BINARY = (OP_CONCAT, OP_UNION)


def reconstruct(
    solution: Tuple[int, int, int],
    provenance: Sequence[Tuple[int, int, int]],
    alphabet: Sequence[str],
) -> Regex:
    """Rebuild the regular expression of a solution provenance triple.

    ``solution`` is the triple recorded for the winning candidate (which
    itself is typically *not* in the cache — the search stops before
    storing it); its operand indices refer into ``provenance``, the
    per-cache-row triples.
    """
    needed: set = set()
    stack: List[int] = [
        index for index in _operand_indices(solution) if index >= 0
    ]
    while stack:
        index = stack.pop()
        if index in needed:
            continue
        needed.add(index)
        stack.extend(
            child
            for child in _operand_indices(provenance[index])
            if child >= 0
        )
    built: dict = {}
    for index in sorted(needed):
        built[index] = _build_node(provenance[index], built, alphabet)
    return _build_node(solution, built, alphabet)


def _operand_indices(triple: Tuple[int, int, int]) -> Tuple[int, ...]:
    op, left, right = triple
    if op in _UNARY:
        return (left,)
    if op in _BINARY:
        return (left, right)
    return ()


def _build_node(
    triple: Tuple[int, int, int], built: dict, alphabet: Sequence[str]
) -> Regex:
    op, left, right = triple
    if op == OP_EMPTY:
        return EMPTY
    if op == OP_EPSILON:
        return EPSILON
    if op == OP_CHAR:
        return Char(alphabet[left])
    if op == OP_QUESTION:
        return Question(built[left])
    if op == OP_STAR:
        return Star(built[left])
    if op == OP_CONCAT:
        return Concat(built[left], built[right])
    if op == OP_UNION:
        return Union(built[left], built[right])
    raise ValueError("unknown provenance opcode %r" % (op,))
