"""The cost-sweep search loop shared by both engines (Algorithm 1).

:class:`SearchEngine` owns everything that is identical between the
scalar ("CPU") and vectorised ("GPU-sim") implementations: the trivial
``∅``/``ε`` checks, alphabet seeding order, the sweep over cost levels,
the per-level constructor order (``?``, ``*``, ``·``, ``+`` — line 12 of
Algorithm 1), operand-level pairing, the OnTheFly/out-of-memory policy,
and solution bookkeeping.  Subclasses provide only the data
representation and the batch kernels.

Enumeration order is fully deterministic and identical across engines,
so both return the same regular expression for the same input — a
property the test-suite asserts.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .bitops import int_to_lanes, popcount

# Provenance opcodes.  EMPTY/EPSILON occur only as solutions of trivial
# specifications; CHAR's ``left`` field is an index into the alphabet.
OP_EMPTY = 0
OP_EPSILON = 1
OP_CHAR = 2
OP_QUESTION = 3
OP_STAR = 4
OP_CONCAT = 5
OP_UNION = 6

#: Below this many candidates in a pair group, a sharded emit's fixed
#: coordinator round-trip costs more than it saves; smaller groups take
#: the serial path (bit-identical either way).
DEFAULT_SHARD_MIN_CANDIDATES = 1 << 15

#: Status verdicts of a search run.
STATUS_SUCCESS = "success"
STATUS_NOT_FOUND = "not_found"
STATUS_OOM = "oom"
STATUS_BUDGET = "budget"
STATUS_CANCELLED = "cancelled"
STATUS_PREEMPTED = "preempted"


class BudgetExhausted(Exception):
    """Internal control-flow signal: the ``max_generated`` cap was hit."""


@dataclass
class LevelCheckpoint:
    """One completed cost level in replayable form.

    Everything a fresh engine needs to adopt the level without
    re-enumerating it: the stored CS rows (packed uint64, the
    cross-backend interchange format), their provenance columns, each
    row's 1-based absolute generation ordinal, and the engine's
    cumulative ``generated`` counter at level completion.  Because
    enumeration, dedupe and storage are spec-independent, a checkpoint
    taken under one spec replays bit-identically under any other spec
    over the same universe and cost function.
    """

    cost: int
    rows: np.ndarray  # (n, lanes) uint64
    ops: np.ndarray  # (n,) int64
    lefts: np.ndarray  # (n,) int64
    rights: np.ndarray  # (n,) int64
    ordinals: np.ndarray  # (n,) int64, 1-based absolute
    generated_total: int

    def to_payload(self) -> dict:
        """A plain-dict form (what the checkpoint journal pickles)."""
        return {
            "cost": int(self.cost),
            "rows": self.rows,
            "ops": self.ops,
            "lefts": self.lefts,
            "rights": self.rights,
            "ordinals": self.ordinals,
            "generated_total": int(self.generated_total),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LevelCheckpoint":
        return cls(
            cost=int(payload["cost"]),
            rows=np.asarray(payload["rows"], dtype=np.uint64),
            ops=np.asarray(payload["ops"], dtype=np.int64),
            lefts=np.asarray(payload["lefts"], dtype=np.int64),
            rights=np.asarray(payload["rights"], dtype=np.int64),
            ordinals=np.asarray(payload["ordinals"], dtype=np.int64),
            generated_total=int(payload["generated_total"]),
        )


@dataclass
class PartialLevelCheckpoint:
    """Progress *inside* a cost level, in replayable form.

    Snapshotted at a safe point of the emit loop (all candidates up to
    the cut fully deduped, solution-checked and stored; none beyond it
    touched).  Because enumeration order is fully deterministic, the
    position needs no emit-loop machinery: ``level_progress`` — the
    number of candidates the level had generated at the snapshot — is a
    complete cursor.  A resuming engine adopts the stored rows, then
    structurally fast-forwards the level's emit steps past exactly that
    many candidates, so rework is bounded by the snapshot interval.
    Like full level checkpoints, partials are spec-independent.
    """

    cost: int
    rows: np.ndarray  # (n, lanes) uint64 — rows stored so far this level
    ops: np.ndarray  # (n,) int64
    lefts: np.ndarray  # (n,) int64
    rights: np.ndarray  # (n,) int64
    ordinals: np.ndarray  # (n,) int64, 1-based absolute
    generated_total: int  # cumulative ``generated`` at the snapshot
    level_progress: int  # candidates generated within this level so far

    def to_payload(self) -> dict:
        """A plain-dict form (what the checkpoint journal pickles)."""
        return {
            "cost": int(self.cost),
            "rows": self.rows,
            "ops": self.ops,
            "lefts": self.lefts,
            "rights": self.rights,
            "ordinals": self.ordinals,
            "generated_total": int(self.generated_total),
            "level_progress": int(self.level_progress),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PartialLevelCheckpoint":
        return cls(
            cost=int(payload["cost"]),
            rows=np.asarray(payload["rows"], dtype=np.uint64),
            ops=np.asarray(payload["ops"], dtype=np.int64),
            lefts=np.asarray(payload["lefts"], dtype=np.int64),
            rights=np.asarray(payload["rights"], dtype=np.int64),
            ordinals=np.asarray(payload["ordinals"], dtype=np.int64),
            generated_total=int(payload["generated_total"]),
            level_progress=int(payload["level_progress"]),
        )


def _pair_candidates(
    pairing: Tuple[Tuple[int, int], Tuple[int, int], bool]
) -> int:
    """Candidate count of one ``(left, right, triangular)`` pairing —
    the closed form the mid-level fast-forward skips whole steps with
    (mirrors :func:`repro.core.shard.total_pair_candidates`)."""
    (l0, l1), (r0, r1), triangular = pairing
    if triangular:
        n = l1 - l0
        return n * (n - 1) // 2
    return (l1 - l0) * (r1 - r0)


def cs_solves(cs: int, pos_mask: int, neg_mask: int, max_errors: int) -> bool:
    """Does a CS satisfy the (possibly error-relaxed) mask pair?

    The single source of truth for the solution predicate: the engines'
    per-candidate checks and the session layer's batched multi-spec
    scans both delegate here (or mirror it lane-wise), so solo and
    batched serving can never drift apart.
    """
    if max_errors == 0:
        return (cs & pos_mask) == pos_mask and (cs & neg_mask) == 0
    mistakes = popcount((cs & pos_mask) ^ pos_mask)
    mistakes += popcount(cs & neg_mask)
    return mistakes <= max_errors


def max_errors_for(allowed_error: float, n_examples: int) -> int:
    """The example-misclassification budget of an ``allowed_error``
    fraction (validates the fraction; paper §5.2)."""
    if not 0.0 <= allowed_error < 1.0:
        raise ValueError("allowed_error must be in [0, 1)")
    return int(allowed_error * n_examples)


class SweepCancelled(Exception):
    """Internal control-flow signal: a level hook asked the sweep to stop.

    Raised between cost levels when an :attr:`SearchEngine.on_level`
    callback returns a truthy value, a :attr:`SearchEngine.cancel_check`
    fires, or the wall-clock :attr:`SearchEngine.deadline` passes.  The
    run ends with status :data:`STATUS_CANCELLED`.
    """


class SweepPreempted(Exception):
    """Internal control-flow signal: the preemption probe fired.

    Raised at the next safe point after :attr:`SearchEngine.preempt_check`
    returns truthy — *after* a partial checkpoint has been handed to
    :attr:`SearchEngine.on_partial` (when armed), so the engine's owner
    can requeue the job and a later run resumes from that point.  The
    run ends with status :data:`STATUS_PREEMPTED`.
    """


class SearchEngine:
    """Shared cost-sweep machinery; see the module docstring."""

    def __init__(
        self,
        spec: Spec,
        cost_fn: CostFunction,
        universe: Universe,
        guide: GuideTable,
        max_cache_size: Optional[int] = None,
        allowed_error: float = 0.0,
        use_guide_table: bool = True,
        check_uniqueness: bool = True,
        max_generated: Optional[int] = None,
        shard_workers: int = 1,
    ) -> None:
        if shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        self.spec = spec
        self.cost_fn = cost_fn
        self.universe = universe
        self.guide = guide
        self.max_cache_size = max_cache_size
        self.allowed_error = allowed_error
        self.max_errors = max_errors_for(allowed_error, spec.n_examples)
        self.use_guide_table = use_guide_table
        self.check_uniqueness = check_uniqueness
        self.max_generated = max_generated
        #: Intra-query parallelism: with ``shard_workers >= 2`` the pair
        #: emits of each cost level are partitioned across that many
        #: worker processes (see :mod:`repro.core.shard`); ``1`` is the
        #: serial code path, with no coordinator ever constructed.
        self.shard_workers = shard_workers
        #: Pair groups below this candidate count take the serial path
        #: even when sharding is on (round-trip cost dominates).
        self.shard_min_candidates = DEFAULT_SHARD_MIN_CANDIDATES
        self._shard_coordinator = None
        #: Batching parameters the shard workers mirror.  The base
        #: defaults match the vectorised engine's; engines with tuned
        #: kernels (VectorEngine) overwrite them from their own
        #: constructor arguments so worker-side batching always agrees
        #: with the engine's configuration.
        self._shard_max_batch = 1 << 17
        self._shard_split_block_bytes: Optional[int] = None

        self.pos_mask = universe.cs_of(spec.positive)
        self.neg_mask = universe.cs_of(spec.negative)

        # Statistics and outcome.
        self.generated = 0  # number of candidate CSs constructed ("# REs")
        #: Wall-clock seconds attributed to pipeline phases.  Engines
        #: that time their batched stages fill ``dedupe``/``solve``/
        #: ``store``; the serving layer adds ``staging`` and derives
        #: ``enumerate`` as the run's residual.  The scalar engine
        #: leaves these at zero (per-candidate timers would dominate its
        #: runtime), so its whole run reads as ``enumerate``.
        self.phase_seconds = {"dedupe": 0.0, "solve": 0.0, "store": 0.0}
        #: Per-level statistics: one dict per built cost level with keys
        #: ``cost``, ``generated``, ``stored`` and ``otf`` — the growth
        #: data behind the paper's exponential-blowup discussion.
        self.level_stats: List[dict] = []
        #: Pair groups that actually fanned out to the shard pool (0 on
        #: a serial run — the observable the tests and the serving
        #: layer's result extras use to tell the paths apart).
        self.sharded_emits = 0
        #: Pair groups re-executed serially because a shard worker died
        #: mid-round (sharding is disabled for the rest of the run after
        #: the first failover).
        self.shard_failovers = 0
        #: Cost levels adopted from checkpoints instead of enumerated
        #: (see :meth:`restore_levels`).
        self.resumed_levels = 0
        #: Mid-level resumes performed from a partial checkpoint (0 or 1
        #: per run; see :meth:`restore_partial`).
        self.partial_resumes = 0
        #: Partial checkpoints handed to :attr:`on_partial` this run.
        self.partial_checkpoints = 0
        self._restored_levels: List[LevelCheckpoint] = []
        self._restored_partial: Optional[PartialLevelCheckpoint] = None
        #: Pending fast-forward: candidates of the current level already
        #: accounted for by an adopted partial checkpoint.
        self._level_skip = 0
        #: ``(cost, cache_start, generated_at_level_start)`` of a
        #: partially-adopted level, so the sweep loop attributes the
        #: whole level (adopted prefix included) to one stats entry and
        #: one level mark.
        self._partial_base: Optional[Tuple[int, int, int]] = None
        # Safe-point bookkeeping (armed only while _build_level runs).
        self._partial_active = False
        self._level_start_cache = 0
        self._level_start_generated = 0
        self._last_partial_generated = 0
        self._last_partial_monotonic = 0.0
        self._checks_disabled = False
        self.status: Optional[str] = None
        self.solution: Optional[Tuple[int, int, int]] = None  # provenance triple
        self.solution_cost: Optional[int] = None
        self.levels_built = 0

        # OnTheFly bookkeeping.
        self.otf = False

        # Cost of the level currently being built (used when recording a
        # solution from inside a batch kernel).
        self._current_cost = cost_fn.literal

        #: Optional level hook ``(cost, start, end) -> bool``: called after
        #: each *completed* cost level with the half-open cache range the
        #: level stored; returning a truthy value stops the sweep with
        #: status :data:`STATUS_CANCELLED`.  This is the seam the session
        #: layer's progress streaming and batched multi-spec serving plug
        #: into.
        self.on_level: Optional[Callable[[int, int, int], object]] = None
        #: Optional cancellation probe, checked at sweep start and
        #: between cost levels.  Any zero-argument truth-valued callable
        #: works; the service layer's worker watchdog points this at a
        #: process-local flag it keeps in sync with the cross-process
        #: cancellation event, so the poll itself never does IPC.
        self.cancel_check: Optional[Callable[[], object]] = None
        #: Optional ``time.perf_counter()`` deadline, checked between
        #: cost levels.
        self.deadline: Optional[float] = None
        #: Optional preemption probe, polled at emit-loop safe points
        #: and between levels.  When it fires, a partial checkpoint is
        #: written (if :attr:`on_partial` is armed) and the run stops
        #: with status :data:`STATUS_PREEMPTED` — the caller requeues
        #: the request and a later run resumes from the checkpoint.
        self.preempt_check: Optional[Callable[[], object]] = None
        #: Optional partial-checkpoint sink ``(PartialLevelCheckpoint)
        #: -> None``: called at safe points every
        #: :attr:`partial_every_candidates` candidates or
        #: :attr:`partial_every_s` seconds while a level is being built,
        #: and right before a preemption stop.  The durability layer
        #: points this at the checkpoint journal.
        self.on_partial: Optional[
            Callable[[PartialLevelCheckpoint], object]
        ] = None
        #: Interval knobs for :attr:`on_partial` (either may be None;
        #: with both None only preemption writes partials).
        self.partial_every_candidates: Optional[int] = None
        self.partial_every_s: Optional[float] = None
        #: Optional :class:`repro.obs.trace.Tracer`.  When set, the
        #: sweep records spans (checkpoint replay, seed level, one span
        #: per cost level with dedupe/solve/store deltas, shard
        #: fan-outs); ``None`` (the default) is the zero-overhead path —
        #: one predicate test per level, nothing recorded.
        self.tracer = None
        #: ``time.monotonic()`` timestamp of the current :meth:`run`
        #: (None before the first run).  Progress events derive their
        #: self-describing ``elapsed_s`` from this clock.
        self.run_started_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    # Abstract surface (implemented by the scalar / vectorised engines)
    # ------------------------------------------------------------------
    def _seed_alphabet(self) -> bool:
        """Fill the cost-``c1`` level with the alphabet CSs; return True
        iff a solution was found while seeding."""
        raise NotImplementedError

    def _emit_unary(self, op: int, start: int, end: int) -> bool:
        """Build all ``op`` candidates from cached operands ``[start,
        end)``; return True iff a solution was found."""
        raise NotImplementedError

    def _emit_pairs(
        self,
        op: int,
        left: Tuple[int, int],
        right: Tuple[int, int],
        triangular: bool,
        skip: int = 0,
    ) -> bool:
        """Build all ``op`` candidates over the Cartesian product of two
        cached index ranges (upper-triangular, diagonal excluded, when
        ``triangular``), except the first ``skip`` (already adopted from
        a partial checkpoint); return True iff a solution was found."""
        raise NotImplementedError

    def _emit_pair_group(
        self,
        op: int,
        pairings: List[Tuple[Tuple[int, int], Tuple[int, int], bool]],
        skip: int = 0,
    ) -> bool:
        """Build all ``op`` candidates of one cost level — every
        ``(left, right, triangular)`` operand pairing, in order.

        Large groups of a sharded engine (``shard_workers >= 2``) are
        partitioned across the shard worker pool; everything else takes
        :meth:`_emit_pair_group_serial`.  Both paths produce the same
        enumeration-visible state, so the dispatch is invisible in the
        results.  A group entered with a mid-level resume offset
        (``skip > 0``) always runs serially — the offset is consumed
        once per run, and the serial path is bit-identical anyway.
        """
        if skip == 0 and self._sharding_applies(pairings):
            return self._emit_pair_group_sharded(op, pairings)
        return self._emit_pair_group_serial(op, pairings, skip)

    def _emit_pair_group_serial(
        self,
        op: int,
        pairings: List[Tuple[Tuple[int, int], Tuple[int, int], bool]],
        skip: int = 0,
    ) -> bool:
        """The in-process emit of a pair group.

        The default runs the pairings one at a time; the vectorised
        engine overrides this to *fuse* the small pairings of a level
        into shared solution-check/dedupe/store batches (candidate order
        is unchanged, so results stay bit-identical).
        """
        for pairing in pairings:
            left, right, triangular = pairing
            if skip:
                count = _pair_candidates(pairing)
                if skip >= count:
                    skip -= count
                    continue
            pair_skip, skip = skip, 0
            if self._emit_pairs(op, left, right, triangular, pair_skip):
                return True
        return False

    # ------------------------------------------------------------------
    # Intra-query sharding (see repro.core.shard)
    # ------------------------------------------------------------------
    def _sharding_applies(
        self,
        pairings: List[Tuple[Tuple[int, int], Tuple[int, int], bool]],
    ) -> bool:
        """Should this pair group fan out to the shard pool?

        Sharding requires an unbounded cache with uniqueness checking on
        (the OnTheFly transition and the no-dedupe ablation keep their
        serial semantics), a non-daemonic host process (daemons may not
        spawn children; the service pool's workers are non-daemonic
        precisely so pooled jobs can shard — this guard covers other
        daemonic embeddings), and enough candidates to amortise one
        coordinator round trip.
        """
        if (
            self.shard_workers < 2
            or self.otf
            or self.max_cache_size is not None
            or not self.check_uniqueness
        ):
            return False
        from .shard import total_pair_candidates

        if total_pair_candidates(pairings) < self.shard_min_candidates:
            return False
        if multiprocessing.current_process().daemon:
            return False
        return True

    def _emit_pair_group_sharded(
        self,
        op: int,
        pairings: List[Tuple[Tuple[int, int], Tuple[int, int], bool]],
    ) -> bool:
        """Fan one pair group out to the shard pool and reconcile.

        A shard worker crashing mid-round is survivable: the coordinator
        mutates no engine state before :meth:`_apply_shard_outcome`, so
        the whole group is simply re-executed on the serial path
        (bit-identical by construction) and sharding is disabled for the
        rest of the run.
        """
        from .shard import ShardWorkerDied

        if self._shard_coordinator is None:
            self._shard_coordinator = self._make_shard_coordinator()
        remaining = (
            None
            if self.max_generated is None
            else self.max_generated - self.generated
        )
        tracer = self.tracer
        fan_span = (
            tracer.start("shard-fanout", op=op, shards=self.shard_workers)
            if tracer is not None
            else None
        )
        try:
            self._shard_coordinator.sync_rows(self._shard_rows, len(self.cache))
            outcome = self._shard_coordinator.emit_pair_group(
                op,
                pairings,
                remaining,
                span_parent=None if fan_span is None else fan_span.span_id,
            )
        except ShardWorkerDied:
            if fan_span is not None:
                tracer.finish(fan_span, failover=True)
            self._close_shards()
            self.shard_workers = 1
            self.shard_failovers += 1
            return self._emit_pair_group_serial(op, pairings)
        if fan_span is not None:
            tracer.adopt(outcome.spans)
            tracer.finish(fan_span, candidates=outcome.total)
        self.sharded_emits += 1
        return self._apply_shard_outcome(op, outcome)

    def _make_shard_coordinator(self):
        """Spawn the worker pool for this run (lazily, on first use)."""
        from .shard import ShardCoordinator

        return ShardCoordinator(
            self.universe,
            self.guide,
            int_to_lanes(self.pos_mask, self.universe.lanes),
            int_to_lanes(self.neg_mask, self.universe.lanes),
            self.max_errors,
            self.shard_workers,
            max_batch=self._shard_max_batch,
            split_block_bytes=self._shard_split_block_bytes,
            trace_id=None if self.tracer is None else self.tracer.trace_id,
        )

    def _shard_rows(self, start: int, end: int):
        """Cache rows ``[start, end)`` as a packed uint64 matrix (the
        shard workers' mirror feed)."""
        raise NotImplementedError

    def _apply_shard_outcome(self, op: int, outcome) -> bool:
        """Reconcile a :class:`~repro.core.shard.ShardOutcome` into the
        engine state (authoritative dedupe + store + counters); return
        True iff the group produced the run's solution."""
        raise NotImplementedError

    def _close_shards(self) -> None:
        """Tear down the shard pool (no-op when none was spawned)."""
        if self._shard_coordinator is not None:
            self._shard_coordinator.close()
            self._shard_coordinator = None

    @property
    def cache(self):
        """The engine's language cache (has ``levels`` and ``__len__``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Level checkpointing (abstract half; see restore_levels below)
    # ------------------------------------------------------------------
    def _level_payload(
        self, start: int, end: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cache range ``[start, end)`` as ``(rows, ops, lefts, rights,
        ordinals)`` in the packed interchange format."""
        raise NotImplementedError

    def _adopt_restored(self, payload: LevelCheckpoint, lo: int, hi: int) -> None:
        """Append rows ``[lo, hi)`` of a checkpointed level to the cache
        and the dedupe set, exactly as enumeration would have."""
        raise NotImplementedError

    def _scan_restored(
        self, payload: LevelCheckpoint, limit: int
    ) -> Optional[int]:
        """Index of the first row in ``[0, limit)`` of a checkpointed
        level that satisfies the spec, or None."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Solution predicate on int CSs (engines may vectorise their own)
    # ------------------------------------------------------------------
    def solves_int(self, cs: int) -> bool:
        """Does this CS satisfy the (possibly error-relaxed) spec?"""
        return cs_solves(cs, self.pos_mask, self.neg_mask, self.max_errors)

    def _record_solution(self, op: int, left: int, right: int, cost: int) -> None:
        self.solution = (op, left, right)
        self.solution_cost = cost
        self.status = STATUS_SUCCESS

    def disable_solution_checks(self) -> None:
        """Turn the run into a pure enumeration sweep.

        Replaces the spec masks with an unsatisfiable pair (the same bit
        required set and clear), so no candidate ever registers as a
        solution and the sweep only stops via ``max_cost``, the budget,
        or an :attr:`on_level` hook.  Batched multi-spec serving drives
        one such sweep and answers every attached query from the shared
        cache — sound because enumeration order, dedupe and storage are
        all independent of the specification.
        """
        self.pos_mask = 1
        self.neg_mask = 1
        self.max_errors = 0
        self._checks_disabled = True

    # ------------------------------------------------------------------
    # The sweep (Algorithm 1)
    # ------------------------------------------------------------------
    def run(self, max_cost: int) -> str:
        """Sweep costs up to ``max_cost``; returns the final status."""
        self.run_started_monotonic = time.monotonic()
        try:
            return self._run(max_cost)
        except BudgetExhausted:
            self.status = STATUS_BUDGET
            return self.status
        except SweepCancelled:
            self.status = STATUS_CANCELLED
            return self.status
        except SweepPreempted:
            self.status = STATUS_PREEMPTED
            return self.status
        finally:
            # Shard workers live for one run; engines are per-request
            # objects, so the pool must not outlive the sweep.
            self._close_shards()

    @property
    def elapsed_s(self) -> float:
        """Monotonic seconds since the current run started (0.0 before)."""
        if self.run_started_monotonic is None:
            return 0.0
        return time.monotonic() - self.run_started_monotonic

    def _check_budget(self) -> None:
        """Abort the sweep once ``max_generated`` candidates were built."""
        if self.max_generated is not None and self.generated >= self.max_generated:
            raise BudgetExhausted()

    def _cancel_requested(self) -> bool:
        """Has the cancellation probe fired or the deadline passed?"""
        if self.cancel_check is not None and self.cancel_check():
            return True
        if self.deadline is not None and time.perf_counter() > self.deadline:
            return True
        return False

    def _after_level(self, cost: int, start: int, end: int) -> None:
        """Run the between-level hooks (progress, batch scan, cancel)."""
        if self.on_level is not None and self.on_level(cost, start, end):
            raise SweepCancelled()
        if self._cancel_requested():
            raise SweepCancelled()
        if self.preempt_check is not None and self.preempt_check():
            # The level just completed (and was journaled by any
            # on_level checkpoint hook), so no partial record is needed.
            raise SweepPreempted()

    # ------------------------------------------------------------------
    # Level checkpointing (shared half)
    # ------------------------------------------------------------------
    def restore_levels(self, levels: List[LevelCheckpoint]) -> None:
        """Arm the next :meth:`run` to adopt checkpointed levels.

        ``levels`` must start at the seed cost and be consecutive; they
        are replayed — dedupe-set inserts, cache appends, level marks,
        solution scans and budget accounting included — before any
        enumeration happens, so the run continues from the last adopted
        level exactly as if it had enumerated them itself.
        """
        if self.generated or self.levels_built or len(self.cache):
            raise RuntimeError("restore_levels must precede the sweep")
        self._restored_levels = list(levels)

    def level_checkpoint(self, cost: int, start: int, end: int) -> LevelCheckpoint:
        """Snapshot a just-completed level (call from an ``on_level``
        hook, when ``generated`` still equals the level-end total)."""
        rows, ops, lefts, rights, ordinals = self._level_payload(start, end)
        return LevelCheckpoint(
            cost=cost,
            rows=rows,
            ops=ops,
            lefts=lefts,
            rights=rights,
            ordinals=ordinals,
            generated_total=int(self.generated),
        )

    def restore_partial(self, partial: PartialLevelCheckpoint) -> None:
        """Arm the next :meth:`run` to resume mid-level from ``partial``.

        Used together with :meth:`restore_levels`: the partial must
        cover the cost right after the last restored complete level.
        The stored prefix is adopted exactly as enumeration left it and
        the level's emit loop fast-forwards past the already-generated
        candidates, so the finished level — and everything after it —
        is bit-identical to an uninterrupted run.
        """
        if self.generated or self.levels_built or len(self.cache):
            raise RuntimeError("restore_partial must precede the sweep")
        self._restored_partial = partial

    def partial_checkpoint(self) -> PartialLevelCheckpoint:
        """Snapshot the current level's progress (safe points only)."""
        start = self._level_start_cache
        rows, ops, lefts, rights, ordinals = self._level_payload(
            start, len(self.cache)
        )
        return PartialLevelCheckpoint(
            cost=self._current_cost,
            rows=rows,
            ops=ops,
            lefts=lefts,
            rights=rights,
            ordinals=ordinals,
            generated_total=int(self.generated),
            level_progress=int(self.generated - self._level_start_generated),
        )

    def _write_partial(self) -> None:
        if self.on_partial is not None:
            self.on_partial(self.partial_checkpoint())
            self.partial_checkpoints += 1
        self._last_partial_generated = self.generated
        self._last_partial_monotonic = time.monotonic()

    def _safe_point(self) -> None:
        """Emit-loop safe point: candidates so far are fully stored.

        Engines call this at batch boundaries (the vector engine's
        accumulator is empty, the scalar engine between candidates).
        Preemption stops the sweep here after journaling a partial
        checkpoint; otherwise a partial is written when the configured
        candidate/second interval has elapsed.
        """
        if not self._partial_active or self.otf:
            # OnTheFly mode stops storing rows, so a partial snapshot
            # could no longer describe the level; preemption then waits
            # for the level boundary.
            return
        if self.preempt_check is not None and self.preempt_check():
            self._write_partial()
            raise SweepPreempted()
        if self.on_partial is None:
            return
        every = self.partial_every_candidates
        if (
            every is not None
            and self.generated - self._last_partial_generated >= every
        ):
            self._write_partial()
            return
        every_s = self.partial_every_s
        if (
            every_s is not None
            and time.monotonic() - self._last_partial_monotonic >= every_s
        ):
            self._write_partial()

    def _replay_restored(self, max_cost: int) -> Optional[int]:
        """Adopt the armed checkpoints; returns the next cost to build.

        Returns None when the replay itself settles the run: a restored
        row satisfies the spec (solution recorded, partial level
        adopted — identical to enumeration stopping at that candidate),
        or the generation budget lands inside a restored level
        (:class:`BudgetExhausted` raised after adopting the in-budget
        prefix).  Mirrors the solo sweep's bookkeeping exactly: no
        ``level_stats`` entry for the seed level or a budget-interrupted
        level, no level mark for a solved or budget-interrupted level.
        """
        levels = self._restored_levels
        self._restored_levels = []
        c1 = self.cost_fn.literal
        budget = self.max_generated
        prev_total = self.generated  # the two trivial candidates
        next_cost = c1
        for payload in levels:
            cost = payload.cost
            if cost != next_cost or cost > max_cost:
                break  # a gap or past the ceiling: enumerate from here
            self._current_cost = cost
            n = int(payload.ordinals.shape[0])
            cut = n
            if budget is not None:
                cut = int(
                    np.searchsorted(payload.ordinals, budget, side="right")
                )
            hit = None
            if not self._checks_disabled:
                hit = self._scan_restored(payload, cut)
            start = len(self.cache)
            if hit is not None:
                self._adopt_restored(payload, 0, hit)
                self.generated = int(payload.ordinals[hit])
                if cost != c1:
                    self.level_stats.append(
                        {
                            "cost": cost,
                            "generated": self.generated - prev_total,
                            "stored": len(self.cache) - start,
                            "otf": False,
                        }
                    )
                self._record_solution(
                    int(payload.ops[hit]),
                    int(payload.lefts[hit]),
                    int(payload.rights[hit]),
                    cost,
                )
                return None
            if budget is not None and payload.generated_total >= budget:
                self._adopt_restored(payload, 0, cut)
                self.generated = budget
                raise BudgetExhausted()
            self._adopt_restored(payload, 0, n)
            self.generated = int(payload.generated_total)
            if cost != c1:
                self.level_stats.append(
                    {
                        "cost": cost,
                        "generated": self.generated - prev_total,
                        "stored": n,
                        "otf": False,
                    }
                )
            self.cache.levels.mark(cost, start, len(self.cache))
            self.levels_built += 1
            self.resumed_levels += 1
            prev_total = self.generated
            next_cost = cost + 1
            self._after_level(cost, start, len(self.cache))
        partial = self._restored_partial
        self._restored_partial = None
        if (
            partial is not None
            and partial.cost == next_cost
            and next_cost <= max_cost
        ):
            self._adopt_partial(partial)
            if self.status == STATUS_SUCCESS:
                return None
        return next_cost

    def _adopt_partial(self, partial: PartialLevelCheckpoint) -> None:
        """Adopt a partial level's stored prefix and arm the emit-loop
        fast-forward (mirrors :meth:`_replay_restored` semantics: budget
        cut by ordinal, solution scan under the *current* spec)."""
        cost = partial.cost
        self._current_cost = cost
        budget = self.max_generated
        n = int(partial.ordinals.shape[0])
        cut = n
        if budget is not None:
            cut = int(np.searchsorted(partial.ordinals, budget, side="right"))
        hit = None
        if not self._checks_disabled:
            hit = self._scan_restored(partial, cut)
        start = len(self.cache)
        level_start_generated = (
            partial.generated_total - partial.level_progress
        )
        if hit is not None:
            self._adopt_restored(partial, 0, hit)
            self.generated = int(partial.ordinals[hit])
            self.level_stats.append(
                {
                    "cost": cost,
                    "generated": self.generated - level_start_generated,
                    "stored": len(self.cache) - start,
                    "otf": False,
                }
            )
            self._record_solution(
                int(partial.ops[hit]),
                int(partial.lefts[hit]),
                int(partial.rights[hit]),
                cost,
            )
            return
        if budget is not None and partial.generated_total >= budget:
            self._adopt_restored(partial, 0, cut)
            self.generated = budget
            raise BudgetExhausted()
        self._adopt_restored(partial, 0, n)
        self.generated = int(partial.generated_total)
        self._level_skip = int(partial.level_progress)
        self._partial_base = (cost, start, level_start_generated)
        self.partial_resumes += 1

    def _run(self, max_cost: int) -> str:
        # An already-cancelled run (a job cancelled while queued, or a
        # watchdog that fired before the sweep began) exits before doing
        # any seeding work.
        if self._cancel_requested():
            raise SweepCancelled()
        c1 = self.cost_fn.literal
        self._current_cost = c1
        if self._check_trivials(c1):
            return self.status
        next_cost = c1
        if self._restored_levels:
            if self.tracer is None:
                next_cost = self._replay_restored(max_cost)
            else:
                with self.tracer.span(
                    "checkpoint-replay", levels=len(self._restored_levels)
                ):
                    next_cost = self._replay_restored(max_cost)
            if next_cost is None:
                return self.status
        if next_cost == c1:
            # Nothing restored (or the checkpoints were unusable):
            # enumerate the seed level as usual.
            seed_span = (
                self.tracer.start("seed-level", cost=c1)
                if self.tracer is not None
                else None
            )
            try:
                if self._seed_alphabet():
                    return self.status
                self.cache.levels.mark(c1, 0, len(self.cache))
                self.levels_built = 1
            finally:
                if seed_span is not None:
                    self.tracer.finish(seed_span, stored=len(self.cache))
            self._after_level(c1, 0, len(self.cache))
            next_cost = c1 + 1

        for cost in range(next_cost, max_cost + 1):
            if self.otf and not self._otf_can_build(cost):
                self.status = STATUS_OOM
                return self.status
            start = len(self.cache)
            generated_before = self.generated
            if (
                self._partial_base is not None
                and self._partial_base[0] == cost
            ):
                # Resuming mid-level from a partial checkpoint: the
                # adopted prefix belongs to this level's cache range,
                # stats entry and level mark.
                _, start, generated_before = self._partial_base
                self._partial_base = None
            self._current_cost = cost
            self._level_start_cache = start
            self._level_start_generated = generated_before
            self._last_partial_generated = self.generated
            self._last_partial_monotonic = time.monotonic()
            self._partial_active = not self.otf
            try:
                if self.tracer is None:
                    solved = self._build_level(cost)
                else:
                    solved = self._build_level_traced(cost)
            finally:
                self._partial_active = False
            self.level_stats.append(
                {
                    "cost": cost,
                    "generated": self.generated - generated_before,
                    "stored": len(self.cache) - start,
                    "otf": self.otf,
                }
            )
            if solved:
                return self.status
            self.levels_built += 1
            if not self.otf:
                self.cache.levels.mark(cost, start, len(self.cache))
            self._after_level(cost, start, len(self.cache))
        self.status = STATUS_NOT_FOUND
        return self.status

    def _check_trivials(self, c1: int) -> bool:
        """Check the two cost-``c1`` pseudo-candidates ``∅`` and ``ε``.

        For precise synthesis these reduce to the paper's lines 4–5 of
        Algorithm 1 (``P = {}`` and ``P = {ε}``); with ``allowed_error``
        they additionally realise rows like the 50%-error ``∅`` of the
        paper's §5.2 table.
        """
        self.generated += 1
        if self.solves_int(0):
            self._record_solution(OP_EMPTY, -1, -1, c1)
            return True
        self.generated += 1
        if self.solves_int(self.universe.eps_bit):
            self._record_solution(OP_EPSILON, -1, -1, c1)
            return True
        return False

    def _otf_can_build(self, cost: int) -> bool:
        """In OnTheFly mode: can level ``cost`` still be enumerated
        completely from fully-cached levels?

        The deepest operand level any constructor needs is
        ``cost - min(c2, c3, c4 + c1, c5 + c1)`` (cf. the paper's "if the
        cost of all regular constructors is > 55 ... needs only CSs of
        target cost minus 55").
        """
        last = self.cache.levels.last_complete_cost
        if last is None:
            return False
        return cost - self.cost_fn.min_constructor_cost <= last

    def _build_level_traced(self, cost: int) -> bool:
        """:meth:`_build_level` inside a span, with the level's
        dedupe/solve/store phase-timer deltas attached at completion —
        the per-level split the coarse run-total ``phase_seconds``
        cannot give."""
        phases_before = dict(self.phase_seconds)
        generated_before = self.generated
        stored_before = len(self.cache)
        span = self.tracer.start("level", cost=cost)
        try:
            return self._build_level(cost)
        finally:
            deltas = {
                name + "_s": round(
                    self.phase_seconds[name] - phases_before.get(name, 0.0), 9
                )
                for name in self.phase_seconds
            }
            self.tracer.finish(
                span,
                generated=self.generated - generated_before,
                stored=len(self.cache) - stored_before,
                **deltas,
            )

    def _build_level(self, cost: int) -> bool:
        """Build every candidate of ``cost``: ``?``, ``*``, ``·``, ``+``.

        When resuming mid-level from a partial checkpoint,
        ``self._level_skip`` holds the number of already-adopted
        candidates: whole emit steps are skipped structurally (their
        candidate counts are closed-form), and the step containing the
        resume point is entered with the residual offset — rework is
        bounded by one kernel batch, never a whole step.
        """
        cf = self.cost_fn
        levels = self.cache.levels
        c1 = cf.literal
        skip = self._level_skip
        self._level_skip = 0

        # Question mark.
        bounds = levels.bounds(cost - cf.question)
        if bounds is not None and bounds[0] < bounds[1]:
            n = bounds[1] - bounds[0]
            if skip >= n:
                skip -= n
            else:
                lo = bounds[0] + skip
                skip = 0
                if self._emit_unary(OP_QUESTION, lo, bounds[1]):
                    return True
                self._safe_point()

        # Kleene star.
        bounds = levels.bounds(cost - cf.star)
        if bounds is not None and bounds[0] < bounds[1]:
            n = bounds[1] - bounds[0]
            if skip >= n:
                skip -= n
            else:
                lo = bounds[0] + skip
                skip = 0
                if self._emit_unary(OP_STAR, lo, bounds[1]):
                    return True
                self._safe_point()

        # Concatenation: all ordered pairs (L, R) with L + R = budget.
        budget = cost - cf.concat
        pairings: List[Tuple[Tuple[int, int], Tuple[int, int], bool]] = []
        for left_cost in levels.costs():
            right_cost = budget - left_cost
            if right_cost < c1:
                break
            left = levels.bounds(left_cost)
            right = levels.bounds(right_cost)
            if left is None or right is None:
                continue
            if left[0] == left[1] or right[0] == right[1]:
                continue
            pairings.append((left, right, False))
        if pairings:
            total = sum(_pair_candidates(p) for p in pairings)
            if skip >= total:
                skip -= total
            else:
                group_skip, skip = skip, 0
                if self._emit_pair_group(OP_CONCAT, pairings, group_skip):
                    return True
                self._safe_point()

        # Union: commutative, so only pairs with L ≤ R (and i < j on the
        # diagonal — ``r + r`` never yields a new CS nor a new solution,
        # since ``r`` itself was checked when first constructed).
        budget = cost - cf.union
        pairings = []
        for left_cost in levels.costs():
            right_cost = budget - left_cost
            if right_cost < left_cost:
                break
            left = levels.bounds(left_cost)
            right = levels.bounds(right_cost)
            if left is None or right is None:
                continue
            if left[0] == left[1] or right[0] == right[1]:
                continue
            pairings.append((left, right, left_cost == right_cost))
        if pairings:
            total = sum(_pair_candidates(p) for p in pairings)
            if skip >= total:
                skip -= total
            else:
                group_skip, skip = skip, 0
                if self._emit_pair_group(OP_UNION, pairings, group_skip):
                    return True
                self._safe_point()
        return False
