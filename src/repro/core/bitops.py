"""Bit-level kernels over characteristic sequences.

A characteristic sequence (CS) is a bitvector with one bit per universe
word; in the scalar engine CSs are arbitrary-precision Python ints, in
the vectorised engine they are rows of a ``(n, lanes)`` uint64 matrix.
This module holds the scalar kernels (Algorithm 2 of the paper and the
Kleene-star iteration built on it) plus the packing helpers shared with
the vectorised engine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe

try:  # Python >= 3.10
    _bit_count = int.bit_count  # type: ignore[attr-defined]

    def popcount(value: int) -> int:
        """Number of set bits of a non-negative int."""
        return _bit_count(value)

except AttributeError:  # pragma: no cover - exercised only on Python 3.9

    def popcount(value: int) -> int:
        """Number of set bits of a non-negative int."""
        return bin(value).count("1")


def concat_cs(left: int, right: int, guide: GuideTable) -> int:
    """Concatenation of two CSs via the guide table (Algorithm 2).

    Word ``w`` belongs to ``L·R`` iff some precomputed split ``w = u·v``
    has ``u ∈ L`` and ``v ∈ R``.  The early ``break`` per word is the
    CPU-friendly form; the paper's GPU kernel folds over all splits
    instead (no data-dependent branching) — the vectorised engine does
    the same.
    """
    out = 0
    bit = 1
    for pairs in guide.splits:
        for i, j in pairs:
            if (left >> i) & 1 and (right >> j) & 1:
                out |= bit
                break
        bit <<= 1
    return out


def concat_cs_naive(left: int, right: int, universe: Universe) -> int:
    """Concatenation *without* the guide table (ablation baseline).

    Re-derives every split of every word by string slicing and dictionary
    lookups on each call — exactly the per-construction work the guide
    table stages away (§3, "Staging: guide table").
    """
    index = universe.index
    out = 0
    for w, word in enumerate(universe.words):
        for cut in range(len(word) + 1):
            i = index[word[:cut]]
            j = index[word[cut:]]
            if (left >> i) & 1 and (right >> j) & 1:
                out |= 1 << w
                break
    return out


def star_cs(cs: int, guide: GuideTable, universe: Universe) -> int:
    """Kleene star of a CS: ``⊕ₙ csⁿ`` restricted to the universe.

    Iterates ``result ← result | result·cs`` starting from ``{ε}``; the
    fixpoint is reached after at most ``max_word_length`` iterations
    because every additional non-ε factor consumes at least one character
    of a universe word.
    """
    result = universe.eps_bit
    for _ in range(universe.max_word_length + 1):
        grown = result | concat_cs(result, cs, guide)
        if grown == result:
            return result
        result = grown
    return result


def union_cs(left: int, right: int) -> int:
    """Union of two CSs: bitwise or."""
    return left | right


def question_cs(cs: int, universe: Universe) -> int:
    """Option of a CS: add the ``ε`` bit."""
    return cs | universe.eps_bit


def intersect_cs(left: int, right: int) -> int:
    """Conjunction of two CSs: bitwise and (Def. 3.5's Boolean ops)."""
    return left & right


def negate_cs(cs: int, universe: Universe) -> int:
    """Complement of a CS *relative to the universe*: bitwise not,
    masked to the universe's words."""
    return ~cs & universe.full_mask


# ----------------------------------------------------------------------
# Packed (lane) representation shared with the vectorised engine
# ----------------------------------------------------------------------

def int_to_lanes(cs: int, lanes: int) -> np.ndarray:
    """Pack an int CS into ``lanes`` little-endian uint64 words.

    Single ``int.to_bytes`` + ``np.frombuffer`` reinterpretation instead
    of a per-lane shift loop; bits beyond ``64 * lanes`` are dropped,
    matching the historical per-lane masking behaviour.
    """
    cs &= (1 << (64 * lanes)) - 1
    data = cs.to_bytes(lanes * 8, "little")
    return np.frombuffer(data, dtype="<u8").astype(np.uint64, copy=True)


def ints_to_matrix(cs_values: Sequence[int], lanes: int) -> np.ndarray:
    """Pack int CSs into a contiguous ``(n, lanes)`` uint64 matrix.

    Bulk counterpart of :func:`int_to_lanes`: one buffer build and one
    ``frombuffer`` for the whole batch — used to seed the vectorised
    engine's cache and to pack test batches.
    """
    n = len(cs_values)
    if n == 0:
        return np.zeros((0, lanes), dtype=np.uint64)
    width = lanes * 8
    mask = (1 << (64 * lanes)) - 1
    data = b"".join((cs & mask).to_bytes(width, "little") for cs in cs_values)
    packed = np.frombuffer(data, dtype="<u8").astype(np.uint64, copy=True)
    return packed.reshape(n, lanes)


def lanes_to_int(row: Sequence[int]) -> int:
    """Inverse of :func:`int_to_lanes`."""
    cs = 0
    for lane, value in enumerate(row):
        cs |= int(value) << (64 * lane)
    return cs


# ----------------------------------------------------------------------
# Bit-sliced (candidate-transposed) representation
# ----------------------------------------------------------------------
#
# The vectorised concat kernel works on *bit-sliced* batches: instead of
# one packed row per candidate, it keeps one packed row per universe
# word ("plane"), with one bit per candidate.  A split's contribution is
# then a single AND of two planes — 8 candidates per byte, 64 per uint64
# — which is what makes the per-split work effectively free.  The
# conversion between the two layouts is a bit-matrix transpose; doing it
# with ``np.packbits``/``unpackbits`` costs large strided byte copies,
# so it is done with the classic 8×8 bit-block butterfly (Hacker's
# Delight §7-3) over uint64 views: two small reshuffles plus twelve
# vector ops, an order of magnitude faster.

_T8_M1 = np.uint64(0x00AA00AA00AA00AA)
_T8_M2 = np.uint64(0x0000CCCC0000CCCC)
_T8_M3 = np.uint64(0x00000000F0F0F0F0)
_T8_S1 = np.uint64(7)
_T8_S2 = np.uint64(14)
_T8_S3 = np.uint64(28)


def _transpose_8x8_tiles(x: np.ndarray) -> np.ndarray:
    """In-place 8×8 bit-matrix transpose of every uint64 in ``x``.

    Each uint64 is read as an 8×8 bit tile (byte ``r`` = row ``r``, bit
    ``c`` of the byte = column ``c``) and replaced by its transpose via
    the three-step butterfly exchange.  Involutive.
    """
    t = (x ^ (x >> _T8_S1)) & _T8_M1
    x ^= t ^ (t << _T8_S1)
    t = (x ^ (x >> _T8_S2)) & _T8_M2
    x ^= t ^ (t << _T8_S2)
    t = (x ^ (x >> _T8_S3)) & _T8_M3
    x ^= t ^ (t << _T8_S3)
    return x


def bitslice_rows(rows: np.ndarray, n_bits: int) -> np.ndarray:
    """Transpose a packed ``(m, lanes)`` uint64 batch into bit planes.

    Returns a ``(8 * ceil(n_bits / 8), ceil(m / 8))`` uint8 matrix whose
    row ``w`` holds bit ``w`` of every batch row, packed 8 candidates
    per byte (candidate ``k`` → bit ``k & 7`` of byte ``k >> 3``).
    Plane rows ≥ ``n_bits`` are the padding bits of the last source
    byte — callers index planes by universe word, so they never read
    them.
    """
    rows = np.ascontiguousarray(rows)
    m = rows.shape[0]
    m8 = (m + 7) // 8
    nb8 = (n_bits + 7) // 8
    src = rows.view(np.uint8)[:, :nb8]
    if m8 * 8 != m:
        padded = np.zeros((m8 * 8, nb8), dtype=np.uint8)
        padded[:m] = src
        src = padded
    tiles = np.ascontiguousarray(src.reshape(m8, 8, nb8).transpose(2, 0, 1))
    x = _transpose_8x8_tiles(tiles.view(np.uint64).reshape(nb8, m8))
    return np.ascontiguousarray(
        x.view(np.uint8).reshape(nb8, m8, 8).transpose(0, 2, 1)
    ).reshape(nb8 * 8, m8)


def plane_segment(planes: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Byte-aligned column view of bit planes: candidates ``[lo, hi)``.

    ``planes`` is a bit-sliced matrix over ``n`` candidates (one bit per
    column position); the segment of candidates ``[lo, hi)`` is a plain
    column slice when ``lo`` is a multiple of 8 — no bit shifting.  The
    returned view packs candidate ``k`` (``lo <= k < hi``) at bit
    ``(k - lo) & 7`` of byte ``(k - lo) >> 3``; trailing bits of the
    last byte belong to candidates ``>= hi`` (or are the zero padding of
    the original slice) — callers that expose per-candidate results must
    truncate to ``hi - lo`` rows after un-bit-slicing, exactly as
    :func:`unbitslice_rows` does.
    """
    if lo & 7:
        raise ValueError("plane segments must start at a multiple of 8")
    return planes[:, lo >> 3 : (hi + 7) >> 3]


def unbitslice_rows(planes: np.ndarray, m: int, lanes: int) -> np.ndarray:
    """Inverse of :func:`bitslice_rows`: planes back to packed rows.

    ``planes`` must have ``8 * nb8`` rows (zero any rows beyond the
    meaningful bit count); returns an ``(m, lanes)`` uint64 batch.
    """
    nb8 = planes.shape[0] // 8
    m8 = planes.shape[1]
    tiles = np.ascontiguousarray(
        planes.reshape(nb8, 8, m8).transpose(0, 2, 1)
    )
    x = _transpose_8x8_tiles(tiles.view(np.uint64).reshape(nb8, m8))
    bytes_rows = np.ascontiguousarray(
        x.view(np.uint8).reshape(nb8, m8, 8).transpose(1, 2, 0)
    ).reshape(m8 * 8, nb8)[:m]
    out = np.zeros((m, lanes * 8), dtype=np.uint8)
    out[:, :nb8] = bytes_rows
    return out.view(np.uint64)


if hasattr(np, "bitwise_count"):

    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount of a ``(n, lanes)`` uint64 matrix."""
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy < 2 fallback

    _BYTE_POPCOUNT = np.array([bin(b).count("1") for b in range(256)], dtype=np.uint8)

    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount of a ``(n, lanes)`` uint64 matrix."""
        as_bytes = matrix.view(np.uint8)
        return _BYTE_POPCOUNT[as_bytes].sum(axis=1, dtype=np.int64)
