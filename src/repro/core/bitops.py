"""Bit-level kernels over characteristic sequences.

A characteristic sequence (CS) is a bitvector with one bit per universe
word; in the scalar engine CSs are arbitrary-precision Python ints, in
the vectorised engine they are rows of a ``(n, lanes)`` uint64 matrix.
This module holds the scalar kernels (Algorithm 2 of the paper and the
Kleene-star iteration built on it) plus the packing helpers shared with
the vectorised engine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe

try:  # Python >= 3.10
    _bit_count = int.bit_count  # type: ignore[attr-defined]

    def popcount(value: int) -> int:
        """Number of set bits of a non-negative int."""
        return _bit_count(value)

except AttributeError:  # pragma: no cover - exercised only on Python 3.9

    def popcount(value: int) -> int:
        """Number of set bits of a non-negative int."""
        return bin(value).count("1")


def concat_cs(left: int, right: int, guide: GuideTable) -> int:
    """Concatenation of two CSs via the guide table (Algorithm 2).

    Word ``w`` belongs to ``L·R`` iff some precomputed split ``w = u·v``
    has ``u ∈ L`` and ``v ∈ R``.  The early ``break`` per word is the
    CPU-friendly form; the paper's GPU kernel folds over all splits
    instead (no data-dependent branching) — the vectorised engine does
    the same.
    """
    out = 0
    bit = 1
    for pairs in guide.splits:
        for i, j in pairs:
            if (left >> i) & 1 and (right >> j) & 1:
                out |= bit
                break
        bit <<= 1
    return out


def concat_cs_naive(left: int, right: int, universe: Universe) -> int:
    """Concatenation *without* the guide table (ablation baseline).

    Re-derives every split of every word by string slicing and dictionary
    lookups on each call — exactly the per-construction work the guide
    table stages away (§3, "Staging: guide table").
    """
    index = universe.index
    out = 0
    for w, word in enumerate(universe.words):
        for cut in range(len(word) + 1):
            i = index[word[:cut]]
            j = index[word[cut:]]
            if (left >> i) & 1 and (right >> j) & 1:
                out |= 1 << w
                break
    return out


def star_cs(cs: int, guide: GuideTable, universe: Universe) -> int:
    """Kleene star of a CS: ``⊕ₙ csⁿ`` restricted to the universe.

    Iterates ``result ← result | result·cs`` starting from ``{ε}``; the
    fixpoint is reached after at most ``max_word_length`` iterations
    because every additional non-ε factor consumes at least one character
    of a universe word.
    """
    result = universe.eps_bit
    for _ in range(universe.max_word_length + 1):
        grown = result | concat_cs(result, cs, guide)
        if grown == result:
            return result
        result = grown
    return result


def union_cs(left: int, right: int) -> int:
    """Union of two CSs: bitwise or."""
    return left | right


def question_cs(cs: int, universe: Universe) -> int:
    """Option of a CS: add the ``ε`` bit."""
    return cs | universe.eps_bit


def intersect_cs(left: int, right: int) -> int:
    """Conjunction of two CSs: bitwise and (Def. 3.5's Boolean ops)."""
    return left & right


def negate_cs(cs: int, universe: Universe) -> int:
    """Complement of a CS *relative to the universe*: bitwise not,
    masked to the universe's words."""
    return ~cs & universe.full_mask


# ----------------------------------------------------------------------
# Packed (lane) representation shared with the vectorised engine
# ----------------------------------------------------------------------

def int_to_lanes(cs: int, lanes: int) -> np.ndarray:
    """Pack an int CS into ``lanes`` little-endian uint64 words."""
    out = np.zeros(lanes, dtype=np.uint64)
    mask = (1 << 64) - 1
    for lane in range(lanes):
        out[lane] = (cs >> (64 * lane)) & mask
    return out


def lanes_to_int(row: Sequence[int]) -> int:
    """Inverse of :func:`int_to_lanes`."""
    cs = 0
    for lane, value in enumerate(row):
        cs |= int(value) << (64 * lane)
    return cs


if hasattr(np, "bitwise_count"):

    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount of a ``(n, lanes)`` uint64 matrix."""
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy < 2 fallback

    _BYTE_POPCOUNT = np.array([bin(b).count("1") for b in range(256)], dtype=np.uint8)

    def popcount_rows(matrix: np.ndarray) -> np.ndarray:
        """Per-row popcount of a ``(n, lanes)`` uint64 matrix."""
        as_bytes = matrix.view(np.uint8)
        return _BYTE_POPCOUNT[as_bytes].sum(axis=1, dtype=np.int64)
