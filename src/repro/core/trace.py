"""Language-cache introspection and rendering.

The paper (§3, "Matrix representation: language cache") illustrates the
cache as a bit-matrix whose rows are annotated with a regular expression
accepting the row's language and with the row's cost level.  This module
renders exactly that picture from a finished engine — useful for
teaching, debugging, and the ``examples/cache_visualization.py`` demo.
"""

from __future__ import annotations

from typing import List, Optional

from ..regex.printer import to_string
from .engine import SearchEngine
from .reconstruct import reconstruct


def cache_rows(engine: SearchEngine, limit: Optional[int] = None) -> List[dict]:
    """Structured view of the language cache.

    One dict per cached CS: ``index``, ``cost``, ``bits`` (the CS as an
    int), ``words`` (the language restricted to the universe) and
    ``regex`` (a minimal-cost expression reconstructed from provenance).
    """
    rows: List[dict] = []
    provenance = engine.cache.provenance
    alphabet = engine.universe.alphabet
    cost_of_index = {}
    for cost in engine.cache.levels.costs():
        start, end = engine.cache.levels.bounds(cost)
        for index in range(start, end):
            cost_of_index[index] = cost
    total = len(engine.cache)
    count = total if limit is None else min(limit, total)
    for index in range(count):
        cs = _cs_at(engine, index)
        regex = reconstruct(provenance[index], provenance, alphabet)
        rows.append(
            {
                "index": index,
                # Rows past the last *complete* level belong to the level
                # that was being built when the search stopped.
                "cost": cost_of_index.get(index, engine._current_cost),
                "bits": cs,
                "words": engine.universe.words_of(cs),
                "regex": to_string(regex),
            }
        )
    return rows


def render_cache(
    engine: SearchEngine,
    limit: Optional[int] = 40,
    filled: str = "#",
    empty: str = ".",
) -> str:
    """ASCII rendering of the cache in the paper's figure style.

    Each line shows the CS bits (most significant word rightmost, i.e.
    column ``i`` is the ``i``-th universe word in shortlex order), the
    annotated regular expression, and the cost level.
    """
    universe = engine.universe
    lines = [
        "universe (shortlex): %s"
        % ", ".join(w if w else "ε" for w in universe.words),
        "",
    ]
    for row in cache_rows(engine, limit=limit):
        bits = "".join(
            filled if (row["bits"] >> i) & 1 else empty
            for i in range(universe.n_words)
        )
        lines.append(
            "%s  %-24s cost %s" % (bits, row["regex"], row["cost"])
        )
    total = len(engine.cache)
    if limit is not None and total > limit:
        lines.append("... (%d more rows)" % (total - limit))
    return "\n".join(lines)


def level_growth_table(engine: SearchEngine) -> List[dict]:
    """Per-cost-level growth data (generated vs stored vs dedup ratio).

    This quantifies the exponential blow-up the paper identifies as the
    scalability limit, and the effectiveness of uniqueness checking.
    """
    table: List[dict] = []
    for stats in engine.level_stats:
        generated = stats["generated"]
        stored = stats["stored"]
        table.append(
            {
                "cost": stats["cost"],
                "generated": generated,
                "stored": stored,
                "duplicates": generated - stored,
                "keep_ratio": (stored / generated) if generated else 0.0,
                "otf": stats["otf"],
            }
        )
    return table


def _cs_at(engine: SearchEngine, index: int) -> int:
    cache = engine.cache
    if hasattr(cache, "cs_list"):
        return cache.cs_list[index]
    from .bitops import lanes_to_int

    return lanes_to_int(cache.row(index))
