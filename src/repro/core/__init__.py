"""Paresy's core: language cache, engines, and the synthesis facade."""

from .engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_EMPTY,
    OP_EPSILON,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
    STATUS_BUDGET,
    STATUS_CANCELLED,
    STATUS_NOT_FOUND,
    STATUS_OOM,
    STATUS_SUCCESS,
    SearchEngine,
)
from .hashset import FingerprintHashSet, fingerprint, splitmix64
from .incremental import IncrementalStats, IncrementalSynthesizer
from .result import SynthesisResult
from .scalar_engine import ScalarEngine
from .synthesizer import BACKENDS, make_engine, synthesize
from .vector_engine import VectorEngine

__all__ = [
    "OP_CHAR",
    "OP_CONCAT",
    "OP_EMPTY",
    "OP_EPSILON",
    "OP_QUESTION",
    "OP_STAR",
    "OP_UNION",
    "STATUS_BUDGET",
    "STATUS_CANCELLED",
    "STATUS_NOT_FOUND",
    "STATUS_OOM",
    "STATUS_SUCCESS",
    "SearchEngine",
    "FingerprintHashSet",
    "fingerprint",
    "splitmix64",
    "IncrementalStats",
    "IncrementalSynthesizer",
    "SynthesisResult",
    "ScalarEngine",
    "VectorEngine",
    "BACKENDS",
    "make_engine",
    "synthesize",
]
