"""The result record returned by :func:`repro.synthesize`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..regex.ast import Regex
from ..regex.printer import to_string
from ..spec import Spec


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run.

    ``status`` is ``"success"`` (a minimal consistent regex was found),
    ``"not_found"`` (the cost budget ``max_cost`` was exhausted) or
    ``"oom"`` (OnTheFly mode ran out of cached CSs — the paper's
    out-of-memory verdict).
    """

    status: str
    spec: Spec
    backend: str
    cost_function: tuple
    allowed_error: float
    max_cost: int
    regex: Optional[Regex] = None
    cost: Optional[int] = None
    generated: int = 0
    unique_cs: int = 0
    universe_size: int = 0
    padded_bits: int = 0
    levels_built: int = 0
    elapsed_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        """True iff a regex was synthesised."""
        return self.status == "success"

    @property
    def regex_str(self) -> Optional[str]:
        """The synthesised regex in concrete syntax (None if not found)."""
        return to_string(self.regex) if self.regex is not None else None

    @property
    def res_checked(self) -> int:
        """Alias for ``generated`` — the paper's "# REs" column."""
        return self.generated

    def errors(self) -> Optional[int]:
        """Number of examples the returned regex misclassifies (0 for
        precise synthesis; may be positive with ``allowed_error``)."""
        if self.regex is None:
            return None
        return self.spec.errors_of(self.regex)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (used by the evaluation harness)."""
        return {
            "status": self.status,
            "backend": self.backend,
            "cost_function": list(self.cost_function),
            "allowed_error": self.allowed_error,
            "max_cost": self.max_cost,
            "regex": self.regex_str,
            "cost": self.cost,
            "generated": self.generated,
            "unique_cs": self.unique_cs,
            "universe_size": self.universe_size,
            "padded_bits": self.padded_bits,
            "levels_built": self.levels_built,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def __str__(self) -> str:
        if self.found:
            return "SynthesisResult(%s, cost=%s, generated=%d, %.4fs)" % (
                self.regex_str,
                self.cost,
                self.generated,
                self.elapsed_seconds,
            )
        return "SynthesisResult(%s, generated=%d, %.4fs)" % (
            self.status,
            self.generated,
            self.elapsed_seconds,
        )
