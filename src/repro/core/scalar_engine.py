"""The scalar ("CPU") engine: one CS at a time, Python ints.

This is the reproduction of the paper's C++ CPU implementation: the same
Algorithm 1/2 structure as the vectorised engine, but candidates are
built sequentially with ordinary control flow (including the per-word
early exit that is natural on a CPU and pathological on a GPU), and
uniqueness is a single hash-set insert per candidate — the role
``std::unordered_set`` plays in the paper's CPU build, here filled by the
WarpCore-substitute :class:`~repro.core.hashset.FingerprintHashSet`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .bitops import concat_cs, concat_cs_naive, ints_to_matrix, star_cs
from .cache import IntCache
from .engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_QUESTION,
    SearchEngine,
)
from .hashset import FingerprintHashSet


class ScalarEngine(SearchEngine):
    """Sequential bottom-up synthesis over int-encoded CSs."""

    def __init__(
        self,
        spec: Spec,
        cost_fn: CostFunction,
        universe: Universe,
        guide: GuideTable,
        max_cache_size: Optional[int] = None,
        allowed_error: float = 0.0,
        use_guide_table: bool = True,
        check_uniqueness: bool = True,
        max_generated: Optional[int] = None,
        shard_workers: int = 1,
    ) -> None:
        super().__init__(
            spec,
            cost_fn,
            universe,
            guide,
            max_cache_size=max_cache_size,
            allowed_error=allowed_error,
            use_guide_table=use_guide_table,
            check_uniqueness=check_uniqueness,
            max_generated=max_generated,
            shard_workers=shard_workers,
        )
        self._cache = IntCache(max_size=max_cache_size)
        self._seen = FingerprintHashSet(initial_capacity=1 << 12)

    @property
    def cache(self) -> IntCache:
        return self._cache

    # ------------------------------------------------------------------
    def _concat(self, left: int, right: int) -> int:
        if self.use_guide_table:
            return concat_cs(left, right, self.guide)
        return concat_cs_naive(left, right, self.universe)

    def _star(self, cs: int) -> int:
        if self.use_guide_table:
            return star_cs(cs, self.guide, self.universe)
        result = self.universe.eps_bit
        for _ in range(self.universe.max_word_length + 1):
            grown = result | concat_cs_naive(result, cs, self.universe)
            if grown == result:
                return result
            result = grown
        return result

    # ------------------------------------------------------------------
    def _handle(self, cs: int, op: int, left: int, right: int) -> bool:
        """Uniqueness-check, solution-check and store one candidate.

        Returns True iff ``cs`` solves the specification.  Mirrors lines
        15–19 of Algorithm 2; in OnTheFly mode the uniqueness check and
        the store are skipped (paper §3, "OnTheFly mode").
        """
        self.generated += 1
        if not self.otf and self.check_uniqueness:
            if not self._seen.insert(cs):
                self._check_budget()
                # A dedupe-rejected candidate is fully processed too —
                # counting it keeps the partial interval an exact bound.
                self._safe_point()
                return False
        if self.solves_int(cs):
            self._record_solution(op, left, right, self._current_cost)
            return True
        if not self.otf:
            if self._cache.is_full:
                self.otf = True
            else:
                self._cache.append(cs, op, left, right, self.generated)
        # The budget is checked *after* the candidate was fully processed,
        # so a solution at exactly the budget boundary is still found —
        # the vectorised engine truncates batches to the same boundary.
        self._check_budget()
        # Every fully-processed candidate is a safe point here (the
        # scalar engine has no batch accumulator).
        self._safe_point()
        return False

    # ------------------------------------------------------------------
    def _seed_alphabet(self) -> bool:
        for char_index, symbol in enumerate(self.universe.alphabet):
            if self._handle(self.universe.char_cs(symbol), OP_CHAR, char_index, -1):
                return True
        return False

    def _emit_unary(self, op: int, start: int, end: int) -> bool:
        cs_list = self._cache.cs_list
        if op == OP_QUESTION:
            eps_bit = self.universe.eps_bit
            for index in range(start, end):
                if self._handle(cs_list[index] | eps_bit, op, index, -1):
                    return True
        else:  # OP_STAR
            for index in range(start, end):
                if self._handle(self._star(cs_list[index]), op, index, -1):
                    return True
        return False

    def _emit_pairs(
        self,
        op: int,
        left: Tuple[int, int],
        right: Tuple[int, int],
        triangular: bool,
        skip: int = 0,
    ) -> bool:
        # A mid-level resume offset walks whole left-operand rows off
        # ``skip`` (each row's candidate count is closed-form) and
        # enters the row containing the resume point at the residual
        # column — candidate order is untouched.
        cs_list = self._cache.cs_list
        if op == OP_CONCAT:
            for i in range(left[0], left[1]):
                if skip:
                    row = right[1] - right[0]
                    if skip >= row:
                        skip -= row
                        continue
                j_start = right[0] + skip
                skip = 0
                left_cs = cs_list[i]
                for j in range(j_start, right[1]):
                    if self._handle(self._concat(left_cs, cs_list[j]), op, i, j):
                        return True
        else:  # OP_UNION
            for i in range(left[0], left[1]):
                j_start = i + 1 if triangular else right[0]
                if skip:
                    row = right[1] - j_start
                    if skip >= row:
                        skip -= row
                        continue
                j_start += skip
                skip = 0
                left_cs = cs_list[i]
                for j in range(j_start, right[1]):
                    if self._handle(left_cs | cs_list[j], op, i, j):
                        return True
        return False

    # ------------------------------------------------------------------
    # Intra-query sharding hooks (see repro.core.shard)
    # ------------------------------------------------------------------
    def _shard_rows(self, start: int, end: int):
        return ints_to_matrix(
            self._cache.cs_list[start:end], self.universe.lanes
        )

    def _apply_shard_outcome(self, op, outcome) -> bool:
        """Reconcile a sharded emit into the scalar state.

        The workers compute candidates with the vectorised kernels; the
        engine-equivalence property (both engines build identical CSs in
        identical order) makes unpacking their survivors back to ints
        exact.  The authoritative per-candidate seen-set insert keeps
        the cache sequence identical to the serial scalar loop; the
        ``generated`` counter advances by the plan's ordinals.
        """
        base = self.generated
        rows = outcome.rows
        if rows.shape[0]:
            width = self.universe.lanes * 8
            data = rows.astype("<u8", copy=False).tobytes()
            seen = self._seen
            cache = self._cache
            for k in range(rows.shape[0]):
                cs = int.from_bytes(data[k * width : (k + 1) * width], "little")
                if seen.insert(cs):
                    cache.append(
                        cs,
                        op,
                        int(outcome.a_idx[k]),
                        int(outcome.b_idx[k]),
                        base + 1 + int(outcome.ordinals[k]),
                    )
        if outcome.hit is not None:
            ordinal, left, right = outcome.hit
            self.generated = base + ordinal + 1
            self._record_solution(op, left, right, self._current_cost)
            return True
        self.generated = base + outcome.total
        self._check_budget()
        return False

    # ------------------------------------------------------------------
    # Level checkpointing (see SearchEngine.restore_levels)
    # ------------------------------------------------------------------
    def _level_payload(self, start: int, end: int):
        rows = ints_to_matrix(
            self._cache.cs_list[start:end], self.universe.lanes
        )
        provenance = self._cache.provenance[start:end]
        return (
            rows,
            np.array([p[0] for p in provenance], dtype=np.int64),
            np.array([p[1] for p in provenance], dtype=np.int64),
            np.array([p[2] for p in provenance], dtype=np.int64),
            np.array(self._cache.ordinals[start:end], dtype=np.int64),
        )

    def _restored_ints(self, payload, lo: int, hi: int):
        """Rows ``[lo, hi)`` of a checkpoint as Python-int CSs."""
        rows = payload.rows[lo:hi]
        width = self.universe.lanes * 8
        data = np.ascontiguousarray(rows).astype("<u8", copy=False).tobytes()
        return [
            int.from_bytes(data[k * width : (k + 1) * width], "little")
            for k in range(rows.shape[0])
        ]

    def _adopt_restored(self, payload, lo: int, hi: int) -> None:
        for offset, cs in enumerate(self._restored_ints(payload, lo, hi)):
            k = lo + offset
            if self.check_uniqueness:
                self._seen.insert(cs)
            self._cache.append(
                cs,
                int(payload.ops[k]),
                int(payload.lefts[k]),
                int(payload.rights[k]),
                int(payload.ordinals[k]),
            )

    def _scan_restored(self, payload, limit: int) -> Optional[int]:
        for k, cs in enumerate(self._restored_ints(payload, 0, limit)):
            if self.solves_int(cs):
                return k
        return None
