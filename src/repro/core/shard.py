"""Intra-query sharded level construction: one query, all cores.

The paper's headline claim is *data-parallel* enumeration of a single
query; the service layer (``repro.service``) only parallelises across
queries, so one hard specification still saturates exactly one core.
This module shards the per-level pair work of a single search across a
pool of worker processes while keeping enumeration semantics —
candidate order, dedupe survivors, solution choice, ``generated``
counters — bit-identical to the serial engines.

The design (documented in ``docs/ARCHITECTURE.md``, "Sharded
enumeration"):

* **Row-granular partition plan.**  A cost level's same-constructor
  pairings flatten into *units* — one unit per left operand row, whose
  weight is the number of candidates that row contributes
  (:class:`PairGroupLayout`).  :func:`plan_shards` cuts the unit
  sequence into ``n_shards`` contiguous, weight-balanced ranges; because
  the ranges are contiguous in enumeration order, every shard owns a
  contiguous span of candidate *ordinals*.  The planner is a pure
  function, unit-tested deterministically.
* **Shared read-only state.**  Each worker holds a mirror of the
  language cache (rows only — provenance stays in the coordinator) fed
  by per-level broadcasts of the reconciled novel rows, a
  :class:`~repro.core.cache.PackedCache` plane cache over it, and a
  confirmed-key :class:`~repro.core.hashset.PackedKeySet` bulk-loaded
  with the same rows (:meth:`PackedKeySet.insert_novel_batch` — stored
  rows are distinct by construction, so the load never compares keys).
* **Two-phase dedupe.**  Phase one is shard-local and lossy-free: a
  candidate is dropped iff it matches a *confirmed* key
  (:meth:`PackedKeySet.contains_batch`) or an earlier candidate of the
  same shard (a fresh local set).  Phase two is the coordinator's
  ordered reconciliation: surviving candidates are re-inserted, in
  shard (= enumeration) order, into the engine's authoritative seen-set
  via the engine's normal store path, which removes cross-shard
  duplicates.  Phase one never drops a candidate phase two would have
  kept, and phase two catches everything phase one's stale mirror
  missed, so the stored sequence is exactly the serial one.
* **Solution arbitration.**  Workers solution-check every candidate
  (before dedupe, as the vectorised engine does — a duplicate can never
  be a *first* solution) and report the first hit's global ordinal; the
  coordinator takes the minimum across shards, keeps only candidates
  with smaller ordinals, and the engine records the winner — the same
  candidate the serial sweep would have stopped at.  A shared advisory
  stop ordinal lets shards past a reported hit abandon their remaining
  blocks early (a pure optimisation: their output is discarded either
  way).
* **Budgets.**  ``max_generated`` truncation is exact: the coordinator
  passes the remaining budget as a hard stop ordinal, workers clamp
  block generation to it, and the engine's ``generated`` counter
  advances by ``min(group total, remaining)`` — the serial boundary.

Sharding is gated off (the engine silently serves the serial path) in
OnTheFly mode, under a bounded cache, with uniqueness checking
disabled, for groups below
:data:`repro.core.engine.DEFAULT_SHARD_MIN_CANDIDATES`, and inside
daemonic processes (which may not spawn children; the service pool's
workers are non-daemonic exactly so pooled jobs can shard);
``shard_workers=1`` never constructs a coordinator at all.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.trace import Tracer
from ..testing.faults import fault_point
from .bitops import popcount_rows, unbitslice_rows
from .cache import PackedCache
from .engine import OP_CONCAT
from .hashset import PackedKeySet

#: Advisory stop sentinel: "no stop requested yet".
_NO_STOP = 1 << 62

Pairing = Tuple[Tuple[int, int], Tuple[int, int], bool]


# ----------------------------------------------------------------------
# Batched spec predicate
# ----------------------------------------------------------------------
class LaneMatcher:
    """Lane-restricted batched solution predicate on packed rows.

    The vectorised form of :func:`repro.core.engine.cs_solves`: checks
    only the uint64 lanes the specification masks actually touch (most
    lanes of a wide spec are all-zero in both masks), supporting the
    error-relaxed variant.  Shared by the vectorised engine's batch
    checks and the shard workers, so both evaluate the exact same
    predicate.
    """

    __slots__ = ("max_errors", "active", "pos", "neg", "lanes")

    def __init__(
        self,
        pos_lanes: np.ndarray,
        neg_lanes: np.ndarray,
        max_errors: int,
    ) -> None:
        self.max_errors = max_errors
        self.lanes = pos_lanes.shape[0]
        active = np.flatnonzero(pos_lanes | neg_lanes)
        self.active = None if active.size == self.lanes else active
        self.pos = pos_lanes if self.active is None else pos_lanes[self.active]
        self.neg = neg_lanes if self.active is None else neg_lanes[self.active]

    def flags(self, rows: np.ndarray) -> np.ndarray:
        """Per-row ``|= (P, N)`` verdicts for a ``(n, lanes)`` batch."""
        if self.active is not None:
            rows = rows.take(self.active, axis=1)
        if self.max_errors == 0:
            pos_ok = ((rows & self.pos) == self.pos).all(axis=1)
            neg_ok = ((rows & self.neg) == 0).all(axis=1)
            return pos_ok & neg_ok
        mistakes = popcount_rows((rows & self.pos) ^ self.pos)
        mistakes += popcount_rows(rows & self.neg)
        return mistakes <= self.max_errors


# ----------------------------------------------------------------------
# Partition plan (pure, deterministic)
# ----------------------------------------------------------------------
class PairGroupLayout:
    """Row-granular layout of one constructor's operand pairings.

    Flattens the pairings of a cost level into *units* — one unit per
    left operand row, in enumeration order — with one weight per unit:
    the number of candidates that row contributes (``n_right`` for
    rectangular pairings, ``end - 1 - i`` for row ``i`` of a triangular
    one).  ``cum[u]`` is the candidate ordinal of unit ``u``'s first
    candidate, so any contiguous unit range maps to a contiguous,
    known-offset span of candidate ordinals.
    """

    __slots__ = ("pairings", "unit_starts", "weights", "cum", "n_units", "total")

    def __init__(self, pairings: Sequence[Pairing]) -> None:
        self.pairings: List[Pairing] = list(pairings)
        parts: List[np.ndarray] = []
        self.unit_starts: List[int] = []
        units = 0
        for (l0, l1), _right, triangular in self.pairings:
            n_a = l1 - l0
            self.unit_starts.append(units)
            if triangular:
                parts.append(np.arange(n_a - 1, -1, -1, dtype=np.int64))
            else:
                r0, r1 = _right
                parts.append(np.full(n_a, r1 - r0, dtype=np.int64))
            units += n_a
        self.n_units = units
        self.weights = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        )
        self.cum = np.zeros(self.n_units + 1, dtype=np.int64)
        np.cumsum(self.weights, out=self.cum[1:])
        self.total = int(self.cum[-1])

    def slices(
        self, unit_lo: int, unit_hi: int
    ) -> List[Tuple[int, int, int, int]]:
        """The per-pairing work of units ``[unit_lo, unit_hi)``.

        Returns ``(pairing_index, row_lo, row_hi, ordinal)`` tuples in
        enumeration order — rows are *absolute* cache indices and
        ``ordinal`` is the group-wide candidate ordinal of the slice's
        first candidate.
        """
        out: List[Tuple[int, int, int, int]] = []
        for index, (left, _right, _tri) in enumerate(self.pairings):
            p_lo = self.unit_starts[index]
            p_hi = p_lo + (left[1] - left[0])
            lo = max(unit_lo, p_lo)
            hi = min(unit_hi, p_hi)
            if lo >= hi:
                continue
            out.append(
                (
                    index,
                    left[0] + (lo - p_lo),
                    left[0] + (hi - p_lo),
                    int(self.cum[lo]),
                )
            )
        return out


@dataclass(frozen=True)
class ShardRange:
    """One shard's contiguous slice of a pair group."""

    unit_lo: int
    unit_hi: int
    ordinal_lo: int
    candidates: int


def plan_shards(weights: Sequence[int], n_shards: int) -> List[ShardRange]:
    """Cut a unit-weight sequence into ``n_shards`` contiguous ranges.

    Pure and deterministic: shard ``s`` ends at the first unit boundary
    whose cumulative weight reaches ``total * (s + 1) / n_shards``, so
    every shard's candidate count is within one unit weight of the
    ideal balance.  Always returns exactly ``n_shards`` ranges; with
    more shards than units (or an all-zero weight vector) the trailing
    ranges are empty — the documented degenerate cases.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    weights = np.asarray(weights, dtype=np.int64)
    n_units = int(weights.shape[0])
    cum = np.zeros(n_units + 1, dtype=np.int64)
    np.cumsum(weights, out=cum[1:])
    total = int(cum[-1])
    if total == 0:
        ranges = [ShardRange(0, n_units, 0, 0)]
        ranges.extend(ShardRange(n_units, n_units, 0, 0) for _ in range(n_shards - 1))
        return ranges
    bounds = [0]
    for shard in range(1, n_shards):
        target = -(-total * shard // n_shards)  # ceil(total * s / n_shards)
        bound = int(np.searchsorted(cum[1:], target, side="left")) + 1
        bounds.append(max(bound, bounds[-1]))
    bounds.append(n_units)
    return [
        ShardRange(
            unit_lo=lo,
            unit_hi=hi,
            ordinal_lo=int(cum[lo]),
            candidates=int(cum[hi] - cum[lo]),
        )
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]


def total_pair_candidates(pairings: Sequence[Pairing]) -> int:
    """Candidate count of a pair group (closed form, no layout build)."""
    total = 0
    for (l0, l1), (r0, r1), triangular in pairings:
        if triangular:
            n = l1 - l0
            total += n * (n - 1) // 2
        else:
            total += (l1 - l0) * (r1 - r0)
    return total


# ----------------------------------------------------------------------
# Worker-side block generation (enumeration order, row sub-ranges)
# ----------------------------------------------------------------------
def _concat_shard_blocks(
    kernels,
    cache: PackedCache,
    left: Tuple[int, int],
    right: Tuple[int, int],
    row_lo: int,
    row_hi: int,
    max_batch: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Concat candidates of left rows ``[row_lo, row_hi)`` × the whole
    right level, as ``(rows, a_idx, b_idx)`` blocks in enumeration
    order — the same plane-resident kernel path as the serial engine,
    restricted to a row sub-range."""
    n_b = right[1] - right[0]
    if n_b == 0 or row_hi <= row_lo:
        return
    n_words = kernels.n_words
    lanes = kernels.lanes
    left_planes = cache.planes(left[0], left[1], n_words)
    right_planes = cache.planes(right[0], right[1], n_words)
    b8 = right_planes.shape[1]
    if n_b <= max_batch:
        per_row = max(1, max_batch // (b8 * 8))
        for i0 in range(row_lo, row_hi, per_row):
            i1 = min(i0 + per_row, row_hi)
            planes = kernels.concat_pair_planes(
                left_planes, right_planes, i0 - left[0], i1 - left[0]
            )
            padded = unbitslice_rows(planes, (i1 - i0) * b8 * 8, lanes)
            rows = padded.reshape(i1 - i0, b8 * 8, lanes)[:, :n_b].reshape(
                -1, lanes
            )
            a_idx = np.repeat(np.arange(i0, i1, dtype=np.int64), n_b)
            b_idx = np.tile(
                np.arange(right[0], right[0] + n_b, dtype=np.int64), i1 - i0
            )
            yield rows, a_idx, b_idx
    else:
        col_block = max_batch >> 3  # byte-columns per block
        for i in range(row_lo, row_hi):
            for c0 in range(0, b8, col_block):
                c1 = min(c0 + col_block, b8)
                planes = kernels.concat_pair_planes(
                    left_planes,
                    right_planes[:, c0:c1],
                    i - left[0],
                    i - left[0] + 1,
                )
                padded = unbitslice_rows(planes, (c1 - c0) * 8, lanes)
                j_lo = c0 * 8
                j_hi = min(c1 * 8, n_b)
                width = j_hi - j_lo
                rows = padded[:width]
                a_idx = np.full(width, i, dtype=np.int64)
                b_idx = np.arange(right[0] + j_lo, right[0] + j_hi, dtype=np.int64)
                yield rows, a_idx, b_idx


def _union_index_blocks(
    left: Tuple[int, int],
    right: Tuple[int, int],
    triangular: bool,
    row_lo: int,
    row_hi: int,
    cap: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Union pair indices of left rows ``[row_lo, row_hi)``, in
    enumeration order, at most ``cap`` pairs per block."""
    if not triangular:
        n_b = right[1] - right[0]
        total = (row_hi - row_lo) * n_b
        for k0 in range(0, total, cap):
            ks = np.arange(k0, min(k0 + cap, total), dtype=np.int64)
            yield row_lo + ks // n_b, right[0] + ks % n_b
        return
    end = left[1]
    last = min(row_hi, end - 1)  # the final row has no j > i partner
    i = row_lo
    while i < last:
        count_i = end - 1 - i
        if count_i > cap:
            for j0 in range(i + 1, end, cap):
                j1 = min(j0 + cap, end)
                yield (
                    np.full(j1 - j0, i, dtype=np.int64),
                    np.arange(j0, j1, dtype=np.int64),
                )
            i += 1
            continue
        total = 0
        i2 = i
        while i2 < last and total + (end - 1 - i2) <= cap:
            total += end - 1 - i2
            i2 += 1
        lefts = np.arange(i, i2, dtype=np.int64)
        counts = (end - 1) - lefts
        a_idx = np.repeat(lefts, counts)
        offsets = np.zeros(lefts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        b_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(lefts + 1, counts)
        )
        yield a_idx, b_idx
        i = i2


def _union_shard_blocks(
    cache: PackedCache,
    left: Tuple[int, int],
    right: Tuple[int, int],
    triangular: bool,
    row_lo: int,
    row_hi: int,
    max_batch: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    matrix = cache.matrix
    for a_idx, b_idx in _union_index_blocks(
        left, right, triangular, row_lo, row_hi, max_batch
    ):
        rows = matrix.take(a_idx, axis=0)
        rows |= matrix.take(b_idx, axis=0)
        yield rows, a_idx, b_idx


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _ShardWorker:
    """Process-local state and emit loop of one shard worker."""

    def __init__(
        self,
        universe,
        guide,
        pos_lanes: np.ndarray,
        neg_lanes: np.ndarray,
        max_errors: int,
        max_batch: int,
        split_block_bytes: int,
        stop_value,
    ) -> None:
        # Imported here to keep the module import acyclic: the engine
        # modules import :mod:`shard` at module level; the kernels are
        # only needed inside worker processes and coordinator calls.
        from .vector_engine import _Kernels

        self.kernels = _Kernels(universe, guide, split_block_bytes=split_block_bytes)
        self.cache = PackedCache(universe.lanes)
        self.confirmed = PackedKeySet(universe.lanes, initial_capacity=1 << 12)
        self.matcher = LaneMatcher(pos_lanes, neg_lanes, max_errors)
        self.max_batch = max(8, max_batch & ~7)
        self.stop_value = stop_value

    def append(self, rows: np.ndarray) -> None:
        """Mirror reconciled novel rows: cache matrix + confirmed keys."""
        zeros = np.zeros(rows.shape[0], dtype=np.int64)
        self.cache.append_rows(rows, 0, zeros, zeros)
        self.confirmed.insert_novel_batch(rows)

    def emit(
        self,
        op: int,
        pairings: Sequence[Pairing],
        unit_lo: int,
        unit_hi: int,
        stop_ordinal: int,
    ) -> Tuple[
        Optional[Tuple[int, int, int]], np.ndarray, np.ndarray, np.ndarray
    ]:
        """Build, check and locally dedupe this shard's candidates.

        Returns ``(hit, rows, a_idx, b_idx)``: the first satisfying
        candidate of the shard as ``(global ordinal, left, right)`` (or
        None), and the locally novel candidates *before* it, in
        enumeration order.
        """
        layout = PairGroupLayout(pairings)
        local = PackedKeySet(self.cache.lanes, initial_capacity=1 << 12)
        kept_rows: List[np.ndarray] = []
        kept_a: List[np.ndarray] = []
        kept_b: List[np.ndarray] = []
        kept_ord: List[np.ndarray] = []
        hit: Optional[Tuple[int, int, int]] = None
        for index, row_lo, row_hi, ordinal in layout.slices(unit_lo, unit_hi):
            if ordinal >= stop_ordinal or ordinal >= self.stop_value.value:
                break
            left, right, triangular = layout.pairings[index]
            if op == OP_CONCAT:
                stream = _concat_shard_blocks(
                    self.kernels,
                    self.cache,
                    left,
                    right,
                    row_lo,
                    row_hi,
                    self.max_batch,
                )
            else:
                stream = _union_shard_blocks(
                    self.cache,
                    left,
                    right,
                    triangular,
                    row_lo,
                    row_hi,
                    self.max_batch,
                )
            for rows, a_idx, b_idx in stream:
                block_ordinal = ordinal
                ordinal += rows.shape[0]
                if block_ordinal >= stop_ordinal:
                    return self._reply(hit, kept_rows, kept_a, kept_b, kept_ord)
                if block_ordinal >= self.stop_value.value:
                    # Advisory early-out: another shard already found a
                    # solution at a smaller ordinal, so everything from
                    # here on would be discarded by the coordinator.
                    return self._reply(hit, kept_rows, kept_a, kept_b, kept_ord)
                if ordinal > stop_ordinal:
                    keep = stop_ordinal - block_ordinal
                    rows = rows[:keep]
                    a_idx = a_idx[:keep]
                    b_idx = b_idx[:keep]
                flags = self.matcher.flags(rows)
                hits = np.flatnonzero(flags)
                if hits.size:
                    first = int(hits[0])
                    hit = (
                        block_ordinal + first,
                        int(a_idx[first]),
                        int(b_idx[first]),
                    )
                    rows = rows[:first]
                    a_idx = a_idx[:first]
                    b_idx = b_idx[:first]
                if rows.shape[0]:
                    rows = np.ascontiguousarray(rows)
                    present = self.confirmed.contains_batch(rows)
                    novel = local.insert_batch(rows)
                    keep_pos = np.flatnonzero(novel & ~present)
                    if keep_pos.size:
                        kept_rows.append(rows.take(keep_pos, axis=0))
                        kept_a.append(a_idx.take(keep_pos))
                        kept_b.append(b_idx.take(keep_pos))
                        kept_ord.append(block_ordinal + keep_pos)
                if hit is not None:
                    with self.stop_value.get_lock():
                        if hit[0] + 1 < self.stop_value.value:
                            self.stop_value.value = hit[0] + 1
                    return self._reply(hit, kept_rows, kept_a, kept_b, kept_ord)
        return self._reply(hit, kept_rows, kept_a, kept_b, kept_ord)

    def _reply(self, hit, kept_rows, kept_a, kept_b, kept_ord):
        lanes = self.cache.lanes
        if kept_rows:
            rows = np.concatenate(kept_rows)
            a_idx = np.concatenate(kept_a)
            b_idx = np.concatenate(kept_b)
            ordinals = np.concatenate(kept_ord).astype(np.int64, copy=False)
        else:
            rows = np.zeros((0, lanes), dtype=np.uint64)
            a_idx = np.zeros(0, dtype=np.int64)
            b_idx = np.zeros(0, dtype=np.int64)
            ordinals = np.zeros(0, dtype=np.int64)
        return hit, rows, a_idx, b_idx, ordinals


def _shard_worker_main(
    conn,
    universe,
    guide,
    pos_lanes: np.ndarray,
    neg_lanes: np.ndarray,
    max_errors: int,
    max_batch: int,
    split_block_bytes: int,
    stop_value,
    shard_index: int = 0,
    trace_id: Optional[str] = None,
) -> None:
    """Worker process body: serve append/emit messages until close."""
    worker = _ShardWorker(
        universe,
        guide,
        pos_lanes,
        neg_lanes,
        max_errors,
        max_batch,
        split_block_bytes,
        stop_value,
    )
    tracer = (
        None
        if trace_id is None
        else Tracer(trace_id, process="shard-worker-%d" % shard_index)
    )
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "append":
                worker.append(message[1])
            elif tag == "emit":
                (
                    _,
                    op,
                    pairings,
                    unit_lo,
                    unit_hi,
                    stop_ordinal,
                    span_parent,
                ) = message
                fault_point("shard.worker.emit")
                if tracer is not None and span_parent is not None:
                    span = tracer.start(
                        "shard-emit",
                        parent_id=span_parent,
                        shard=shard_index,
                        units=unit_hi - unit_lo,
                    )
                    reply = worker.emit(
                        op, pairings, unit_lo, unit_hi, stop_ordinal
                    )
                    tracer.finish(span, kept=int(reply[1].shape[0]))
                    reply = reply + (tracer.drain(),)
                else:
                    reply = worker.emit(
                        op, pairings, unit_lo, unit_hi, stop_ordinal
                    ) + ([],)
                conn.send(reply)
            else:  # "close"
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return  # coordinator gone; exit quietly
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ShardWorkerDied(RuntimeError):
    """A shard worker's pipe broke mid-round (the process crashed).

    Raised by the coordinator in place of the low-level pipe errors so
    the engine can fall back to serial re-execution of the group — safe
    because a round mutates no engine state until its outcome is
    reconciled.
    """


@dataclass
class ShardOutcome:
    """The merged result of one sharded pair-group emit.

    ``total`` is the number of candidates the group *generated* under
    the budget stop (``min(group candidates, remaining budget)``);
    ``rows``/``a_idx``/``b_idx`` are the locally-novel survivors in
    enumeration order, still subject to the engine's authoritative
    dedupe, and ``ordinals`` their 0-based group-relative generation
    ordinals (what level checkpoints turn into absolute ordinals);
    ``hit`` is the winning solution as ``(group ordinal, left, right)``
    or None.  ``spans`` are the wire-form trace spans the workers
    recorded during the round (empty on an untraced run) — timing
    metadata only, reconciled into the engine's tracer, never into
    enumeration state.
    """

    total: int
    hit: Optional[Tuple[int, int, int]]
    rows: np.ndarray
    a_idx: np.ndarray
    b_idx: np.ndarray
    ordinals: np.ndarray
    spans: List[dict] = field(default_factory=list)


class ShardCoordinator:
    """Owns the shard worker processes of one engine run.

    Workers share the run's staging (universe + guide table) and spec
    masks, mirror the language cache through :meth:`sync_rows`
    broadcasts, and serve synchronous :meth:`emit_pair_group` rounds.
    All communication is over per-worker pipes; rounds are strictly
    sequential, so no message interleaving is possible.
    """

    def __init__(
        self,
        universe,
        guide,
        pos_lanes: np.ndarray,
        neg_lanes: np.ndarray,
        max_errors: int,
        n_shards: int,
        max_batch: int = 1 << 17,
        split_block_bytes: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        if n_shards < 2:
            raise ValueError("a shard coordinator needs >= 2 shards")
        from .vector_engine import DEFAULT_SPLIT_BLOCK_BYTES

        if split_block_bytes is None:
            split_block_bytes = DEFAULT_SPLIT_BLOCK_BYTES
        self.n_shards = n_shards
        self.lanes = universe.lanes
        context = multiprocessing.get_context()
        self._stop_value = context.Value("q", _NO_STOP)
        self._conns = []
        self._processes = []
        for shard in range(n_shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    universe,
                    guide,
                    pos_lanes,
                    neg_lanes,
                    max_errors,
                    max_batch,
                    split_block_bytes,
                    self._stop_value,
                    shard,
                    trace_id,
                ),
                daemon=True,
                name="repro-shard-%d" % shard,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._synced_rows = 0
        self._closed = False

    # ------------------------------------------------------------------
    def sync_rows(
        self, fetch: Callable[[int, int], np.ndarray], upto: int
    ) -> None:
        """Broadcast cache rows ``[synced, upto)`` to every worker.

        ``fetch(lo, hi)`` must return the rows as a ``(hi - lo, lanes)``
        uint64 matrix; the engine passes a view of its packed cache (the
        scalar engine packs its int CSs on the fly).  Rows are appended
        worker-side to both the mirror cache and the confirmed key set.
        """
        if upto <= self._synced_rows:
            return
        rows = np.ascontiguousarray(fetch(self._synced_rows, upto))
        for conn in self._conns:
            self._send(conn, ("append", rows))
        self._synced_rows = upto

    def _send(self, conn, message) -> None:
        try:
            conn.send(message)
        except (BrokenPipeError, ConnectionResetError, EOFError, OSError) as exc:
            raise ShardWorkerDied("shard worker pipe broke on send") from exc

    def _recv(self, conn):
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise ShardWorkerDied("shard worker died before replying") from exc

    def emit_pair_group(
        self,
        op: int,
        pairings: Sequence[Pairing],
        remaining_budget: Optional[int],
        span_parent: Optional[str] = None,
    ) -> ShardOutcome:
        """One synchronous sharded emit round; see :class:`ShardOutcome`.

        ``span_parent`` is the engine-side fan-out span id a traced
        round's worker spans should hang off (None disables worker-side
        span recording for the round).
        """
        layout = PairGroupLayout(pairings)
        total = layout.total
        stop = (
            total
            if remaining_budget is None
            else min(total, max(0, remaining_budget))
        )
        with self._stop_value.get_lock():
            self._stop_value.value = stop if stop < total else _NO_STOP
        plan = plan_shards(layout.weights, self.n_shards)
        for shard_range, conn in zip(plan, self._conns):
            self._send(
                conn,
                (
                    "emit",
                    op,
                    layout.pairings,
                    shard_range.unit_lo,
                    shard_range.unit_hi,
                    stop,
                    span_parent,
                ),
            )
        replies = [self._recv(conn) for conn in self._conns]
        return self._merge(replies, stop)

    def _merge(self, replies, stop: int) -> ShardOutcome:
        """Ordered reconciliation of the shard replies (phase two's
        input): pick the minimum-ordinal hit, keep every shard before
        it whole and the hit shard's pre-hit survivors, drop the rest."""
        # Spans are harvested from *every* reply before the hit
        # truncation below: a dropped shard's work still happened, and
        # its timing is exactly what the timeline must show.
        spans: List[dict] = []
        for reply in replies:
            spans.extend(reply[5])
        best_hit = None
        hit_shard = None
        for shard, reply in enumerate(replies):
            hit = reply[0]
            if hit is not None and (best_hit is None or hit[0] < best_hit[0]):
                best_hit = hit
                hit_shard = shard
        if best_hit is not None:
            replies = replies[: hit_shard + 1]
        rows = [reply[1] for reply in replies if reply[1].shape[0]]
        if rows:
            merged_rows = np.concatenate(rows)
            merged_a = np.concatenate([r[2] for r in replies if r[1].shape[0]])
            merged_b = np.concatenate([r[3] for r in replies if r[1].shape[0]])
            merged_ord = np.concatenate(
                [r[4] for r in replies if r[1].shape[0]]
            )
        else:
            merged_rows = np.zeros((0, self.lanes), dtype=np.uint64)
            merged_a = np.zeros(0, dtype=np.int64)
            merged_b = np.zeros(0, dtype=np.int64)
            merged_ord = np.zeros(0, dtype=np.int64)
        return ShardOutcome(
            total=stop,
            hit=best_hit,
            rows=merged_rows,
            a_idx=merged_a,
            b_idx=merged_b,
            ordinals=merged_ord,
            spans=spans,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - safety net
                process.terminate()
                process.join(timeout=1)
        self._conns = []
        self._processes = []

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
