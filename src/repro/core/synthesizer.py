"""The public synthesis entry point: :func:`synthesize`.

This is the facade over the whole Paresy pipeline: build the universe
``ic(P ∪ N)`` and its guide table, pick an engine, run the cost sweep of
Algorithm 1, and reconstruct the winning regular expression.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Union as TypingUnion

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .engine import STATUS_SUCCESS, SearchEngine
from .reconstruct import reconstruct
from .result import SynthesisResult
from .scalar_engine import ScalarEngine
from .vector_engine import VectorEngine

#: Names accepted by the ``backend`` parameter, mapped to engine classes.
BACKENDS = {
    "scalar": ScalarEngine,  # the paper's CPU implementation
    "vector": VectorEngine,  # the paper's GPU implementation (numpy-simulated)
}

# Friendlier aliases.
BACKEND_ALIASES = {
    "cpu": "scalar",
    "gpu": "vector",
    "gpu-sim": "vector",
}


def make_engine(
    spec: Spec,
    cost_fn: CostFunction,
    backend: str = "vector",
    universe: Optional[Universe] = None,
    guide: Optional[GuideTable] = None,
    max_cache_size: Optional[int] = None,
    allowed_error: float = 0.0,
    use_guide_table: bool = True,
    check_uniqueness: bool = True,
    max_generated: Optional[int] = None,
) -> SearchEngine:
    """Construct (but do not run) a search engine.

    Exposed separately so tests and the evaluation harness can share one
    universe/guide-table across runs (the paper's staging: those depend
    only on ``(P, N)``, not on the cost function).
    """
    name = BACKEND_ALIASES.get(backend, backend)
    if name not in BACKENDS:
        raise ValueError(
            "unknown backend %r; expected one of %s"
            % (backend, sorted(BACKENDS) + sorted(BACKEND_ALIASES))
        )
    if universe is None:
        universe = Universe(spec.all_words, alphabet=spec.alphabet)
    if guide is None:
        guide = GuideTable(universe)
    return BACKENDS[name](
        spec,
        cost_fn,
        universe,
        guide,
        max_cache_size=max_cache_size,
        allowed_error=allowed_error,
        use_guide_table=use_guide_table,
        check_uniqueness=check_uniqueness,
        max_generated=max_generated,
    )


def synthesize(
    spec: TypingUnion[Spec, tuple],
    cost_fn: Optional[CostFunction] = None,
    max_cost: Optional[int] = None,
    backend: str = "vector",
    max_cache_size: Optional[int] = None,
    allowed_error: float = 0.0,
    use_guide_table: bool = True,
    check_uniqueness: bool = True,
    max_generated: Optional[int] = None,
    universe: Optional[Universe] = None,
    guide: Optional[GuideTable] = None,
) -> SynthesisResult:
    """Infer a precise, minimal regular expression from examples.

    Parameters
    ----------
    spec:
        A :class:`~repro.spec.Spec`, or a ``(positives, negatives)`` pair
        of string iterables.
    cost_fn:
        The cost homomorphism; defaults to ``(1, 1, 1, 1, 1)``.
    max_cost:
        Upper bound on the cost sweep.  Defaults to the cost of the
        maximally-overfitted union of the positive examples, which
        guarantees termination with a solution for precise synthesis.
    backend:
        ``"scalar"``/``"cpu"`` for the sequential engine, or
        ``"vector"``/``"gpu"`` for the data-parallel engine (default).
    max_cache_size:
        Capacity of the language cache in CSs.  When exceeded, the search
        enters OnTheFly mode and may finish with status ``"oom"``
        (paper §3).  ``None`` means unbounded.
    allowed_error:
        Fraction of examples the result may misclassify (paper §5.2);
        ``0.0`` demands precision.
    use_guide_table / check_uniqueness:
        Ablation switches (scalar backend): replace the staged guide
        table with per-construction split computation, or disable the
        uniqueness check.  Defaults reproduce the paper's algorithm.
    universe / guide:
        Pre-built staging structures to share across runs.

    Returns
    -------
    SynthesisResult
        With ``status`` ``"success"``, ``"not_found"`` or ``"oom"``.
    """
    if not isinstance(spec, Spec):
        positives, negatives = spec
        spec = Spec(positives, negatives)
    if cost_fn is None:
        cost_fn = CostFunction.uniform()
    if max_cost is None:
        max_cost = max(cost_fn.overfit_cost(spec.positive), cost_fn.literal)

    engine = make_engine(
        spec,
        cost_fn,
        backend=backend,
        universe=universe,
        guide=guide,
        max_cache_size=max_cache_size,
        allowed_error=allowed_error,
        use_guide_table=use_guide_table,
        check_uniqueness=check_uniqueness,
        max_generated=max_generated,
    )
    started = time.perf_counter()
    status = engine.run(max_cost)
    elapsed = time.perf_counter() - started

    result = SynthesisResult(
        status=status,
        spec=spec,
        backend=BACKEND_ALIASES.get(backend, backend),
        cost_function=cost_fn.as_tuple(),
        allowed_error=allowed_error,
        max_cost=max_cost,
        generated=engine.generated,
        unique_cs=len(engine.cache),
        universe_size=engine.universe.n_words,
        padded_bits=engine.universe.padded_bits,
        levels_built=engine.levels_built,
        elapsed_seconds=elapsed,
        extra={"level_stats": engine.level_stats},
    )
    if status == STATUS_SUCCESS:
        result.regex = reconstruct(
            engine.solution, engine.cache.provenance, engine.universe.alphabet
        )
        result.cost = engine.solution_cost
    return result
