"""The classic one-shot entry points: :func:`synthesize` and
:func:`make_engine`.

Both are thin backward-compatible facades over the session-oriented API
in :mod:`repro.api`: a :func:`synthesize` call builds a throwaway
:class:`~repro.api.session.Session` around a
:class:`~repro.api.config.SynthesisRequest`, so one-shot callers keep
the original keyword surface while long-lived callers migrate to
sessions and get staging reuse and batched serving for free.

``BACKENDS`` and ``BACKEND_ALIASES`` are import-time snapshots of the
default backend registry, kept for backward compatibility; new code
should consult :func:`repro.api.default_registry`.
"""

from __future__ import annotations

from typing import Optional, Union as TypingUnion

from ..api.config import EngineConfig, SynthesisRequest
from ..api.registry import default_registry
from ..api.session import Session
from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import CostFunction
from ..spec import Spec
from .engine import SearchEngine
from .result import SynthesisResult

#: Legacy view: canonical backend names mapped to engine classes.
BACKENDS = default_registry().backends()

#: Legacy view: friendly aliases mapped to canonical names.
BACKEND_ALIASES = default_registry().aliases()


def make_engine(
    spec: Spec,
    cost_fn: CostFunction,
    backend: str = "vector",
    universe: Optional[Universe] = None,
    guide: Optional[GuideTable] = None,
    max_cache_size: Optional[int] = None,
    allowed_error: float = 0.0,
    use_guide_table: bool = True,
    check_uniqueness: bool = True,
    max_generated: Optional[int] = None,
    shard_workers: int = 1,
) -> SearchEngine:
    """Construct (but do not run) a search engine.

    Exposed separately so tests and the evaluation harness can share one
    universe/guide-table across runs (the paper's staging: those depend
    only on ``(P, N)``, not on the cost function).
    """
    info = default_registry().resolve(backend)
    if universe is None:
        universe = Universe(spec.all_words, alphabet=spec.alphabet)
    if guide is None:
        guide = GuideTable(universe)
    return info.factory(
        spec,
        cost_fn,
        universe,
        guide,
        max_cache_size=max_cache_size,
        allowed_error=allowed_error,
        use_guide_table=use_guide_table,
        check_uniqueness=check_uniqueness,
        max_generated=max_generated,
        shard_workers=shard_workers,
    )


def synthesize(
    spec: TypingUnion[Spec, tuple],
    cost_fn: Optional[CostFunction] = None,
    max_cost: Optional[int] = None,
    backend: str = "vector",
    max_cache_size: Optional[int] = None,
    allowed_error: float = 0.0,
    use_guide_table: bool = True,
    check_uniqueness: bool = True,
    max_generated: Optional[int] = None,
    universe: Optional[Universe] = None,
    guide: Optional[GuideTable] = None,
) -> SynthesisResult:
    """Infer a precise, minimal regular expression from examples.

    Parameters
    ----------
    spec:
        A :class:`~repro.spec.Spec`, or a ``(positives, negatives)`` pair
        of string iterables.
    cost_fn:
        The cost homomorphism; defaults to ``(1, 1, 1, 1, 1)``.
    max_cost:
        Upper bound on the cost sweep.  Defaults to the cost of the
        maximally-overfitted union of the positive examples, which
        guarantees termination with a solution for precise synthesis.
    backend:
        Any name or alias known to the backend registry —
        ``"scalar"``/``"cpu"`` for the sequential engine, or
        ``"vector"``/``"gpu"`` for the data-parallel engine (default).
    max_cache_size:
        Capacity of the language cache in CSs.  When exceeded, the search
        enters OnTheFly mode and may finish with status ``"oom"``
        (paper §3).  ``None`` means unbounded.
    allowed_error:
        Fraction of examples the result may misclassify (paper §5.2);
        ``0.0`` demands precision.
    use_guide_table / check_uniqueness:
        Ablation switches (scalar backend): replace the staged guide
        table with per-construction split computation, or disable the
        uniqueness check.  Defaults reproduce the paper's algorithm.
    universe / guide:
        Pre-built staging structures to share across runs (long-lived
        callers should prefer a :class:`~repro.api.session.Session`,
        which caches them automatically).

    Returns
    -------
    SynthesisResult
        With ``status`` ``"success"``, ``"not_found"`` or ``"oom"``.
    """
    if not isinstance(spec, Spec):
        positives, negatives = spec
        spec = Spec(positives, negatives)
    request = SynthesisRequest(
        spec=spec,
        cost_fn=cost_fn,
        max_cost=max_cost,
        allowed_error=allowed_error,
        max_generated=max_generated,
        config=EngineConfig(
            backend=backend,
            max_cache_size=max_cache_size,
            use_guide_table=use_guide_table,
            check_uniqueness=check_uniqueness,
        ),
    )
    # A throwaway session: one-shot semantics (no cross-call caching),
    # identical staging behaviour to the original facade.
    return Session(request.config).synthesize(request, universe=universe, guide=guide)
