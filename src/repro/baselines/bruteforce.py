"""A naive bottom-up *syntactic* enumerator.

This baseline enumerates regular expression ASTs by increasing cost with
only syntactic deduplication and tests each against the specification
with the derivative matcher.  It shares no representation with Paresy —
no characteristic sequences, no infix closure, no guide table — which
makes it the independent oracle the test-suite uses to cross-validate
Paresy's *minimality* on small instances: both must report the same
optimal cost.

Complexity is catastrophic by design; only use with small ``max_cost``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..regex.ast import Char, Concat, Question, Regex, Star, Union
from ..regex.cost import CostFunction
from ..regex.derivatives import satisfies
from ..regex.printer import to_string
from ..spec import Spec


@dataclass
class BruteForceResult:
    """Outcome of a brute-force enumeration run."""

    status: str
    regex: Optional[Regex] = None
    cost: Optional[int] = None
    checked: int = 0
    elapsed_seconds: float = 0.0

    @property
    def found(self) -> bool:
        """True iff a consistent regex was found."""
        return self.status == "success"

    @property
    def regex_str(self) -> Optional[str]:
        """Concrete syntax of the result (None if not found)."""
        return to_string(self.regex) if self.regex is not None else None


def bruteforce_synthesize(
    spec: Spec,
    cost_fn: Optional[CostFunction] = None,
    max_cost: int = 9,
) -> BruteForceResult:
    """Exhaustively search all regexes of cost ≤ ``max_cost``.

    Returns the first (hence minimal-cost) consistent regex; enumeration
    order within a cost level is: question marks, stars, concatenations,
    unions — the same constructor order as Paresy, so on agreement the
    two return expressions of identical cost (possibly different shape).
    """
    if cost_fn is None:
        cost_fn = CostFunction.uniform()
    started = time.perf_counter()
    result = BruteForceResult(status="not_found")

    from ..regex.ast import EMPTY, EPSILON

    for trivial in (EMPTY, EPSILON):
        result.checked += 1
        if satisfies(trivial, spec.positive, spec.negative):
            result.status = "success"
            result.regex = trivial
            result.cost = cost_fn.literal
            result.elapsed_seconds = time.perf_counter() - started
            return result

    by_cost: Dict[int, List[Regex]] = {}
    c1 = cost_fn.literal
    by_cost[c1] = [Char(ch) for ch in spec.alphabet]
    for candidate in by_cost[c1]:
        result.checked += 1
        if satisfies(candidate, spec.positive, spec.negative):
            result.status = "success"
            result.regex = candidate
            result.cost = c1
            result.elapsed_seconds = time.perf_counter() - started
            return result

    for cost in range(c1 + 1, max_cost + 1):
        level: List[Regex] = []

        def check(candidate: Regex) -> bool:
            result.checked += 1
            if satisfies(candidate, spec.positive, spec.negative):
                result.status = "success"
                result.regex = candidate
                result.cost = cost
                return True
            level.append(candidate)
            return False

        for inner in by_cost.get(cost - cost_fn.question, ()):
            if check(Question(inner)):
                break
        if result.found:
            break
        for inner in by_cost.get(cost - cost_fn.star, ()):
            if check(Star(inner)):
                break
        if result.found:
            break
        budget = cost - cost_fn.concat
        for left_cost in sorted(by_cost):
            if result.found:
                break
            right_cost = budget - left_cost
            if right_cost < c1:
                break
            for left in by_cost[left_cost]:
                if result.found:
                    break
                for right in by_cost.get(right_cost, ()):
                    if check(Concat(left, right)):
                        break
        if result.found:
            break
        budget = cost - cost_fn.union
        for left_cost in sorted(by_cost):
            if result.found:
                break
            right_cost = budget - left_cost
            if right_cost < left_cost:
                break
            for i, left in enumerate(by_cost[left_cost]):
                if result.found:
                    break
                rights = by_cost.get(right_cost, ())
                start = i + 1 if right_cost == left_cost else 0
                for right in rights[start:]:
                    if check(Union(left, right)):
                        break
        if result.found:
            break
        by_cost[cost] = level

    result.elapsed_seconds = time.perf_counter() - started
    return result
