"""A reimplementation of AlphaRegex (Lee, So & Oh, GPCE 2016).

AlphaRegex is the state-of-the-art comparator of the paper's Table 2: a
*top-down*, best-first, exhaustive search over regular expressions
extended with holes (``□``).  A queue of partial expressions is popped in
increasing-cost order; complete expressions are checked against the
specification, partial ones have their leftmost hole expanded with every
production.  Two sound pruning rules discard partial expressions early:

* **over-approximation** — replace every hole with ``Σ*``; if the result
  rejects some positive example, no completion can accept it (hole
  contexts are monotone: the grammar has no complement), so prune;
* **under-approximation** — replace every hole with ``∅``; if the result
  accepts some negative example, every completion does, so prune.

On top of these, redundancy rules discard expressions that are never the
unique minimal form (nested stars, ``(r?)?``, unions with syntactically
equal sides, ...).  Like the original, the cost function is a cost
homomorphism and the implementation only guarantees *precision*;
minimality can be lost through aggressive pruning — the paper observed
AlphaRegex returning non-minimal answers on ~25% of its own benchmarks.
The optional ``example_subsumption_pruning`` flag enables an
example-guided union-pruning heuristic of that aggressive kind.

The "# REs" counter (``checked``) counts complete expressions tested
against the specification — the implementation-language-independent
metric Table 2 reports.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..regex.ast import (
    Char,
    Concat,
    Empty,
    Epsilon,
    HOLE,
    Hole,
    Question,
    Regex,
    Star,
    Union,
    has_hole,
    union_all,
)
from ..regex.cost import ALPHAREGEX_COST, CostFunction
from ..regex.derivatives import matches
from ..regex.printer import to_string
from ..spec import Spec


@dataclass
class AlphaRegexResult:
    """Outcome of one AlphaRegex run.

    ``checked`` counts complete candidate expressions tested against the
    specification; ``expanded`` counts queue pops; ``pruned_over`` /
    ``pruned_under`` count the prunings by each approximation.
    """

    status: str
    spec: Spec
    regex: Optional[Regex] = None
    cost: Optional[int] = None
    checked: int = 0
    expanded: int = 0
    pruned_over: int = 0
    pruned_under: int = 0
    elapsed_seconds: float = 0.0

    @property
    def found(self) -> bool:
        """True iff a consistent regex was found."""
        return self.status == "success"

    @property
    def regex_str(self) -> Optional[str]:
        """Concrete syntax of the result (None if not found)."""
        return to_string(self.regex) if self.regex is not None else None


class AlphaRegexSynthesizer:
    """Best-first top-down synthesis over regexes with holes."""

    def __init__(
        self,
        spec: Spec,
        cost_fn: CostFunction = ALPHAREGEX_COST,
        max_checked: Optional[int] = None,
        max_expanded: Optional[int] = None,
        example_subsumption_pruning: bool = False,
    ) -> None:
        self.spec = spec
        self.cost_fn = cost_fn
        self.max_checked = max_checked
        self.max_expanded = max_expanded
        self.example_subsumption_pruning = example_subsumption_pruning
        self._sigma_star = Star(union_all([Char(ch) for ch in spec.alphabet]))
        self._expansions = self._make_expansions()

    def _make_expansions(self) -> List[Regex]:
        atoms: List[Regex] = [Char(ch) for ch in self.spec.alphabet]
        operators: List[Regex] = [
            Question(HOLE),
            Star(HOLE),
            Concat(HOLE, HOLE),
            Union(HOLE, HOLE),
        ]
        return atoms + operators

    # ------------------------------------------------------------------
    def run(self) -> AlphaRegexResult:
        """Search until a consistent regex is found or a budget expires."""
        started = time.perf_counter()
        result = AlphaRegexResult(status="not_found", spec=self.spec)

        # ε is a legal answer AlphaRegex's grammar cannot produce through
        # hole expansion; check the two degenerate candidates up front.
        for trivial in (Empty(), Epsilon()):
            result.checked += 1
            if self.spec.is_satisfied_by(trivial):
                result.status = "success"
                result.regex = trivial
                result.cost = self.cost_fn.cost(trivial)
                result.elapsed_seconds = time.perf_counter() - started
                return result

        counter = itertools.count()
        queue: List[Tuple[int, int, Regex]] = [
            (self.cost_fn.cost(HOLE), next(counter), HOLE)
        ]
        visited: Set[Regex] = {HOLE}

        while queue:
            if self.max_expanded is not None and result.expanded >= self.max_expanded:
                result.status = "budget"
                break
            if self.max_checked is not None and result.checked >= self.max_checked:
                result.status = "budget"
                break
            cost, _, state = heapq.heappop(queue)
            result.expanded += 1
            if not has_hole(state):
                result.checked += 1
                if self.spec.is_satisfied_by(state):
                    result.status = "success"
                    result.regex = state
                    result.cost = cost
                    break
                continue
            for successor in self._expand(state):
                if successor in visited:
                    continue
                visited.add(successor)
                if self._redundant(successor):
                    continue
                if not self._feasible(successor, result):
                    continue
                heapq.heappush(
                    queue,
                    (self.cost_fn.cost(successor), next(counter), successor),
                )
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    def _expand(self, state: Regex) -> List[Regex]:
        """All single-step expansions of the leftmost hole of ``state``."""
        return [
            _replace_leftmost(state, replacement)
            for replacement in self._expansions
        ]

    def _feasible(self, state: Regex, result: AlphaRegexResult) -> bool:
        """Apply the over-/under-approximation prunings of Lee et al."""
        over = _substitute_holes(state, self._sigma_star)
        if not all(matches(over, word) for word in self.spec.positive):
            result.pruned_over += 1
            return False
        under = _substitute_holes(state, Empty())
        if any(matches(under, word) for word in self.spec.negative):
            result.pruned_under += 1
            return False
        if self.example_subsumption_pruning and not self._union_useful(state):
            return False
        return True

    def _union_useful(self, state: Regex) -> bool:
        """Aggressive (minimality-unsound) heuristic: prune complete
        unions whose right branch adds no behaviour on the examples."""
        for node in _iter_unions(state):
            if has_hole(node):
                continue
            examples = self.spec.all_words
            left_hits = {w for w in examples if matches(node.left, w)}
            right_hits = {w for w in examples if matches(node.right, w)}
            if right_hits <= left_hits or left_hits <= right_hits:
                return False
        return True

    @staticmethod
    def _redundant(state: Regex) -> bool:
        """Syntactic redundancy rules (language- and cost-safe)."""
        for node in _iter_nodes(state):
            if isinstance(node, Star) and isinstance(node.inner, (Star, Question)):
                return True
            if isinstance(node, Question) and isinstance(
                node.inner, (Star, Question)
            ):
                return True
            if (
                isinstance(node, Union)
                and node.left == node.right
                and not has_hole(node.left)
            ):
                # Equal *complete* sides only: ``□+□`` has equal sides
                # syntactically but its holes are filled independently.
                return True
        return False


def _iter_nodes(regex: Regex):
    stack = [regex]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (Concat, Union)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (Star, Question)):
            stack.append(node.inner)


def _iter_unions(regex: Regex):
    return (node for node in _iter_nodes(regex) if isinstance(node, Union))


def _replace_leftmost(state: Regex, replacement: Regex) -> Regex:
    """Replace the leftmost hole of ``state`` by ``replacement``."""
    new_state, replaced = _replace_walk(state, replacement)
    if not replaced:
        raise ValueError("state has no hole: %r" % (state,))
    return new_state


def _replace_walk(state: Regex, replacement: Regex) -> Tuple[Regex, bool]:
    if isinstance(state, Hole):
        return replacement, True
    if isinstance(state, (Concat, Union)):
        left, replaced = _replace_walk(state.left, replacement)
        if replaced:
            return type(state)(left, state.right), True
        right, replaced = _replace_walk(state.right, replacement)
        if replaced:
            return type(state)(state.left, right), True
        return state, False
    if isinstance(state, (Star, Question)):
        inner, replaced = _replace_walk(state.inner, replacement)
        if replaced:
            return type(state)(inner), True
        return state, False
    return state, False


def _substitute_holes(state: Regex, filler: Regex) -> Regex:
    """Replace *every* hole of ``state`` by ``filler``."""
    if isinstance(state, Hole):
        return filler
    if isinstance(state, (Concat, Union)):
        return type(state)(
            _substitute_holes(state.left, filler),
            _substitute_holes(state.right, filler),
        )
    if isinstance(state, (Star, Question)):
        return type(state)(_substitute_holes(state.inner, filler))
    return state


def alpharegex_synthesize(
    spec: Spec,
    cost_fn: CostFunction = ALPHAREGEX_COST,
    max_checked: Optional[int] = None,
    max_expanded: Optional[int] = None,
    example_subsumption_pruning: bool = False,
) -> AlphaRegexResult:
    """Convenience wrapper around :class:`AlphaRegexSynthesizer`."""
    return AlphaRegexSynthesizer(
        spec,
        cost_fn=cost_fn,
        max_checked=max_checked,
        max_expanded=max_expanded,
        example_subsumption_pruning=example_subsumption_pruning,
    ).run()
