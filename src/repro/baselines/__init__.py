"""Baseline synthesisers: AlphaRegex (Table 2 comparator) and a naive
brute-force enumerator (minimality oracle for tests)."""

from .alpharegex import AlphaRegexResult, AlphaRegexSynthesizer, alpharegex_synthesize
from .bruteforce import BruteForceResult, bruteforce_synthesize

__all__ = [
    "AlphaRegexResult",
    "AlphaRegexSynthesizer",
    "alpharegex_synthesize",
    "BruteForceResult",
    "bruteforce_synthesize",
]
