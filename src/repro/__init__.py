"""repro — a reproduction of *Search-Based Regular Expression Inference
on a GPU* (Valizadeh & Berger, PLDI 2023).

Quick start::

    from repro import Spec, CostFunction, synthesize

    spec = Spec(
        positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
        negative=["", "0", "1", "00", "11", "010"],
    )
    result = synthesize(spec, cost_fn=CostFunction.uniform())
    print(result.regex_str)   # 10(0+1)*

For many requests, use a :class:`Session` (staging reuse, batched
serving); for multi-core, restart-durable serving, use
:class:`repro.service.ServiceClient` or the ``repro serve`` /
``repro submit`` CLI (see docs/README.md).

See docs/ARCHITECTURE.md for the system design and EXPERIMENTS.md for the
reproduction of every table and figure of the paper.
"""

# The core package must initialise before the api re-exports below:
# ``core.synthesizer`` (the legacy facade) imports the session layer at
# a point where every core module it needs is already loaded.
from .core.incremental import IncrementalSynthesizer
from .core.result import SynthesisResult
from .core.synthesizer import make_engine, synthesize

from .api import (
    BackendRegistry,
    CancellationToken,
    EngineConfig,
    ProgressEvent,
    Session,
    SynthesisRequest,
    SynthesisService,
    default_registry,
)
from .errors import CapacityError, InvalidSpecError, ReproError
from .service import ServiceClient, WorkerPool
from .regex.ast import Regex
from .regex.cost import ALPHAREGEX_COST, EVALUATION_COST_FUNCTIONS, CostFunction
from .regex.parser import parse
from .regex.printer import to_string
from .spec import Spec

__version__ = "1.6.0"

__all__ = [
    "ServiceClient",
    "WorkerPool",
    "BackendRegistry",
    "CancellationToken",
    "EngineConfig",
    "ProgressEvent",
    "Session",
    "SynthesisRequest",
    "SynthesisService",
    "default_registry",
    "IncrementalSynthesizer",
    "SynthesisResult",
    "make_engine",
    "synthesize",
    "CapacityError",
    "InvalidSpecError",
    "ReproError",
    "Regex",
    "ALPHAREGEX_COST",
    "EVALUATION_COST_FUNCTIONS",
    "CostFunction",
    "parse",
    "to_string",
    "Spec",
    "__version__",
]
