"""Figure 1 of the paper: impact of the cost function on synthesis time.

The paper runs ~430 generated benchmarks under 12 cost functions on the
Colab GPU, sorts benchmarks by their ``(1,1,1,1,1)`` duration and plots
all series.  This module regenerates that experiment at reproduction
scale on the vectorised engine: every benchmark × cost-function cell is
one bounded synthesis run; cells whose candidate budget expires play the
role of the paper's 5-second timeouts and are omitted from the plot,
exactly as the paper omits its 3.62% of slow runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..regex.cost import EVALUATION_COST_FUNCTIONS, CostFunction
from ..suites.generator import (
    SCALED_TYPE1_PARAMS,
    SCALED_TYPE2_PARAMS,
    GeneratedBenchmark,
    generate_suite,
)
from .harness import staging_for, time_paresy
from .reporting import ascii_series_plot, render_table


@dataclass
class Figure1Data:
    """All measurements behind Figure 1."""

    benchmark_names: List[str]
    cost_functions: List[Tuple[int, ...]]
    #: elapsed[cost_fn][benchmark_index]; None where the budget expired.
    elapsed: Dict[Tuple[int, ...], List[Optional[float]]]
    budget_expired: int = 0

    def sorted_by_uniform(self) -> "Figure1Data":
        """Re-order benchmarks by their (1,1,1,1,1) duration — the
        paper's x-axis convention."""
        uniform = (1, 1, 1, 1, 1)
        key = self.elapsed[uniform]
        order = sorted(
            range(len(self.benchmark_names)),
            key=lambda i: (key[i] is None, key[i] if key[i] is not None else 0.0),
        )
        return Figure1Data(
            benchmark_names=[self.benchmark_names[i] for i in order],
            cost_functions=self.cost_functions,
            elapsed={
                cf: [series[i] for i in order]
                for cf, series in self.elapsed.items()
            },
            budget_expired=self.budget_expired,
        )

    def summary_rows(self) -> List[List[object]]:
        """Per-cost-function summary: solved cells, mean/max time, share
        of cells under 1s and 2s (the paper's 60% / 73% observation)."""
        rows: List[List[object]] = []
        for cf in self.cost_functions:
            series = [v for v in self.elapsed[cf] if v is not None]
            n_cells = len(self.elapsed[cf])
            if series:
                mean = sum(series) / len(series)
                peak = max(series)
                under1 = 100.0 * sum(1 for v in series if v < 1.0) / n_cells
                under2 = 100.0 * sum(1 for v in series if v < 2.0) / n_cells
            else:
                mean = peak = under1 = under2 = 0.0
            rows.append(
                [str(cf), len(series), n_cells, mean, peak, under1, under2]
            )
        return rows

    def render(self) -> str:
        """ASCII rendering: the sorted uniform-cost series plus the
        per-cost-function summary table."""
        data = self.sorted_by_uniform()
        uniform = (1, 1, 1, 1, 1)
        plot = ascii_series_plot(
            data.elapsed[uniform],
            label="benchmarks sorted by (1,1,1,1,1) duration [s]",
        )
        table = render_table(
            ["cost fn", "solved", "cells", "mean s", "max s", "%<1s", "%<2s"],
            data.summary_rows(),
            title="Figure 1 summary (per cost function)",
        )
        return plot + "\n\n" + table


def figure1(
    type1_count: int = 10,
    type2_count: int = 10,
    cost_functions: Sequence[CostFunction] = EVALUATION_COST_FUNCTIONS,
    max_generated: int = 400_000,
    backend: str = "vector",
    base_seed: int = 7,
) -> Figure1Data:
    """Regenerate Figure 1's data at reproduction scale."""
    benchmarks: List[GeneratedBenchmark] = []
    benchmarks += generate_suite(1, type1_count, SCALED_TYPE1_PARAMS, base_seed)
    benchmarks += generate_suite(2, type2_count, SCALED_TYPE2_PARAMS, base_seed)
    cfs = [cf.as_tuple() for cf in cost_functions]
    elapsed: Dict[Tuple[int, ...], List[Optional[float]]] = {
        cf: [] for cf in cfs
    }
    expired = 0
    for bench in benchmarks:
        staging = staging_for(bench.spec)
        for cf, cf_tuple in zip(cost_functions, cfs):
            record = time_paresy(
                bench.name,
                bench.spec,
                cf,
                backend=backend,
                max_generated=max_generated,
                staging=staging,
            )
            if record.status == "success":
                elapsed[cf_tuple].append(record.elapsed_seconds)
            else:
                elapsed[cf_tuple].append(None)
                expired += 1
    return Figure1Data(
        benchmark_names=[bench.name for bench in benchmarks],
        cost_functions=cfs,
        elapsed=elapsed,
        budget_expired=expired,
    )
