"""The evaluation harness: regenerates every table and figure of the
paper's §4/§5.2 at reproduction scale."""

from .figures import Figure1Data, figure1
from .harness import RunRecord, staging_for, time_alpharegex, time_paresy
from .report import bench_report, render_artifact
from .reporting import ascii_series_plot, render_markdown, render_table
from .tables import (
    ERROR_TABLE_SPEC,
    TableData,
    ablation_cache_capacity,
    ablation_guide_table,
    ablation_uniqueness,
    error_table,
    outlier_table,
    table1,
    table2,
)

__all__ = [
    "Figure1Data",
    "figure1",
    "RunRecord",
    "staging_for",
    "time_alpharegex",
    "time_paresy",
    "bench_report",
    "render_artifact",
    "ascii_series_plot",
    "render_markdown",
    "render_table",
    "ERROR_TABLE_SPEC",
    "TableData",
    "ablation_cache_capacity",
    "ablation_guide_table",
    "ablation_uniqueness",
    "error_table",
    "outlier_table",
    "table1",
    "table2",
]
