"""Regeneration of the paper's tables (Table 1, Table 2, the outlier
table, the §5.2 allowed-error table) plus the design-choice ablations.

All experiments run at reproduction scale (see docs/ARCHITECTURE.md): the
absolute wall-clock numbers belong to this machine and a pure-Python
engine, but each table preserves the paper's *shape* claims, which
EXPERIMENTS.md records side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.synthesizer import synthesize
from ..regex.cost import ALPHAREGEX_COST, EVALUATION_COST_FUNCTIONS, CostFunction
from ..spec import Spec
from ..suites.alpharegex_suite import ALPHAREGEX_TASKS, SuiteTask
from ..suites.generator import (
    SCALED_TYPE1_PARAMS,
    SCALED_TYPE2_PARAMS,
    GeneratedBenchmark,
    generate_suite,
)
from ..api import Session
from .harness import time_alpharegex, time_paresy
from .reporting import render_table

#: The exact specification of the paper's §5.2 allowed-error table
#: (also the Table 1 row "Type 1, No 50").
ERROR_TABLE_SPEC = Spec(
    positive=["00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010"],
    negative=["", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001",
              "11", "1110"],
)


@dataclass
class TableData:
    """A rendered-ready table: headers, rows and a title."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def render(self) -> str:
        """ASCII rendering."""
        return render_table(self.headers, self.rows, title=self.title)


# ----------------------------------------------------------------------
# Table 1: CPU vs GPU on the hardest benchmarks
# ----------------------------------------------------------------------
def _hardest_benchmark(
    pool: Sequence[GeneratedBenchmark],
    cost_fn: CostFunction,
    max_generated: int,
    session: Optional[Session] = None,
) -> Tuple[Optional[GeneratedBenchmark], int]:
    """The pool benchmark with the most generated candidates that still
    completes within the budget — the scaled analogue of the paper's
    "longest-running benchmark that neither ran out-of-memory nor timed
    out" selection rule."""
    best = None
    best_generated = -1
    for bench in pool:
        record = time_paresy(
            bench.name,
            bench.spec,
            cost_fn,
            backend="vector",
            max_generated=max_generated,
            session=session,
        )
        if record.status == "success" and record.generated > best_generated:
            best = bench
            best_generated = record.generated
    return best, best_generated


def table1(
    pool_size: int = 8,
    cost_functions: Sequence[CostFunction] = EVALUATION_COST_FUNCTIONS,
    max_generated: int = 200_000,
    repeats: int = 1,
    base_seed: int = 13,
) -> TableData:
    """Regenerate Table 1: scalar ("CPU") vs vector ("GPU") comparison.

    For each (benchmark type, cost function) pair, the hardest benchmark
    of a generated pool is timed on both engines.  Both engines generate
    the same candidates, so "# REs" is a single shared column, exactly
    as in the paper.
    """
    table = TableData(
        title="Table 1 — Paresy scalar (CPU) vs vector (GPU-sim) on hardest examples",
        headers=["Type", "No", "#P", "#N", "Cost Function", "CPU s",
                 "GPU-sim s", "Speed-up", "# REs"],
    )
    speedups: List[float] = []
    # One session for the whole table: every cost-function sweep over a
    # pool benchmark reuses its staged universe/guide table (the paper's
    # staging split, institutionalised by the serving layer).
    session = Session()
    for benchmark_type, params in ((1, SCALED_TYPE1_PARAMS), (2, SCALED_TYPE2_PARAMS)):
        pool = generate_suite(benchmark_type, pool_size, params, base_seed)
        for cost_fn in cost_functions:
            bench, _ = _hardest_benchmark(pool, cost_fn, max_generated,
                                          session=session)
            if bench is None:
                table.rows.append(
                    [benchmark_type, "-", "-", "-", str(cost_fn.as_tuple()),
                     None, None, None, None]
                )
                continue
            staging = session.staging_for(bench.spec)
            cpu = time_paresy(bench.name, bench.spec, cost_fn, "scalar",
                              repeats=repeats, staging=staging)
            gpu = time_paresy(bench.name, bench.spec, cost_fn, "vector",
                              repeats=repeats, staging=staging)
            speedup = (
                cpu.elapsed_seconds / gpu.elapsed_seconds
                if gpu.elapsed_seconds > 0
                else float("inf")
            )
            speedups.append(speedup)
            assert cpu.generated == gpu.generated, "engines must agree on # REs"
            table.rows.append(
                [benchmark_type, bench.name, bench.n_pos, bench.n_neg,
                 str(cost_fn.as_tuple()), cpu.elapsed_seconds,
                 gpu.elapsed_seconds, "%.0fx" % speedup, cpu.generated]
            )
    if speedups:
        table.rows.append(
            ["", "Average", "", "", "", None, None,
             "%.0fx" % (sum(speedups) / len(speedups)), None]
        )
    return table


# ----------------------------------------------------------------------
# Table 2: Paresy vs AlphaRegex on the classic suite
# ----------------------------------------------------------------------
def table2(
    tasks: Sequence[SuiteTask] = ALPHAREGEX_TASKS,
    n_pos: int = 10,
    n_neg: int = 10,
    max_len: int = 7,
    paresy_budget: int = 3_000_000,
    alpharegex_budget: int = 40_000,
    repeats: int = 1,
) -> TableData:
    """Regenerate Table 2: AlphaRegex vs Paresy (scalar) per task.

    ``Cost(RE)`` is reported on AlphaRegex's (5,5,5,5,5) scale, as in
    the paper.  Budget-exhausted cells print as N/A — the paper's
    ``>20000`` / N/A convention.
    """
    table = TableData(
        title="Table 2 — AlphaRegex vs Paresy (scalar backend)",
        headers=["No", "aR s", "Paresy s", "Speed-up", "aR cost",
                 "Paresy cost", "aR #REs", "Paresy #REs", "Increase"],
    )
    for task in tasks:
        spec = task.build_spec(n_pos=n_pos, n_neg=n_neg, max_len=max_len,
                               clamp=True)
        ar = time_alpharegex(task.name, spec, repeats=repeats,
                             max_expanded=alpharegex_budget)
        paresy = time_paresy(task.name, spec, ALPHAREGEX_COST, "scalar",
                             repeats=repeats, max_generated=paresy_budget)
        ar_ok = ar.status == "success"
        pa_ok = paresy.status == "success"
        speedup = (
            "%.1fx" % (ar.elapsed_seconds / paresy.elapsed_seconds)
            if ar_ok and pa_ok and paresy.elapsed_seconds > 0
            else None
        )
        increase = (
            "%.2fx" % (paresy.generated / ar.generated)
            if ar_ok and pa_ok and ar.generated
            else None
        )
        table.rows.append(
            [task.name,
             ar.elapsed_seconds if ar_ok else None,
             paresy.elapsed_seconds if pa_ok else None,
             speedup,
             ar.cost if ar_ok else None,
             paresy.cost if pa_ok else None,
             ar.generated if ar_ok else None,
             paresy.generated if pa_ok else None,
             increase]
        )
    return table


# ----------------------------------------------------------------------
# Outlier table (§4.3, "A note on outliers")
# ----------------------------------------------------------------------
def outlier_table(
    durations: Sequence[Optional[float]],
    thresholds: Sequence[float] = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
) -> TableData:
    """Percentage of benchmark runs finishing under each threshold.

    ``durations`` usually comes from a Figure 1 sweep; ``None`` entries
    (budget expired) count as above every threshold.
    """
    total = len(durations) or 1
    table = TableData(
        title="Outlier quantification — %% of runs under each duration",
        headers=["Duration (sec)"] + ["<%g" % t for t in thresholds],
    )
    row: List[object] = ["% of runs"]
    for threshold in thresholds:
        hits = sum(1 for d in durations if d is not None and d < threshold)
        row.append("%.2f" % (100.0 * hits / total))
    table.rows.append(row)
    return table


# ----------------------------------------------------------------------
# Allowed-error table (§5.2)
# ----------------------------------------------------------------------
def error_table(
    spec: Spec = ERROR_TABLE_SPEC,
    errors: Sequence[float] = (0.50, 0.45, 0.40, 0.35, 0.30, 0.25, 0.20, 0.15),
    cost_fn: Optional[CostFunction] = None,
    backend: str = "vector",
    max_generated: Optional[int] = 5_000_000,
) -> TableData:
    """Regenerate the §5.2 allowed-error table on the paper's own spec.

    The paper's 0–10%% rows need 19M–27G candidates — out of reach of a
    pure-Python engine — so the default sweep stops at 15%%; rows whose
    budget expires print as N/A.
    """
    if cost_fn is None:
        cost_fn = CostFunction.uniform()
    session = Session()
    staging = session.staging_for(spec)
    table = TableData(
        title="Allowed-error vs synthesis cost (paper §5.2 specification)",
        headers=["Allowed Error", "# REs", "RE", "Cost(RE)"],
    )
    for error in errors:
        record = time_paresy(
            "error-%d%%" % round(error * 100),
            spec,
            cost_fn,
            backend,
            max_generated=max_generated,
            allowed_error=error,
            staging=staging,
            session=session,
        )
        ok = record.status == "success"
        table.rows.append(
            ["%d %%" % round(error * 100),
             record.generated if ok else None,
             record.regex if ok else None,
             record.cost if ok else None]
        )
    return table


# ----------------------------------------------------------------------
# Ablations (E6): the design choices §3 calls out
# ----------------------------------------------------------------------
def ablation_guide_table(
    spec: Spec,
    cost_fn: Optional[CostFunction] = None,
    repeats: int = 1,
) -> TableData:
    """Staged guide table vs per-construction split recomputation."""
    if cost_fn is None:
        cost_fn = CostFunction.uniform()
    table = TableData(
        title="Ablation — guide table staging (scalar backend)",
        headers=["Configuration", "Time s", "# REs", "RE"],
    )
    for label, use_guide in (("guide table (staged)", True),
                             ("naive splits (unstaged)", False)):
        best = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            result = synthesize(spec, cost_fn=cost_fn, backend="scalar",
                                use_guide_table=use_guide)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        table.rows.append([label, best, result.generated, result.regex_str])
    return table


def ablation_uniqueness(
    spec: Spec,
    cost_fn: Optional[CostFunction] = None,
    max_generated: int = 2_000_000,
) -> TableData:
    """Uniqueness checking on vs off.

    Without deduplication the cache and the per-level candidate counts
    explode combinatorially — the measurement behind the paper's "the
    performance of uniqueness checking is crucial to performance".
    """
    if cost_fn is None:
        cost_fn = CostFunction.uniform()
    table = TableData(
        title="Ablation — uniqueness checking (vector backend)",
        headers=["Configuration", "Status", "Time s", "# REs", "Cache CSs"],
    )
    for label, check in (("uniqueness on", True), ("uniqueness off", False)):
        started = time.perf_counter()
        result = synthesize(spec, cost_fn=cost_fn, backend="vector",
                            check_uniqueness=check, max_generated=max_generated)
        elapsed = time.perf_counter() - started
        table.rows.append(
            [label, result.status, elapsed, result.generated, result.unique_cs]
        )
    return table


def ablation_cache_capacity(
    spec: Spec,
    capacities: Sequence[Optional[int]] = (None, 2000, 500, 120, 40),
    cost_fn: Optional[CostFunction] = None,
) -> TableData:
    """OnTheFly capacity sweep: shrink the language cache and watch the
    search degrade gracefully from success to out-of-memory (§3,
    "OnTheFly mode")."""
    if cost_fn is None:
        cost_fn = CostFunction.uniform()
    table = TableData(
        title="Ablation — language-cache capacity / OnTheFly mode",
        headers=["Capacity", "Status", "RE", "# REs", "Cache CSs"],
    )
    for capacity in capacities:
        result = synthesize(spec, cost_fn=cost_fn, backend="vector",
                            max_cache_size=capacity)
        table.rows.append(
            ["unbounded" if capacity is None else capacity,
             result.status, result.regex_str, result.generated,
             result.unique_cs]
        )
    return table
