"""Shared experiment-running machinery for the evaluation harness.

Mirrors the paper's measurement protocol where it is meaningful here:
every timed configuration can be repeated (the paper averages 3 runs)
and every run is bounded by a *candidate budget* (``max_generated``)
rather than a wall-clock timeout so measurements stay deterministic.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api import EngineConfig, Session, SynthesisRequest
from ..baselines.alpharegex import alpharegex_synthesize
from ..core.result import SynthesisResult
from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..regex.cost import ALPHAREGEX_COST, CostFunction
from ..spec import Spec


@dataclass
class RunRecord:
    """One timed run of one system on one benchmark."""

    name: str
    system: str
    cost_function: Tuple[int, ...]
    status: str
    regex: Optional[str]
    cost: Optional[int]
    generated: int
    unique_cs: int
    universe_size: int
    elapsed_seconds: float
    repeats: int = 1
    extra: Dict[str, object] = field(default_factory=dict)


def records_to_json(records: List[RunRecord]) -> List[Dict[str, object]]:
    """Plain-JSON form of a record list, for benchmark artifacts.

    Includes ``extra`` — in particular the per-phase timing breakdown
    (``staging`` / ``enumerate`` / ``dedupe`` / ``solve`` / ``store``)
    the session layer attaches to every engine-served run — so perf
    artifacts built on the harness attribute wall-clock to pipeline
    stages without re-instrumenting.
    """
    return [asdict(record) for record in records]


def staging_for(spec: Spec) -> Tuple[Universe, GuideTable]:
    """Build the cost-function-independent staging structures once.

    The paper emphasises that ``ic(P ∪ N)`` and the guide table depend
    only on the examples, so sweeps over cost functions reuse them.
    """
    universe = Universe(spec.all_words, alphabet=spec.alphabet)
    return universe, GuideTable(universe)


def time_paresy(
    name: str,
    spec: Spec,
    cost_fn: CostFunction,
    backend: str,
    repeats: int = 1,
    max_generated: Optional[int] = None,
    max_cache_size: Optional[int] = None,
    allowed_error: float = 0.0,
    staging: Optional[Tuple[Universe, GuideTable]] = None,
    session: Optional[Session] = None,
) -> RunRecord:
    """Run Paresy ``repeats`` times; report the mean wall-clock.

    Requests go through the session layer; pass a shared ``session`` so
    a whole table's sweep reuses staged artifacts, or explicit
    ``staging`` to control exactly what is shared (the per-call
    ``backend``/budget arguments override the session's own config).
    """
    config = EngineConfig(
        backend=backend,
        max_cache_size=max_cache_size,
        max_generated=max_generated,
    )
    owner = session if session is not None else Session(config)
    universe, guide = (
        staging if staging is not None else owner.staging_for(spec)
    )
    request = SynthesisRequest(
        spec=spec, cost_fn=cost_fn, allowed_error=allowed_error, config=config
    )
    elapsed: List[float] = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = owner.synthesize(request, universe=universe, guide=guide)
        elapsed.append(time.perf_counter() - started)
    assert result is not None
    return RunRecord(
        name=name,
        system="paresy-%s" % result.backend,
        cost_function=cost_fn.as_tuple(),
        status=result.status,
        regex=result.regex_str,
        cost=result.cost,
        generated=result.generated,
        unique_cs=result.unique_cs,
        universe_size=result.universe_size,
        elapsed_seconds=sum(elapsed) / len(elapsed),
        repeats=len(elapsed),
        extra=_phase_extra(result),
    )


def _phase_extra(result: SynthesisResult) -> Dict[str, object]:
    """Per-phase timing of the run (staging, enumerate, dedupe, solve,
    store) plus — when the run was traced — the per-stage span summary,
    carried into the record's ``extra`` so JSON artifacts can attribute
    wall-clock wins to pipeline stages without re-instrumenting."""
    extra: Dict[str, object] = {}
    phases = result.extra.get("phase_seconds")
    if phases:
        extra["phase_seconds"] = phases
    trace = result.extra.get("trace")
    if isinstance(trace, dict) and trace.get("stages"):
        extra["trace_stages"] = trace["stages"]
    return extra


def _suite_record(
    name: str, system: str, cost_fn: CostFunction, result: SynthesisResult
) -> RunRecord:
    return RunRecord(
        name=name,
        system=system,
        cost_function=cost_fn.as_tuple(),
        status=result.status,
        regex=result.regex_str,
        cost=result.cost,
        generated=result.generated,
        unique_cs=result.unique_cs,
        universe_size=result.universe_size,
        elapsed_seconds=result.elapsed_seconds,
        extra=_phase_extra(result),
    )


def run_suite(
    named_specs,
    cost_fn: Optional[CostFunction] = None,
    backend: str = "vector",
    max_generated: Optional[int] = None,
    allowed_error: float = 0.0,
    session: Optional[Session] = None,
    client=None,
) -> List[RunRecord]:
    """Run a whole suite of ``(name, spec)`` benchmarks; one record each.

    Two execution modes share identical request construction, so their
    answers are bit-identical:

    * **solo** (default, or explicit ``session``): one warm
      :class:`Session` serves the suite sequentially, reusing staged
      artifacts across same-universe specs.
    * **pooled** (``client`` — a
      :class:`repro.service.client.ServiceClient`): every spec is
      submitted up front and the pool runs them on all cores, routing
      same-universe specs to warm workers; results are gathered in suite
      order.
    """
    cost_fn = cost_fn if cost_fn is not None else CostFunction.uniform()
    config = EngineConfig(backend=backend, max_generated=max_generated)
    requests = [
        SynthesisRequest(
            spec=spec, cost_fn=cost_fn, allowed_error=allowed_error,
            config=config,
        )
        for _, spec in named_specs
    ]
    if client is not None:
        handles = [client.submit(request) for request in requests]
        results = [handle.result() for handle in handles]
        system = "paresy-%s-pool%d" % (backend, client.pool.n_workers)
    else:
        owner = session if session is not None else Session(config)
        results = [owner.synthesize(request) for request in requests]
        system = "paresy-%s" % backend
    return [
        _suite_record(name, system, cost_fn, result)
        for (name, _), result in zip(named_specs, results)
    ]


def time_alpharegex(
    name: str,
    spec: Spec,
    cost_fn: CostFunction = ALPHAREGEX_COST,
    repeats: int = 1,
    max_checked: Optional[int] = None,
    max_expanded: Optional[int] = None,
) -> RunRecord:
    """Run the AlphaRegex baseline ``repeats`` times; mean wall-clock."""
    elapsed: List[float] = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = alpharegex_synthesize(
            spec,
            cost_fn=cost_fn,
            max_checked=max_checked,
            max_expanded=max_expanded,
        )
        elapsed.append(time.perf_counter() - started)
    assert result is not None
    return RunRecord(
        name=name,
        system="alpharegex",
        cost_function=cost_fn.as_tuple(),
        status=result.status,
        regex=result.regex_str,
        cost=result.cost,
        generated=result.checked,
        unique_cs=0,
        universe_size=0,
        elapsed_seconds=sum(elapsed) / len(elapsed),
        repeats=len(elapsed),
        extra={"expanded": result.expanded},
    )
