"""Plain-text rendering of evaluation tables and simple charts."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines: List[str] = []
    if title:
        lines.append("### %s" % title)
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(lines)


def ascii_series_plot(
    values: Sequence[Optional[float]],
    height: int = 12,
    label: str = "",
) -> str:
    """A small ASCII column chart of a numeric series (None = gap)."""
    present = [v for v in values if v is not None]
    if not present:
        return "(no data)"
    top = max(present) or 1.0
    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        line = "".join(
            "#" if v is not None and v >= threshold else
            ("." if v is not None else " ")
            for v in values
        )
        rows.append("%8.3f |%s" % (threshold, line))
    rows.append(" " * 9 + "+" + "-" * len(values))
    if label:
        rows.append(" " * 10 + label)
    return "\n".join(rows)


def _fmt(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)
