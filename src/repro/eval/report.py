"""Render ``BENCH_*.json`` perf-trajectory artifacts as markdown.

Every benchmark module drops a JSON artifact at the repo root with the
same loose shape: a ``benchmark`` title, top-level scalar facts
(``scale``, ``cpu_count``, headline ratios), nested dicts of related
scalars, and lists of per-case record dicts.  :func:`bench_report`
turns any mix of those files into one markdown document — a scalars
table per artifact plus one table per record list — so the nightly
workflow can upload a single human-readable summary next to the raw
JSON.  Unknown fields render rather than error: the report must keep
working as benchmarks grow new fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from .reporting import render_markdown

#: Scalar keys hoisted to the front of every scalars table so the
#: report leads with provenance, not alphabetics.
_LEAD_KEYS = ("benchmark", "scale", "cpu_count")


def _is_scalar(value: object) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def _flatten_scalars(
    payload: Dict[str, object], prefix: str = ""
) -> List[Tuple[str, object]]:
    """Depth-first ``key`` / ``parent.key`` pairs for every scalar leaf."""
    pairs: List[Tuple[str, object]] = []
    for key in sorted(payload):
        value = payload[key]
        name = "%s%s" % (prefix, key)
        if _is_scalar(value):
            pairs.append((name, value))
        elif isinstance(value, dict):
            pairs.append((name, "—"))
            pairs.extend(_flatten_scalars(value, prefix=name + "."))
        elif isinstance(value, list) and not any(
            isinstance(item, dict) for item in value
        ):
            pairs.append((name, ", ".join(str(item) for item in value)))
    return pairs


def _record_lists(
    payload: Dict[str, object]
) -> List[Tuple[str, List[dict]]]:
    """Every ``key -> [dict, ...]`` field, in key order."""
    lists: List[Tuple[str, List[dict]]] = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, list) and value and all(
            isinstance(item, dict) for item in value
        ):
            lists.append((key, value))
    return lists


def _records_table(name: str, records: Sequence[dict]) -> str:
    """One markdown table over the union of the records' scalar keys."""
    columns: List[str] = []
    for record in records:
        for key in record:
            if key not in columns and _is_scalar(record.get(key)):
                columns.append(key)
    rows = [[record.get(column) for column in columns] for record in records]
    return render_markdown(columns, rows, title=name)


def render_artifact(path: Path) -> str:
    """One artifact file → one markdown section (robust to bad JSON)."""
    lines: List[str] = ["## %s" % path.name, ""]
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        lines.append("*unreadable: %s*" % exc)
        return "\n".join(lines)
    if not isinstance(payload, dict):
        lines.append("*not a JSON object — skipped*")
        return "\n".join(lines)

    scalars = dict(_flatten_scalars(payload))
    ordered = [key for key in _LEAD_KEYS if key in scalars]
    ordered += [key for key in scalars if key not in ordered]
    if ordered:
        lines.append(
            render_markdown(
                ["field", "value"],
                [[key, scalars[key]] for key in ordered],
            )
        )
        lines.append("")
    for name, records in _record_lists(payload):
        lines.append(_records_table(name, records))
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def bench_report(paths: Iterable[Path]) -> str:
    """The full markdown report over every artifact path, in order."""
    paths = list(paths)
    sections = ["# Benchmark report", ""]
    if not paths:
        sections.append("*(no BENCH_*.json artifacts found)*")
    else:
        sections.append(
            "%d artifact file%s."
            % (len(paths), "" if len(paths) == 1 else "s")
        )
        sections.append("")
        sections.extend(render_artifact(path) + "\n" for path in paths)
    return "\n".join(sections).rstrip("\n") + "\n"


__all__ = ["bench_report", "render_artifact"]
