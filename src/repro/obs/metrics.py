"""Minimal Prometheus instruments: counter, gauge, histogram.

Just enough of the text exposition format
(https://prometheus.io/docs/instrumenting/exposition_formats/) to
render ``# HELP`` / ``# TYPE`` blocks with labelled samples; the
strict parser in :mod:`repro.obs.validate` round-trips this output in
CI.  Stdlib-only and thread-safe (one coarse lock per instrument —
observations happen per *job*, not per candidate, so contention is
irrelevant).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Latency buckets spanning admission blips (1 ms) to batch sweeps (60 s).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: _LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join('%s="%s"' % (k, v) for k, v in labels)
    return "{%s}" % inner


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()

    def header(self) -> List[str]:
        return [
            "# HELP %s %s" % (self.name, self.help_text),
            "# TYPE %s %s" % (self.name, self.kind),
        ]

    def render(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` to the labelled series (created at zero)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def render(self) -> List[str]:
        """Exposition lines (a zero sample when never incremented)."""
        with self._lock:
            items = sorted(self._values.items())
        lines = self.header()
        if not items:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                "%s%s %s" % (self.name, _format_labels(key), _format_value(value))
            )
        return lines


class Gauge(_Instrument):
    """A value that goes up and down (set to the latest observation)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def render(self) -> List[str]:
        """Exposition lines (a zero sample when never set)."""
        with self._lock:
            items = sorted(self._values.items())
        lines = self.header()
        if not items:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                "%s%s %s" % (self.name, _format_labels(key), _format_value(value))
            )
        return lines


class Histogram(_Instrument):
    """Cumulative-bucket histogram with ``le`` labels (Prometheus shape)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        #: label-key → (per-bucket counts, sum, count)
        self._series: Dict[_LabelKey, Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(labels)
        with self._lock:
            counts, total, n = self._series.get(
                key, ([0] * len(self.buckets), 0.0, 0)
            )
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._series[key] = (counts, total + float(value), n + 1)

    def render(self) -> List[str]:
        """Exposition lines: cumulative buckets, ``_sum``, ``_count``."""
        with self._lock:
            items = sorted(
                (key, (list(counts), total, n))
                for key, (counts, total, n) in self._series.items()
            )
        lines = self.header()
        if not items:
            items = [((), ([0] * len(self.buckets), 0.0, 0))]
        for key, (counts, total, n) in items:
            for bound, count in zip(self.buckets, counts):
                bucket_key = key + (("le", _format_value(bound)),)
                lines.append(
                    "%s_bucket%s %d"
                    % (self.name, _format_labels(bucket_key), count)
                )
            inf_key = key + (("le", "+Inf"),)
            lines.append(
                "%s_bucket%s %d" % (self.name, _format_labels(inf_key), n)
            )
            lines.append(
                "%s_sum%s %s"
                % (self.name, _format_labels(key), _format_value(total))
            )
            lines.append("%s_count%s %d" % (self.name, _format_labels(key), n))
        return lines


class MetricsRegistry:
    """Named instruments rendered together into one exposition page."""

    def __init__(self) -> None:
        self._instruments: List[_Instrument] = []
        self._by_name: Dict[str, _Instrument] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        existing = self._by_name.get(instrument.name)
        if existing is not None:
            return existing
        self._instruments.append(instrument)
        self._by_name[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help_text: str) -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._register(Counter(name, help_text))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str) -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._register(Gauge(name, help_text))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        return self._register(  # type: ignore[return-value]
            Histogram(name, help_text, buckets)
        )

    def get(self, name: str) -> Optional[_Instrument]:
        """The named instrument, or None."""
        return self._by_name.get(name)

    def render(self) -> str:
        """The full exposition page, in registration order."""
        lines: List[str] = []
        for instrument in self._instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n" if lines else ""
