"""Span exporters: Chrome trace-event JSON, text waterfall, summaries.

The Chrome trace-event format is the only widely supported exchange
format that needs zero dependencies to produce: a JSON object with a
``traceEvents`` list of ``"ph": "X"`` (complete) events carrying
microsecond timestamps.  Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` both load it directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Span-name → metrics-stage mapping (drives the Prometheus histograms
#: and the ``extra["trace"]["stages"]`` summary in results).
SPAN_STAGES = {
    "queue-wait": "queue_wait",
    "staging": "staging",
    "level": "level_build",
    "seed-level": "level_build",
    "checkpoint-replay": "checkpoint_replay",
    "checkpoint-restore": "checkpoint_replay",
    "checkpoint-save": "checkpoint_save",
    "result-store-write": "store_write",
    "shard-fanout": "shard_fanout",
}


def _span_key(span: Dict[str, object]) -> Tuple[float, float]:
    start = float(span.get("start_s", 0.0))
    end = float(span.get("end_s", start))
    return (start, -(end - start))


def chrome_trace(spans: List[Dict[str, object]]) -> Dict[str, object]:
    """Wire-form spans → a Chrome trace-event JSON document.

    Process labels become numeric pids (first-seen order) with
    ``process_name`` metadata events; timestamps are rebased to the
    earliest span so the timeline starts near zero in the viewer.
    """
    ordered = sorted(spans, key=_span_key)
    base_s = ordered[0]["start_s"] if ordered else 0.0
    pids: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    for span in ordered:
        process = str(span.get("process", "main"))
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        start = float(span["start_s"])
        end = float(span.get("end_s") or start)
        args = dict(span.get("args") or {})
        args["trace_id"] = span.get("trace_id")
        args["span_id"] = span.get("span_id")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": 1,
                "ts": round((start - base_s) * 1e6, 3),
                "dur": round(max(0.0, end - start) * 1e6, 3),
                "cat": "repro",
                "name": str(span["name"]),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _depths(spans: List[Dict[str, object]]) -> Dict[str, int]:
    parents = {
        str(s.get("span_id")): s.get("parent_id") for s in spans
    }
    depths: Dict[str, int] = {}

    def depth(span_id: str, guard: int = 0) -> int:
        if span_id in depths:
            return depths[span_id]
        parent = parents.get(span_id)
        if parent is None or parent not in parents or guard > 64:
            depths[span_id] = 0
        else:
            depths[span_id] = depth(str(parent), guard + 1) + 1
        return depths[span_id]

    for span_id in parents:
        depth(span_id)
    return depths


def waterfall(spans: List[Dict[str, object]], width: int = 48) -> str:
    """A compact fixed-width text timeline (one line per span)."""
    if not spans:
        return "(no spans recorded)"
    ordered = sorted(spans, key=_span_key)
    depths = _depths(ordered)
    t0 = min(float(s["start_s"]) for s in ordered)
    t1 = max(float(s.get("end_s") or s["start_s"]) for s in ordered)
    total = max(t1 - t0, 1e-9)
    lines = [
        "trace %s  (%.1f ms total, %d spans)"
        % (ordered[0].get("trace_id", "?"), total * 1e3, len(ordered))
    ]
    for span in ordered:
        start = float(span["start_s"])
        end = float(span.get("end_s") or start)
        lo = int((start - t0) / total * width)
        hi = max(lo + 1, int((end - t0) / total * width))
        bar = " " * lo + "#" * min(hi - lo, width - lo)
        indent = "  " * depths.get(str(span.get("span_id")), 0)
        label = "%s%s" % (indent, span["name"])
        lines.append(
            "%-28s |%-*s| %8.2f ms  %s"
            % (label[:28], width, bar, (end - start) * 1e3,
               span.get("process", ""))
        )
    return "\n".join(lines)


def stage_summary(spans: List[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Aggregate span durations into named stages (see SPAN_STAGES)."""
    stages: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stage = SPAN_STAGES.get(str(span.get("name")))
        if stage is None:
            continue
        start = float(span.get("start_s", 0.0))
        end = float(span.get("end_s") or start)
        entry = stages.setdefault(stage, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += max(0.0, end - start)
    return stages


def trace_payload(
    trace_id: str, spans: List[Dict[str, object]]
) -> Dict[str, object]:
    """The ``SynthesisResult.extra["trace"]`` payload shape."""
    return {
        "trace_id": trace_id,
        "spans": spans,
        "stages": stage_summary(spans),
    }


def coverage_fraction(
    spans: List[Dict[str, object]], root_span_id: Optional[str] = None
) -> float:
    """Fraction of the root span's wall-clock covered by child spans.

    The root defaults to the longest span; coverage is the measure of
    the union of every *other* span's interval clipped to the root.
    """
    if not spans:
        return 0.0
    by_id = {str(s.get("span_id")): s for s in spans}
    if root_span_id is not None and root_span_id in by_id:
        root = by_id[root_span_id]
    else:
        root = max(
            spans,
            key=lambda s: float(s.get("end_s") or 0.0) - float(s["start_s"]),
        )
    r0 = float(root["start_s"])
    r1 = float(root.get("end_s") or r0)
    if r1 <= r0:
        return 0.0
    intervals = []
    for span in spans:
        if span is root:
            continue
        lo = max(r0, float(span["start_s"]))
        hi = min(r1, float(span.get("end_s") or span["start_s"]))
        if hi > lo:
            intervals.append((lo, hi))
    intervals.sort()
    covered = 0.0
    cursor = r0
    for lo, hi in intervals:
        if hi <= cursor:
            continue
        covered += hi - max(lo, cursor)
        cursor = hi
    return covered / (r1 - r0)
