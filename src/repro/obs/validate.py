"""Strict validators for the observability exports, used by CI.

Two formats leave the system: the Prometheus text exposition on
``/metrics`` and Chrome trace-event JSON from ``/jobs/<id>/trace``.
The ``obs-smoke`` CI job runs both through this module
(``python -m repro.obs.validate metrics|trace <file>``), so a
formatting regression fails the build instead of silently breaking
Prometheus scrapes or Perfetto imports.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from typing import Dict, List, Optional, Tuple

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}


class ValidationError(ValueError):
    """A document violated the format contract (message says where)."""


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        value = float(text)
    except ValueError:
        raise ValidationError("line %d: bad sample value %r" % (line_no, text))
    if math.isnan(value):
        raise ValidationError("line %d: NaN sample value" % line_no)
    return value


def _parse_labels(text: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    rest = text
    while rest:
        match = LABEL_RE.match(rest)
        if match is None:
            raise ValidationError(
                "line %d: malformed label segment %r" % (line_no, rest)
            )
        name = match.group("name")
        if name in labels:
            raise ValidationError(
                "line %d: duplicate label %r" % (line_no, name)
            )
        labels[name] = match.group("value")
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValidationError(
                "line %d: expected ',' between labels, got %r"
                % (line_no, rest)
            )
    return labels


def _family_of(sample_name: str, families: Dict[str, Dict]) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base]["type"] == "histogram":
                return base
    return None


def parse_prometheus(text: str) -> Dict[str, Dict]:
    """Strictly parse a text exposition page.

    Returns ``{family: {"help", "type", "samples": [(name, labels,
    value)]}}`` or raises :class:`ValidationError`.  Stricter than
    Prometheus itself: HELP must precede TYPE, samples must follow
    their family's TYPE, histograms must have cumulative buckets with a
    ``+Inf`` bucket equal to ``_count``.
    """
    if not text:
        raise ValidationError("empty exposition")
    if not text.endswith("\n"):
        raise ValidationError("exposition must end with a newline")
    families: Dict[str, Dict] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if line == "":
            raise ValidationError("line %d: blank line" % line_no)
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if len(parts) != 2 or not METRIC_NAME_RE.match(parts[0]):
                raise ValidationError("line %d: malformed HELP" % line_no)
            name = parts[0]
            if name in families:
                raise ValidationError(
                    "line %d: duplicate HELP for %s" % (line_no, name)
                )
            families[name] = {"help": parts[1], "type": None, "samples": []}
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2 or parts[1] not in KINDS:
                raise ValidationError("line %d: malformed TYPE" % line_no)
            name, kind = parts
            family = families.get(name)
            if family is None:
                raise ValidationError(
                    "line %d: TYPE %s before its HELP" % (line_no, name)
                )
            if family["type"] is not None:
                raise ValidationError(
                    "line %d: duplicate TYPE for %s" % (line_no, name)
                )
            family["type"] = kind
            continue
        if line.startswith("#"):
            raise ValidationError(
                "line %d: unrecognised comment %r" % (line_no, line)
            )
        match = SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError("line %d: malformed sample %r" % (line_no, line))
        sample_name = match.group("name")
        family_name = _family_of(sample_name, families)
        if family_name is None or families[family_name]["type"] is None:
            raise ValidationError(
                "line %d: sample %s without preceding HELP/TYPE"
                % (line_no, sample_name)
            )
        labels = _parse_labels(match.group("labels") or "", line_no)
        for label_name in labels:
            if not LABEL_NAME_RE.match(label_name):
                raise ValidationError(
                    "line %d: bad label name %r" % (line_no, label_name)
                )
        value = _parse_value(match.group("value"), line_no)
        families[family_name]["samples"].append((sample_name, labels, value))
    for name, family in families.items():
        if family["type"] is None:
            raise ValidationError("family %s has HELP but no TYPE" % name)
        if not family["samples"]:
            raise ValidationError("family %s has no samples" % name)
        if family["type"] == "histogram":
            _check_histogram(name, family["samples"])
    return families


def _check_histogram(
    name: str, samples: List[Tuple[str, Dict[str, str], float]]
) -> None:
    series: Dict[Tuple[Tuple[str, str], ...], Dict] = {}
    for sample_name, labels, value in samples:
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        entry = series.setdefault(
            key, {"buckets": [], "sum": None, "count": None}
        )
        if sample_name == name + "_bucket":
            if "le" not in labels:
                raise ValidationError(
                    "histogram %s: bucket sample without le label" % name
                )
            bound = (
                math.inf if labels["le"] == "+Inf" else float(labels["le"])
            )
            entry["buckets"].append((bound, value))
        elif sample_name == name + "_sum":
            entry["sum"] = value
        elif sample_name == name + "_count":
            entry["count"] = value
        else:
            raise ValidationError(
                "histogram %s: stray sample %s" % (name, sample_name)
            )
    for key, entry in series.items():
        buckets = sorted(entry["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValidationError(
                "histogram %s%r: missing +Inf bucket" % (name, dict(key))
            )
        last = -1.0
        for bound, count in buckets:
            if count < last:
                raise ValidationError(
                    "histogram %s%r: non-cumulative buckets" % (name, dict(key))
                )
            last = count
        if entry["count"] is None or entry["sum"] is None:
            raise ValidationError(
                "histogram %s%r: missing _sum/_count" % (name, dict(key))
            )
        if buckets[-1][1] != entry["count"]:
            raise ValidationError(
                "histogram %s%r: +Inf bucket != _count" % (name, dict(key))
            )


# ---------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------
def validate_chrome_trace(doc: object) -> Dict[str, object]:
    """Validate a Chrome trace-event document; returns a summary dict."""
    if not isinstance(doc, dict):
        raise ValidationError("trace document is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValidationError("traceEvents missing or empty")
    processes = set()
    trace_ids = set()
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValidationError("event %d is not an object" % index)
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") != "process_name" or "args" not in event:
                raise ValidationError("event %d: malformed metadata" % index)
            continue
        if phase != "X":
            raise ValidationError(
                "event %d: unsupported phase %r" % (index, phase)
            )
        for field in ("name", "pid", "tid", "ts", "dur"):
            if field not in event:
                raise ValidationError(
                    "event %d: missing %s" % (index, field)
                )
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValidationError("event %d: bad ts" % index)
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            raise ValidationError("event %d: bad dur" % index)
        complete += 1
        processes.add(event["pid"])
        args = event.get("args")
        if isinstance(args, dict) and args.get("trace_id"):
            trace_ids.add(args["trace_id"])
    if complete == 0:
        raise ValidationError("no complete ('X') events")
    return {
        "events": complete,
        "processes": len(processes),
        "trace_ids": sorted(trace_ids),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: exit 0 on a valid document, 1 with a reason."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate /metrics or Chrome-trace exports (CI gate).",
    )
    sub = parser.add_subparsers(dest="format", required=True)
    for name, help_text in (
        ("metrics", "a Prometheus text exposition file"),
        ("trace", "a Chrome trace-event JSON file"),
    ):
        p = sub.add_parser(name, help="validate " + help_text)
        p.add_argument("path", help="file to validate")
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    try:
        if args.format == "metrics":
            families = parse_prometheus(raw)
            print(
                "OK: %d metric families, %d samples"
                % (
                    len(families),
                    sum(len(f["samples"]) for f in families.values()),
                )
            )
        else:
            summary = validate_chrome_trace(json.loads(raw))
            print(
                "OK: %d events across %d processes, trace ids: %s"
                % (
                    summary["events"],
                    summary["processes"],
                    ", ".join(summary["trace_ids"]) or "(none)",
                )
            )
    except (ValidationError, json.JSONDecodeError) as error:
        print("INVALID: %s" % error, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
