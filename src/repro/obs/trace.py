"""Trace contexts and the per-process span recorder.

Everything here is deliberately boring: ids are random hex strings,
spans are epoch-stamped (``time.time()`` — every process in this stack
runs on one machine, so wall-clock timestamps from different processes
line up on one timeline), and the recorder is a bounded ring buffer so
a runaway query can never grow memory without bound.

The *wire* form of a span is a plain dict (see :meth:`Span.to_dict`) —
that is what crosses multiprocessing pipes inside shard replies and
``SynthesisResult.extra["trace"]``, and what the exporters consume.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Default ring-buffer capacity per :class:`Tracer` (spans, not bytes).
DEFAULT_CAPACITY = 4096


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id (unique within one trace)."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """The portable part of a trace: its id plus the remote parent span.

    Minted once per job at the system edge and handed down unchanged —
    each process seeds its local :class:`Tracer` with it, so spans
    recorded three hops apart still form one tree.
    """

    trace_id: str
    parent_span_id: Optional[str] = None

    def child(self, parent_span_id: str) -> "TraceContext":
        """The context a downstream process should record under."""
        return TraceContext(self.trace_id, parent_span_id)

    def to_json_dict(self) -> Dict[str, object]:
        """The wire form carried inside ``WireRequest`` JSON."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_json_dict(cls, data: object) -> Optional["TraceContext"]:
        """Parse the wire form; tolerates ``None``/malformed (→ None)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = data.get("parent_span_id")
        return cls(trace_id, parent if isinstance(parent, str) else None)

    @classmethod
    def mint(cls) -> "TraceContext":
        """A brand-new root context (no parent span yet)."""
        return cls(new_trace_id())


class Span:
    """One timed unit of work.  Mutable until :meth:`Tracer.finish`."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "process",
        "args",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        process: str,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.process = process
        self.args = args or {}

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.time()
        return max(0.0, end - self.start_s)

    def to_dict(self) -> Dict[str, object]:
        """The wire/export form (what crosses process boundaries)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s if self.end_s is not None else self.start_s,
            "process": self.process,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, %s, %.6fs)" % (self.name, self.span_id, self.duration_s)


class Tracer:
    """Lock-free span recorder for one process (ring-buffered).

    All methods run on whatever thread does the work; the stack used
    for implicit parenting assumes the strictly nested call pattern the
    engine actually has (a level span inside the job span, a shard
    fan-out span inside the level span).  Spans adopted from *other*
    processes (:meth:`adopt`) bypass the stack entirely.
    """

    __slots__ = ("trace_id", "process", "capacity", "dropped", "_spans", "_stack")

    def __init__(
        self,
        trace_id: str,
        process: str = "main",
        parent_span_id: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.trace_id = trace_id
        self.process = process
        self.capacity = max(1, int(capacity))
        self.dropped = 0
        self._spans: List[object] = []
        #: Implicit-parent stack, seeded with the remote parent so the
        #: first local span hangs off the upstream process's span.
        self._stack: List[str] = [parent_span_id] if parent_span_id else []

    def __len__(self) -> int:
        return len(self._spans)

    # -- recording -----------------------------------------------------
    def start(
        self, name: str, parent_id: Optional[str] = None, **args: object
    ) -> Span:
        """Open a span (implicit parent = innermost open span)."""
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        span = Span(
            name,
            self.trace_id,
            new_span_id(),
            parent_id,
            time.time(),
            self.process,
            args or None,
        )
        self._stack.append(span.span_id)
        self._record(span)
        return span

    def finish(self, span: Span, **args: object) -> Span:
        """Close a span (merging any late args, e.g. counts)."""
        span.end_s = time.time()
        if args:
            span.args.update(args)
        # Pop from the implicit-parent stack; tolerate out-of-order
        # finishes by removing the *last* matching entry.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] == span.span_id:
                del self._stack[index]
                break
        return span

    @contextmanager
    def span(self, name: str, **args: object):
        """``with tracer.span("staging"):`` convenience wrapper."""
        span = self.start(name, **args)
        try:
            yield span
        finally:
            self.finish(span)

    def adopt(self, spans: List[Dict[str, object]]) -> None:
        """Absorb wire-form spans recorded by another process."""
        for span in spans:
            self._record(span)

    def _record(self, span: object) -> None:
        if len(self._spans) >= self.capacity:
            self._spans.pop(0)
            self.dropped += 1
        self._spans.append(span)

    # -- harvesting ----------------------------------------------------
    def drain(self) -> List[Dict[str, object]]:
        """Return every recorded span (wire form) and clear the buffer."""
        out = self.snapshot()
        self._spans = []
        return out

    def snapshot(self) -> List[Dict[str, object]]:
        """Wire-form view of the buffer without clearing it."""
        return [
            span.to_dict() if isinstance(span, Span) else dict(span)
            for span in self._spans
        ]
