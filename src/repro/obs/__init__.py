"""Zero-dependency tracing and structured telemetry.

One :class:`~repro.obs.trace.TraceContext` is minted where a query
enters the system (``POST /jobs`` on the HTTP server, or
``ServiceClient.submit`` for in-process use) and rides the wire form
across every process hop — pool workers, shard workers — so each layer
can record spans against the same trace id.  Spans land in per-process
ring buffers (:class:`~repro.obs.trace.Tracer`), travel back with the
result (``SynthesisResult.extra["trace"]``), and export three ways:

* Chrome trace-event JSON (:func:`~repro.obs.export.chrome_trace`),
  loadable in Perfetto / ``chrome://tracing``;
* a compact text waterfall (:func:`~repro.obs.export.waterfall`);
* per-stage Prometheus histograms (:mod:`repro.obs.metrics`).

The package is stdlib-only by design — it must import inside shard
worker subprocesses with zero extra cost.
"""

from .trace import Span, TraceContext, Tracer, new_span_id, new_trace_id

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "new_span_id",
    "new_trace_id",
]
