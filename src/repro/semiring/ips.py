"""Infix power series ``r : I → S`` (Def. 3.5 of the paper).

An IPS is a map from a finite infix-closed domain ``I`` (a
:class:`~repro.language.universe.Universe`) into a semiring.  The
operations are exactly those of the paper:

* ``0`` and ``1`` (characteristic series of ``∅`` and ``{ε}``),
* pointwise sum,
* the restricted convolution product
  ``(r·s)(σ) = ⊕ { r(σ1)·s(σ2) | σ1, σ2 ∈ I, σ1·σ2 = σ }``
  (computed through the guide table),
* a Kleene star ``r*(σ) = ⊕ₙ rⁿ(σ)``, which converges after at most
  ``max word length + 1`` iterations because ``I`` is finite.

Over the Boolean semiring an IPS is precisely a characteristic sequence;
this module is the readable, semiring-generic reference implementation
the optimised bit engines are property-tested against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..language.guide_table import GuideTable
from ..language.universe import Universe
from .semiring import BOOLEAN, Semiring


class IPSSpace:
    """The space ``I⟨S⟩`` of infix power series over one universe.

    Bundles the universe, its guide table and the coefficient semiring so
    that individual :class:`IPS` values stay lightweight.
    """

    __slots__ = ("universe", "guide", "semiring")

    def __init__(
        self,
        universe: Universe,
        semiring: Semiring = BOOLEAN,
        guide: GuideTable = None,
    ) -> None:
        self.universe = universe
        self.semiring = semiring
        self.guide = guide if guide is not None else GuideTable(universe)

    # -- constructors ---------------------------------------------------
    def zero(self) -> "IPS":
        """The constant-0 series (empty language)."""
        return IPS(self, (self.semiring.zero,) * self.universe.n_words)

    def one(self) -> "IPS":
        """The series of ``{ε}``."""
        coefficients = [self.semiring.zero] * self.universe.n_words
        coefficients[self.universe.eps_index] = self.semiring.one
        return IPS(self, tuple(coefficients))

    def of_words(self, words) -> "IPS":
        """Characteristic series of a set of universe words."""
        coefficients = [self.semiring.zero] * self.universe.n_words
        for word in words:
            coefficients[self.universe.index[word]] = self.semiring.one
        return IPS(self, tuple(coefficients))

    def of_char(self, symbol: str) -> "IPS":
        """Series of the single-character language ``{symbol}`` (the zero
        series when the character occurs in no universe word)."""
        if symbol in self.universe.index:
            return self.of_words([symbol])
        return self.zero()

    def from_cs(self, cs: int) -> "IPS":
        """Lift a Boolean characteristic-sequence bitvector into an IPS."""
        coefficients = [
            self.semiring.one if (cs >> i) & 1 else self.semiring.zero
            for i in range(self.universe.n_words)
        ]
        return IPS(self, tuple(coefficients))


class IPS:
    """One infix power series: a coefficient per universe word."""

    __slots__ = ("space", "coefficients")

    def __init__(self, space: IPSSpace, coefficients: Sequence) -> None:
        if len(coefficients) != space.universe.n_words:
            raise ValueError(
                "expected %d coefficients, got %d"
                % (space.universe.n_words, len(coefficients))
            )
        self.space = space
        self.coefficients: Tuple = tuple(coefficients)

    def __call__(self, word: str):
        """The coefficient of ``word``."""
        return self.coefficients[self.space.universe.index[word]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPS):
            return NotImplemented
        return self.space is other.space and self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash((id(self.space), self.coefficients))

    # -- algebra ---------------------------------------------------------
    def __add__(self, other: "IPS") -> "IPS":
        self._check(other)
        semiring = self.space.semiring
        return IPS(
            self.space,
            tuple(
                semiring.add(a, b)
                for a, b in zip(self.coefficients, other.coefficients)
            ),
        )

    def __mul__(self, other: "IPS") -> "IPS":
        """Guide-table convolution (the paper's IPS product)."""
        self._check(other)
        semiring = self.space.semiring
        guide = self.space.guide
        result: List = []
        for word_index in range(self.space.universe.n_words):
            result.append(
                semiring.add_all(
                    semiring.mul(self.coefficients[i], other.coefficients[j])
                    for i, j in guide[word_index]
                )
            )
        return IPS(self.space, tuple(result))

    def star(self) -> "IPS":
        """``r* = ⊕ₙ rⁿ`` restricted to the universe.

        Converges after at most ``max_word_length + 1`` squarings-free
        iterations: each additional factor of the ε-free part of ``r``
        consumes at least one character of a universe word.  Requires the
        coefficient at ``ε`` to satisfy ``closure`` in the semiring (the
        Boolean case always does).
        """
        semiring = self.space.semiring
        eps_index = self.space.universe.eps_index
        eps_closure = semiring.closure(self.coefficients[eps_index])
        if eps_closure is None:
            raise ValueError("star undefined: ε-coefficient has no closure")
        # Star of r equals star of r with its ε-coefficient replaced by 0,
        # scaled by (r(ε))* — in the Boolean/idempotent case the scaling is
        # absorbed, which is the case the synthesiser uses.
        coefficients = list(self.coefficients)
        coefficients[eps_index] = semiring.zero
        proper = IPS(self.space, tuple(coefficients))
        total = self.space.one()
        power = self.space.one()
        for _ in range(self.space.universe.max_word_length + 1):
            power = power * proper
            new_total = total + power
            if new_total == total:
                break
            total = new_total
        if eps_closure != semiring.one:
            total = IPS(
                total.space,
                tuple(semiring.mul(eps_closure, c) for c in total.coefficients),
            )
        return total

    def question(self) -> "IPS":
        """``r? = 1 + r``."""
        return self.space.one() + self

    def conjunction(self, other: "IPS") -> "IPS":
        """Pointwise intersection (Def. 3.5 notes Boolean operations
        "are similarly easy to define"); meaningful for idempotent
        semirings, exact for the Boolean one."""
        self._check(other)
        semiring = self.space.semiring
        return IPS(
            self.space,
            tuple(
                semiring.mul(a, b)
                for a, b in zip(self.coefficients, other.coefficients)
            ),
        )

    def negation(self) -> "IPS":
        """Pointwise complement relative to the universe (Boolean only)."""
        semiring = self.space.semiring
        zero, one = semiring.zero, semiring.one
        if semiring.add(one, one) != one:
            raise ValueError("negation requires an idempotent (Boolean) semiring")
        return IPS(
            self.space,
            tuple(one if c == zero else zero for c in self.coefficients),
        )

    # -- Boolean views ----------------------------------------------------
    def to_cs(self) -> int:
        """Collapse to a characteristic-sequence bitvector (bit ``i`` set
        iff the coefficient of the ``i``-th word is non-zero)."""
        semiring = self.space.semiring
        cs = 0
        for i, value in enumerate(self.coefficients):
            if value != semiring.zero:
                cs |= 1 << i
        return cs

    @property
    def support(self) -> Tuple[str, ...]:
        """Universe words with a non-zero coefficient."""
        semiring = self.space.semiring
        return tuple(
            word
            for word, value in zip(self.space.universe.words, self.coefficients)
            if value != semiring.zero
        )

    def _check(self, other: "IPS") -> None:
        if self.space is not other.space:
            raise ValueError("cannot combine IPS from different spaces")

    def __repr__(self) -> str:
        return "IPS(support=%r)" % (self.support,)
