"""Formal power series ``r : Σ* → S`` with finite support (Def. 2.9).

These are the "polynomials" ``Σ*⟨⟨S⟩⟩`` of the paper: dictionary-backed
maps from words to semiring coefficients, with

* pointwise sum,
* Cauchy/convolution product
  ``(r·s)(σ) = ⊕ { r(σ1)·s(σ2) | σ1·σ2 = σ }``,
* a truncated Kleene star (star of a series whose support excludes ``ε``
  is an infinite series; :meth:`FPS.star_truncated` materialises its
  restriction to words of bounded length, which is all the synthesiser
  ever observes).

This module is the executable version of the paper's §2.2 and is used as
a mathematical oracle in property tests; the production engines work on
the infix power series of :mod:`repro.semiring.ips` instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .semiring import BOOLEAN, Semiring


class FPS:
    """A finite-support formal power series over a semiring."""

    __slots__ = ("semiring", "coefficients")

    def __init__(
        self,
        semiring: Semiring,
        coefficients: Mapping[str, object] = (),
    ) -> None:
        self.semiring = semiring
        cleaned: Dict[str, object] = {}
        items = coefficients.items() if isinstance(coefficients, Mapping) else coefficients
        for word, value in items:
            if value != semiring.zero:
                cleaned[word] = value
        self.coefficients = cleaned

    # -- constructors ---------------------------------------------------
    @classmethod
    def zero(cls, semiring: Semiring) -> "FPS":
        """The constant-0 series."""
        return cls(semiring)

    @classmethod
    def one(cls, semiring: Semiring) -> "FPS":
        """The series mapping ``ε`` to 1 and everything else to 0."""
        return cls(semiring, {"": semiring.one})

    @classmethod
    def of_word(cls, semiring: Semiring, word: str) -> "FPS":
        """The series of the singleton language ``{word}``."""
        return cls(semiring, {word: semiring.one})

    @classmethod
    def of_language(cls, words: Iterable[str], semiring: Semiring = BOOLEAN) -> "FPS":
        """Characteristic series of a finite language."""
        return cls(semiring, {word: semiring.one for word in set(words)})

    # -- observations ---------------------------------------------------
    def __call__(self, word: str) -> object:
        """The coefficient of ``word`` (``0`` outside the support)."""
        return self.coefficients.get(word, self.semiring.zero)

    @property
    def support(self) -> frozenset:
        """``supp(r) = { w | r(w) ≠ 0 }``."""
        return frozenset(self.coefficients)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FPS):
            return NotImplemented
        return (
            self.semiring is other.semiring
            and self.coefficients == other.coefficients
        )

    def __hash__(self) -> int:
        return hash((id(self.semiring), tuple(sorted(self.coefficients.items()))))

    # -- algebra ---------------------------------------------------------
    def __add__(self, other: "FPS") -> "FPS":
        self._check(other)
        result = dict(self.coefficients)
        for word, value in other.coefficients.items():
            result[word] = self.semiring.add(result.get(word, self.semiring.zero), value)
        return FPS(self.semiring, result)

    def __mul__(self, other: "FPS") -> "FPS":
        """Convolution product over all splits of each support word."""
        self._check(other)
        result: Dict[str, object] = {}
        for left_word, left_value in self.coefficients.items():
            for right_word, right_value in other.coefficients.items():
                word = left_word + right_word
                term = self.semiring.mul(left_value, right_value)
                result[word] = self.semiring.add(
                    result.get(word, self.semiring.zero), term
                )
        return FPS(self.semiring, result)

    def star_truncated(self, max_length: int) -> "FPS":
        """``r*`` restricted to words of length ≤ ``max_length``.

        Computed as the limit of ``1 + r + r² + ...`` with every partial
        product truncated; converges because each non-ε factor adds at
        least one character.  Requires an idempotent-addition semiring (or
        an ``ε``-free support) to be well defined; the Boolean case always
        is.
        """
        one = FPS.one(self.semiring)
        truncated = FPS(
            self.semiring,
            {w: v for w, v in self.coefficients.items() if 0 < len(w) <= max_length},
        )
        total = one
        power = one
        for _ in range(max_length):
            power = FPS(
                self.semiring,
                {
                    w: v
                    for w, v in (power * truncated).coefficients.items()
                    if len(w) <= max_length
                },
            )
            if not power.coefficients:
                break
            total = total + power
        return total

    def _check(self, other: "FPS") -> None:
        if self.semiring is not other.semiring:
            raise ValueError("cannot combine series over different semirings")

    def __repr__(self) -> str:
        parts = ", ".join(
            "%s: %r" % (repr(word), value)
            for word, value in sorted(self.coefficients.items())
        )
        return "FPS({%s})" % parts
