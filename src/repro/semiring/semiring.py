"""Semirings (Def. 2.2 of the paper).

A semiring ``(S, +, ·, 0, 1)`` packages the algebra that formal power
series and infix power series are defined over.  The Boolean semiring
``(B, ∨, ∧, 0, 1)`` is the one Paresy instantiates — a Boolean IPS *is* a
characteristic sequence — but the abstractions are generic, mirroring the
paper's remark that almost everything works for arbitrary semirings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generic, Iterable, Optional, TypeVar

T = TypeVar("T")


class Semiring(ABC, Generic[T]):
    """Abstract semiring: commutative monoid ``(+, 0)``, monoid ``(·, 1)``,
    distributivity, and ``0`` annihilating ``·``."""

    @property
    @abstractmethod
    def zero(self) -> T:
        """The additive identity."""

    @property
    @abstractmethod
    def one(self) -> T:
        """The multiplicative identity."""

    @abstractmethod
    def add(self, a: T, b: T) -> T:
        """Semiring addition."""

    @abstractmethod
    def mul(self, a: T, b: T) -> T:
        """Semiring multiplication."""

    def add_all(self, values: Iterable[T]) -> T:
        """``⊕`` lifted to finite collections (``zero`` when empty)."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def closure(self, a: T) -> Optional[T]:
        """The star ``a* = 1 + a + a² + ...`` where defined, else ``None``.

        Only semirings where the sum converges for the given element
        implement this; the base implementation handles the common case
        ``a* = 1`` when ``a = 0``.
        """
        if a == self.zero:
            return self.one
        return None

    def is_idempotent_add(self) -> bool:
        """True when ``a + a = a`` holds (checked on ``one``)."""
        return self.add(self.one, self.one) == self.one


class BooleanSemiring(Semiring[bool]):
    """``(B, ∨, ∧, False, True)`` — the semiring of Paresy's CSs."""

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def closure(self, a: bool) -> bool:
        # b* = 1 in the Boolean semiring, for both values of b.
        return True


class NaturalSemiring(Semiring[int]):
    """``(ℕ, +, ·, 0, 1)`` — counts derivations instead of merely
    recording existence; useful as an ambiguity-counting power series."""

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b


class TropicalSemiring(Semiring[float]):
    """``(ℝ∪{∞}, min, +, ∞, 0)`` — shortest-derivation weights."""

    INFINITY = float("inf")

    @property
    def zero(self) -> float:
        return self.INFINITY

    @property
    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return min(a, b)

    def mul(self, a: float, b: float) -> float:
        return a + b

    def closure(self, a: float) -> Optional[float]:
        # min(0, a, 2a, ...) = 0 whenever a ≥ 0; diverges for a < 0.
        if a >= 0:
            return 0.0
        return None


BOOLEAN = BooleanSemiring()
NATURAL = NaturalSemiring()
TROPICAL = TropicalSemiring()
