"""Semirings, formal power series and infix power series — the paper's
mathematical foundation (§2.2, Def. 3.5)."""

from .semiring import (
    BOOLEAN,
    NATURAL,
    TROPICAL,
    BooleanSemiring,
    NaturalSemiring,
    Semiring,
    TropicalSemiring,
)
from .fps import FPS
from .ips import IPS, IPSSpace

__all__ = [
    "BOOLEAN",
    "NATURAL",
    "TROPICAL",
    "BooleanSemiring",
    "NaturalSemiring",
    "Semiring",
    "TropicalSemiring",
    "FPS",
    "IPS",
    "IPSSpace",
]
