"""Deterministic fault injection for the durability layer.

Production code marks its crash-interesting seams with
:func:`fault_point` — a named no-op unless a matching fault has been
armed.  Tests (and the CI recovery-smoke job) arm faults either
programmatically with :func:`inject` or through the ``REPRO_FAULTS``
environment variable, which child processes inherit — that is how a
*pool worker* or a *shard worker* is made to die at a precise point
while the parent test process keeps running.

Spec grammar (comma-separated entries)::

    point:action[:hit][:once]

``point``
    The :func:`fault_point` name, e.g. ``pool.worker.before_job``.
``action``
    ``raise`` — raise ``OSError(ENOSPC)`` at the point;
    ``kill``  — ``SIGKILL`` the current process (a real crash: no
    atexit handlers, no finally blocks);
    ``exit``  — ``os._exit(3)`` (crash without a signal).
``hit``
    Fire on the *N*-th arrival at the point (per process), default 1.
    Arrivals before the N-th are no-ops; after firing a ``raise`` fault
    stays disarmed in that process.
``once``
    Fire at most once *globally*, across processes and respawns, via an
    ``O_EXCL`` sentinel file in ``REPRO_FAULTS_DIR`` (falls back to
    per-process semantics when the directory is unset).  This is how
    "kill the worker once, then let the retry succeed" is expressed.

Injection points wired into the codebase:

==============================  =========================================
``store.atomic_write_bytes``    between temp-file write and ``os.replace``
``checkpoint.append``           between journal append and manifest write
``checkpoint.append_partial``   between a partial checkpoint's journal
                                append and its manifest write
``pool.worker.before_job``      worker received a job, not yet served
``pool.worker.after_job``       result computed, not yet reported
``pool.worker.preempt``         preempted result computed, not yet
                                reported back to the parent
``shard.worker.emit``           shard worker about to run an emit round
==============================  =========================================
"""

from __future__ import annotations

import errno
import os
import signal
from typing import Dict, List, Optional

#: Environment variable holding the armed fault spec.
ENV_FAULTS = "REPRO_FAULTS"
#: Directory for ``once`` sentinel files (shared across processes).
ENV_FAULTS_DIR = "REPRO_FAULTS_DIR"

_ACTIONS = ("raise", "kill", "exit")


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` entry."""


class _Fault:
    __slots__ = ("point", "action", "hit", "once", "arrivals", "disarmed")

    def __init__(self, point: str, action: str, hit: int = 1,
                 once: bool = False) -> None:
        if action not in _ACTIONS:
            raise FaultSpecError("unknown fault action %r" % action)
        if hit < 1:
            raise FaultSpecError("fault hit count must be >= 1")
        self.point = point
        self.action = action
        self.hit = hit
        self.once = once
        self.arrivals = 0
        self.disarmed = False


#: Armed faults by point name; ``None`` means "parse the environment on
#: the next arrival" (so ``reset()`` also re-arms forked children that
#: inherited a parent's parsed-but-empty table).
_active: Optional[Dict[str, _Fault]] = None


def parse_spec(spec: str) -> Dict[str, _Fault]:
    """Parse a ``REPRO_FAULTS`` value into a fault table."""
    table: Dict[str, _Fault] = {}
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        parts: List[str] = entry.split(":")
        if len(parts) < 2:
            raise FaultSpecError("fault entry %r needs point:action" % entry)
        point, action = parts[0], parts[1]
        hit = 1
        once = False
        for extra in parts[2:]:
            if extra == "once":
                once = True
            else:
                try:
                    hit = int(extra)
                except ValueError:
                    raise FaultSpecError(
                        "fault entry %r: %r is neither a hit count nor "
                        "'once'" % (entry, extra)
                    ) from None
        table[point] = _Fault(point, action, hit=hit, once=once)
    return table


def _table() -> Dict[str, _Fault]:
    global _active
    if _active is None:
        spec = os.environ.get(ENV_FAULTS, "")
        _active = parse_spec(spec) if spec else {}
    return _active


def inject(point: str, action: str, hit: int = 1, once: bool = False) -> None:
    """Arm a fault programmatically (in-process, or pre-fork)."""
    _table()[point] = _Fault(point, action, hit=hit, once=once)


def reset() -> None:
    """Disarm everything; the next arrival re-reads the environment."""
    global _active
    _active = None


def _claim_once(fault: _Fault) -> bool:
    """True when this process wins the cross-process once-sentinel."""
    directory = os.environ.get(ENV_FAULTS_DIR)
    if not directory:
        return True
    sentinel = os.path.join(
        directory, "fault-%s.fired" % fault.point.replace("/", "_")
    )
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return True
    os.close(fd)
    return True


def fault_point(name: str) -> None:
    """Fire any armed fault for ``name``; a no-op otherwise.

    Cheap by design: one dict lookup when nothing is armed, so
    production seams can call it unconditionally.
    """
    table = _table()
    if not table:
        return
    fault = table.get(name)
    if fault is None or fault.disarmed:
        return
    fault.arrivals += 1
    if fault.arrivals < fault.hit:
        return
    fault.disarmed = True
    if fault.once and not _claim_once(fault):
        return
    if fault.action == "raise":
        raise OSError(errno.ENOSPC, "injected fault at %r" % name)
    if fault.action == "exit":
        os._exit(3)
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# Corruption helpers for at-rest faults (no fault_point involved): the
# tests use these to damage store entries the way a crash would.
# ----------------------------------------------------------------------
def truncate_file(path, keep: int) -> None:
    """Truncate ``path`` to its first ``keep`` bytes (a torn write)."""
    with open(path, "rb+") as handle:
        handle.truncate(max(0, keep))


def corrupt_file(path, offset: int = 0) -> None:
    """Flip every bit of one byte at ``offset`` (bit rot)."""
    with open(path, "rb+") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            return
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
