"""Test-support utilities shipped with the package.

Only :mod:`repro.testing.faults` lives here today: the deterministic
fault-injection harness the recovery tests and the CI smoke job use to
kill workers, truncate checkpoints, and fail writes on purpose.  The
module is dependency-free and its hooks are no-ops unless explicitly
armed, so importing it from production paths costs nothing.
"""

from .faults import (
    fault_point,
    inject,
    reset,
    corrupt_file,
    truncate_file,
)

__all__ = [
    "fault_point",
    "inject",
    "reset",
    "corrupt_file",
    "truncate_file",
]
