"""The network-native synthesis server.

:class:`SynthesisServer` puts the whole service stack behind a socket:
two :class:`~repro.service.client.ServiceClient` *lanes* — one sized
for interactive traffic, one for batch sweeps — share a single content-
addressed store directory (staging artifacts, results, checkpoints and
the quarantine are all multi-writer safe), while an
:class:`~repro.server.scheduler.AdmissionController` bounds each lane's
backlog so overload degrades to fast 429s instead of timeouts.  The
two-lane split is what makes the latency story real: pool workers serve
jobs sequentially, so however high its priority, an interactive request
behind a long batch job on the *same* worker would wait out the sweep.
Separate lanes mean batch load can saturate its own workers without
ever standing in front of an interactive request.

Endpoints (HTTP/1.1, keep-alive, JSON bodies):

=========================  =============================================
``POST /jobs``             submit a wire request; the job id is the
                           request's content fingerprint, so duplicate
                           submissions *join* the live job.  Tracing is
                           on by default (``"trace": false`` opts out)
``GET /jobs/<id>``         status (+ result once finished)
``GET /jobs/<id>/events``  chunked NDJSON progress stream — replayed
                           from the start, then live; the engine-side
                           ``elapsed_s`` clock is preserved verbatim
``GET /jobs/<id>/trace``   the job's spans — every process on one
                           timeline — plus a ready-made Chrome
                           trace-event document (Perfetto-loadable)
``DELETE /jobs/<id>``      cancel; cancelling a finished job returns
                           the finished result (cancellation is not
                           an eraser)
``GET /healthz``           lane liveness (per-lane ``degraded`` flags,
                           last-quarantine timestamp), retry/respawn
                           counters, quarantined job records
``GET /metrics``           Prometheus text exposition, including
                           per-stage latency histograms fed by spans
=========================  =============================================

Threading model: the asyncio loop runs in one dedicated thread and owns
every :class:`_JobRecord` — all record mutation happens via
``call_soon_threadsafe``, so the request handlers need no locks.  Pool
progress callbacks (collector thread) and per-job waiter threads cross
into the loop the same way.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hmac
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional

from ..api.config import EngineConfig
from ..api.progress import ProgressEvent
from ..core.result import SynthesisResult
from ..obs.export import SPAN_STAGES, chrome_trace, stage_summary
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext, new_span_id
from ..service.checkpoint import CheckpointStore
from ..service.client import ServiceClient
from ..service.pool import CHECKPOINTS_SUBDIR
from ..service.queue import JobFailedError
from ..service.wire import PRIORITY_HIGH, PRIORITY_NORMAL, WireRequest
from . import http11
from .http11 import ChunkedWriter, ProtocolError, Request
from .scheduler import (
    CLASS_BATCH,
    CLASS_INTERACTIVE,
    CLASSES,
    DEFAULT_INTERACTIVE_THRESHOLD,
    DEFAULT_LATENCY_TARGET_S,
    DEFAULT_SHARD_WIDTH_THRESHOLD,
    AdmissionController,
    LatencyTracker,
    WorkloadHistory,
    choose_shard_workers,
    classify,
)

#: Finished jobs kept around for late status/result reads.
FINISHED_RECORDS_KEPT = 1024

#: Completions between best-effort history/prune maintenance passes.
MAINTENANCE_EVERY = 8

#: Seconds a kept-alive connection may sit idle between requests.
KEEPALIVE_IDLE_S = 10.0


#: ``result.extra`` keys forwarded in the HTTP job document — the
#: scalar scheduling/durability counters, never the heavyweight
#: payloads (trace, level stats) that have endpoints of their own.
_WIRE_EXTRA_KEYS = (
    "attempts",
    "preemptions",
    "resumed_levels",
    "partial_resumes",
    "partial_checkpoints",
)


class _JobRecord:
    """Loop-thread-owned state of one submitted job."""

    __slots__ = (
        "job_id",
        "wire",
        "klass",
        "state",
        "priority",
        "shard_workers",
        "submitted_monotonic",
        "events",
        "subscribers",
        "result",
        "error",
        "handle",
        "joined",
        "trace_id",
        "root_span_id",
        "server_spans",
    )

    def __init__(self, job_id: str, wire: WireRequest, klass: str,
                 priority: int, shard_workers: int,
                 trace_id: Optional[str] = None,
                 root_span_id: Optional[str] = None,
                 server_spans: Optional[List[dict]] = None) -> None:
        self.job_id = job_id
        self.wire = wire
        self.klass = klass
        self.state = "queued"
        self.priority = priority
        self.shard_workers = shard_workers
        self.submitted_monotonic = time.monotonic()
        #: Observability identity of this job (None when untraced) plus
        #: the spans the *server* recorded — the root job span first.
        self.trace_id = trace_id
        self.root_span_id = root_span_id
        self.server_spans: List[dict] = server_spans or []
        #: Every progress event seen so far, already in wire form —
        #: late ``/events`` subscribers replay these before going live.
        self.events: List[dict] = []
        self.subscribers: List[asyncio.Queue] = []
        self.result: Optional[SynthesisResult] = None
        self.error: Optional[str] = None
        self.handle = None
        #: Duplicate submissions that joined this record.
        self.joined = 0

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def status_dict(self) -> dict:
        data = {
            "job_id": self.job_id,
            "state": self.state,
            "class": self.klass,
            "joined": self.joined,
            "shard_workers": self.shard_workers,
            "events": len(self.events),
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.result is not None:
            data["result"] = self.result.to_dict()
            extra = getattr(self.result, "extra", None)
            if isinstance(extra, dict):
                # The scheduling/durability story of this particular
                # job — how many attempts it took, whether it was
                # preempted, what it resumed from — is exactly what an
                # HTTP client cannot reconstruct any other way.
                wire_extra = {
                    key: extra[key]
                    for key in _WIRE_EXTRA_KEYS
                    if key in extra
                }
                if wire_extra:
                    data["result"]["extra"] = wire_extra
        if self.error is not None:
            data["error"] = self.error
        return data


class SynthesisServer:
    """Admission-controlled HTTP front of the synthesis service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_dir: Optional[str] = None,
        interactive_workers: int = 1,
        batch_workers: int = 2,
        per_worker_depth: int = 2,
        max_queue: Optional[Dict[str, int]] = None,
        config: Optional[EngineConfig] = None,
        registry=None,
        reuse_results: bool = True,
        interactive_threshold: float = DEFAULT_INTERACTIVE_THRESHOLD,
        latency_target_s: float = DEFAULT_LATENCY_TARGET_S,
        max_shard_workers: int = 4,
        shard_width_threshold: int = DEFAULT_SHARD_WIDTH_THRESHOLD,
        checkpoint_budget_bytes: Optional[int] = None,
        checkpoints: bool = True,
        auth_token: Optional[str] = None,
        preempt_on_saturation: bool = True,
        brownout_enter_after_s: float = 2.0,
        brownout_exit_after_s: float = 5.0,
        retry_backoff_s: float = 0.05,
        retry_jitter: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.store_dir = store_dir
        self.interactive_threshold = interactive_threshold
        self.latency_target_s = latency_target_s
        self.max_shard_workers = max_shard_workers
        self.shard_width_threshold = shard_width_threshold
        self.checkpoint_budget_bytes = checkpoint_budget_bytes
        #: Bearer token every request must present (None = open server).
        self.auth_token = auth_token
        #: Preempt the longest-running batch attempt when an interactive
        #: submission finds its lane saturated (set False to disable).
        self.preempt_on_saturation = preempt_on_saturation
        self.preemptions_triggered = 0
        lane_workers = {
            CLASS_INTERACTIVE: max(1, interactive_workers),
            CLASS_BATCH: max(1, batch_workers),
        }
        self.lanes: Dict[str, ServiceClient] = {
            klass: ServiceClient(
                workers=lane_workers[klass],
                config=config,
                registry=registry,
                store_dir=store_dir,
                per_worker_depth=per_worker_depth,
                reuse_results=reuse_results,
                checkpoints=checkpoints,
                retry_backoff_s=retry_backoff_s,
                retry_jitter=retry_jitter,
            )
            for klass in CLASSES
        }
        slots = {
            klass: lane_workers[klass] * per_worker_depth
            for klass in CLASSES
        }
        bounds = dict(max_queue or {})
        bounds.setdefault(CLASS_INTERACTIVE, 16)
        bounds.setdefault(CLASS_BATCH, 32)
        self.latency = LatencyTracker()
        self.admission = AdmissionController(
            slots=slots,
            max_queue=bounds,
            latency=self.latency,
            brownout_enter_after_s=brownout_enter_after_s,
            brownout_exit_after_s=brownout_exit_after_s,
        )
        history_path = (
            Path(store_dir) / "history.json" if store_dir is not None else None
        )
        self.history = WorkloadHistory(path=history_path)
        # Observability ------------------------------------------------
        self.obs = MetricsRegistry()
        self._stage_seconds = self.obs.histogram(
            "repro_stage_seconds",
            "Per-stage span durations (queue wait, staging, level "
            "builds, checkpoint replay/save, store writes).",
        )
        self._job_seconds = self.obs.histogram(
            "repro_job_seconds",
            "End-to-end job wall-clock (submit to completion), per class.",
        )
        #: Plane-cache traffic summed over finished jobs (drives the
        #: hit-rate gauge on /metrics).
        self._plane_totals = {"builds": 0, "hits": 0}
        # Loop-thread state --------------------------------------------
        self._records: "OrderedDict[str, _JobRecord]" = OrderedDict()
        self._status_counts: Dict[str, int] = {}
        self._completions = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = False
        self._stopping = threading.Event()
        self._last_activity = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SynthesisServer":
        """Start the lanes and the listening socket (idempotent)."""
        if self._started:
            return self
        for lane in self.lanes.values():
            lane.start()
        self._prune_checkpoints()
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="synthesis-server", daemon=True
        )
        self._thread.start()
        started.wait()
        future = asyncio.run_coroutine_threadsafe(
            asyncio.start_server(self._handle_connection, self.host, self.port),
            self._loop,
        )
        self._server = future.result(timeout=10.0)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = True
        return self

    def stop(self) -> None:
        """Stop accepting, drain the loop, shut the lanes down."""
        if not self._started:
            return
        self._started = False
        self._stopping.set()

        async def close() -> None:
            self._server.close()
            await self._server.wait_closed()
            # Kept-alive connections may be parked in an idle read;
            # cancel them and wait for their transports to finish
            # closing so the loop stops clean.
            tasks = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            await asyncio.sleep(0)

        asyncio.run_coroutine_threadsafe(close(), self._loop).result(
            timeout=10.0
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self.history.save()
        for lane in self.lanes.values():
            lane.close(cancel_pending=True)

    def __enter__(self) -> "SynthesisServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def serve_forever(self, idle_timeout: Optional[float] = None) -> None:
        """Block until :meth:`stop` (another thread / signal handler) or
        until no request has arrived for ``idle_timeout`` seconds."""
        while not self._stopping.wait(timeout=0.2):
            if (
                idle_timeout is not None
                and time.monotonic() - self._last_activity > idle_timeout
                and not any(
                    not record.finished for record in self._records.values()
                )
            ):
                self.stop()
                return

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Serve requests off one connection until it goes quiet.

        HTTP/1.1 keep-alive: fixed-length responses leave the
        connection open for the next request (a polling client reuses
        one TCP connection for its whole backoff loop), while chunked
        event streams and protocol errors are connection-terminal.
        """
        try:
            first = True
            while True:
                try:
                    request = await http11.read_request(
                        reader,
                        idle_timeout=None if first else KEEPALIVE_IDLE_S,
                    )
                except ProtocolError as exc:
                    await http11.send_response(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    return
                if request is None:
                    return
                first = False
                writer.close_after_response = request.wants_close
                self._last_activity = time.monotonic()
                try:
                    terminal = await self._route(request, reader, writer)
                except ProtocolError as exc:
                    await http11.send_response(
                        writer, 400, {"error": str(exc)}, close=True
                    )
                    return
                except (ConnectionError, BrokenPipeError):
                    return
                except Exception as exc:  # pragma: no cover - defensive
                    try:
                        await http11.send_response(
                            writer,
                            500,
                            {"error": "internal error: %s" % exc},
                            close=True,
                        )
                    except (ConnectionError, BrokenPipeError):
                        pass
                    return
                if terminal or request.wants_close:
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: Request, reader, writer) -> bool:
        """Dispatch one request; True when the connection must close."""
        if self.auth_token is not None:
            supplied = request.headers.get("authorization") or ""
            expected = "Bearer %s" % self.auth_token
            # Constant-time compare: a timing oracle on the token
            # would let a remote caller recover it byte by byte.
            if not hmac.compare_digest(
                supplied.encode("utf-8", "replace"),
                expected.encode("utf-8"),
            ):
                await http11.send_response(
                    writer,
                    401,
                    {"error": "missing or invalid bearer token"},
                    headers={"WWW-Authenticate": "Bearer"},
                )
                return False
        path, method = request.path, request.method
        if path == "/jobs":
            if method != "POST":
                await http11.send_response(
                    writer, 405, {"error": "use POST /jobs"}
                )
                return False
            await self._post_job(request, writer)
            return False
        job_id, sub = http11.split_job_path(path)
        if job_id is not None:
            if sub is None and method == "GET":
                await self._get_job(job_id, writer)
            elif sub is None and method == "DELETE":
                await self._delete_job(job_id, writer)
            elif sub == "events" and method == "GET":
                # Chunked stream: the zero-length chunk is the only
                # end-of-stream marker, so the connection closes after.
                await self._stream_events(job_id, reader, writer)
                return True
            elif sub == "trace" and method == "GET":
                await self._get_trace(job_id, writer)
            else:
                await http11.send_response(
                    writer, 405, {"error": "unsupported job operation"}
                )
            return False
        if path == "/healthz" and method == "GET":
            await http11.send_response(writer, 200, self.health())
            return False
        if path == "/metrics" and method == "GET":
            await http11.send_response(
                writer,
                200,
                self.metrics_text(),
                content_type="text/plain; version=0.0.4",
            )
            return False
        await http11.send_response(
            writer, 404, {"error": "no such path %s" % path}
        )
        return False

    # ------------------------------------------------------------------
    # POST /jobs
    # ------------------------------------------------------------------
    async def _post_job(self, request: Request, writer) -> None:
        parse_started = request.received_s or time.time()
        payload = request.json()
        if not isinstance(payload, dict):
            raise ProtocolError("job payload must be a JSON object")
        klass_override = payload.get("class")
        if klass_override is not None and klass_override not in CLASSES:
            raise ProtocolError("unknown class %r" % klass_override)
        try:
            wire = WireRequest.from_json_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("malformed wire request: %s" % exc)
        parse_ended = time.time()
        # Tracing is on by default at the server edge (the overhead is
        # a handful of dict records per job); ``"trace": false`` in the
        # payload opts a submission out.  A client-supplied context is
        # always honoured.
        trace_enabled = (
            wire.trace_ctx is not None or bool(payload.get("trace", True))
        )
        job_id = wire.fingerprint()

        record = self._records.get(job_id)
        if record is not None and (not record.finished or
                                   record.state == "done"):
            # Content-addressed join: same fingerprint, same answer —
            # a completed record answers immediately, a live one is
            # joined (the answer would be bit-identical either way).
            record.joined += 1
            status = 200 if record.finished else 202
            data = record.status_dict()
            data["deduplicated"] = True
            await http11.send_response(writer, status, data)
            return
        if record is not None:
            # A cancelled or failed record does not pin the fingerprint:
            # resubmission starts a fresh run.
            del self._records[job_id]

        klass = klass_override or classify(
            wire,
            self.history,
            interactive_threshold=self.interactive_threshold,
            latency_target_s=self.latency_target_s,
        )
        admission_started = time.time()
        admission = self.admission.try_admit(klass)
        admission_ended = time.time()
        if not admission.admitted:
            retry_after = max(1, int(admission.retry_after_s or 1))
            await http11.send_response(
                writer,
                429,
                {
                    "error": admission.reason,
                    "class": klass,
                    "retry_after_s": retry_after,
                },
                headers={"Retry-After": str(retry_after)},
            )
            return

        # Latency protection: an interactive admission that finds its
        # lane saturated evicts the longest-running batch attempt — the
        # batch job checkpoints mid-level and requeues, freeing cores
        # for the interactive burst while losing almost no work.
        preempted_job = None
        preempt_started = preempt_ended = None
        if (
            klass == CLASS_INTERACTIVE
            and self.preempt_on_saturation
            and self.admission.interactive_saturated()
        ):
            preempt_started = time.time()
            preempted_job = self.lanes[CLASS_BATCH].preempt_longest_running()
            preempt_ended = time.time()
            if preempted_job is not None:
                self.preemptions_triggered += 1

        shards = choose_shard_workers(
            wire,
            self.history,
            cpu_count=os.cpu_count() or 1,
            max_shard_workers=self.max_shard_workers,
            width_threshold=self.shard_width_threshold,
        )
        if shards != wire.config.shard_workers:
            wire = dataclasses.replace(
                wire, config=wire.config.replace(shard_workers=shards)
            )
        priority = (
            PRIORITY_HIGH if klass == CLASS_INTERACTIVE else PRIORITY_NORMAL
        )
        trace_id = root_span_id = None
        server_spans: List[dict] = []
        if trace_enabled:
            # Root span of the whole job; everything downstream (pool
            # queue-wait, worker-job, engine levels, shard emits) hangs
            # off it via the child context that rides the wire.
            ctx = wire.trace_ctx or TraceContext.mint()
            trace_id, root_span_id = ctx.trace_id, new_span_id()

            def server_span(name, start_s, end_s, **args):
                return {
                    "name": name,
                    "trace_id": trace_id,
                    "span_id": new_span_id(),
                    "parent_id": root_span_id,
                    "start_s": start_s,
                    "end_s": end_s,
                    "process": "server",
                    "args": args,
                }

            server_spans = [
                {
                    "name": "job",
                    "trace_id": trace_id,
                    "span_id": root_span_id,
                    "parent_id": ctx.parent_span_id,
                    "start_s": parse_started,
                    "end_s": None,  # closed by _complete
                    "process": "server",
                    "args": {"job_id": job_id, "class": klass},
                },
                server_span("http-parse", parse_started, parse_ended),
                server_span(
                    "admission", admission_started, admission_ended,
                    **{"class": klass},
                ),
            ]
            if preempted_job is not None:
                server_spans.append(
                    server_span(
                        "preempt-batch",
                        preempt_started,
                        preempt_ended,
                        preempted_job_id=preempted_job,
                    )
                )
            wire = dataclasses.replace(
                wire, trace_ctx=ctx.child(root_span_id)
            )
        record = _JobRecord(
            job_id, wire, klass, priority, shards,
            trace_id=trace_id, root_span_id=root_span_id,
            server_spans=server_spans,
        )
        self._records[job_id] = record
        while len(self._records) > FINISHED_RECORDS_KEPT * 2:
            # Evict the oldest *finished* record; live ones stay.
            for key, old in self._records.items():
                if old.finished:
                    del self._records[key]
                    break
            else:
                break

        loop = self._loop

        def on_progress(event, _job_id=job_id):
            # Collector thread → loop thread.
            loop.call_soon_threadsafe(self._on_event, _job_id, event)

        submit_started = time.time()
        try:
            handle = self.lanes[klass].submit(
                wire, priority=priority, on_progress=on_progress
            )
        except Exception as exc:
            self.admission.release(klass)
            del self._records[job_id]
            await http11.send_response(
                writer, 503, {"error": "submit failed: %s" % exc}
            )
            return
        if trace_enabled:
            record.server_spans.append(
                {
                    "name": "pool-submit",
                    "trace_id": trace_id,
                    "span_id": new_span_id(),
                    "parent_id": root_span_id,
                    "start_s": submit_started,
                    "end_s": time.time(),
                    "process": "server",
                    "args": {"class": klass},
                }
            )
        record.handle = handle
        if handle.done:
            # Stored-result fast path: the pool answered from disk and
            # already emitted the final done-event through on_progress.
            try:
                result = handle.result(timeout=0)
            except JobFailedError as exc:
                loop.call_soon_threadsafe(
                    self._complete, job_id, None, str(exc)
                )
            else:
                loop.call_soon_threadsafe(self._complete, job_id, result, None)
        else:
            waiter = threading.Thread(
                target=self._wait_for,
                args=(job_id, handle),
                name="job-waiter-%s" % job_id[:8],
                daemon=True,
            )
            waiter.start()
        data = record.status_dict()
        data["deduplicated"] = False
        await http11.send_response(writer, 202, data)

    def _wait_for(self, job_id: str, handle) -> None:
        """Waiter thread: block on the pool handle, report to the loop.

        Progress events alone cannot signal completion — a job cancelled
        while still queued never reaches a worker and emits nothing.
        """
        try:
            result = handle.result()
            error = None
        except JobFailedError as exc:
            result, error = None, str(exc)
        except Exception as exc:  # pragma: no cover - defensive
            result, error = None, "unexpected waiter error: %s" % exc
        try:
            self._loop.call_soon_threadsafe(
                self._complete, job_id, result, error
            )
        except RuntimeError:  # loop already closed during shutdown
            pass

    # ------------------------------------------------------------------
    # Record transitions (loop thread only)
    # ------------------------------------------------------------------
    def _on_event(self, job_id: str, event: ProgressEvent) -> None:
        record = self._records.get(job_id)
        if record is None:
            return
        if record.state == "queued" and not record.finished:
            record.state = "running"
        data = event.to_json_dict()
        record.events.append(data)
        for queue in record.subscribers:
            queue.put_nowait(data)

    def _complete(
        self,
        job_id: str,
        result: Optional[SynthesisResult],
        error: Optional[str],
    ) -> None:
        record = self._records.get(job_id)
        if record is None or record.finished:
            return
        if error is not None:
            record.state = "failed"
            record.error = error
        else:
            record.result = result
            record.state = (
                "cancelled" if result.status == "cancelled" else "done"
            )
            if result.status != "cancelled":
                self.history.record(record.wire.staging_fingerprint(), result)
        elapsed = time.monotonic() - record.submitted_monotonic
        if record.root_span_id is not None and record.server_spans:
            record.server_spans[0]["end_s"] = time.time()
            record.server_spans[0]["args"]["state"] = record.state
            for span in self._job_spans(record):
                stage = SPAN_STAGES.get(str(span.get("name")))
                if stage is None:
                    continue
                start = float(span.get("start_s", 0.0))
                end = float(span.get("end_s") or start)
                self._stage_seconds.observe(
                    max(0.0, end - start), stage=stage
                )
        self._job_seconds.observe(elapsed, **{"class": record.klass})
        if result is not None and isinstance(result.extra, dict):
            plane = result.extra.get("plane_stats")
            if isinstance(plane, dict):
                self._plane_totals["builds"] += int(plane.get("builds", 0))
                self._plane_totals["hits"] += int(plane.get("hits", 0))
        self.latency.record(record.klass, elapsed)
        self.admission.release(record.klass)
        self._status_counts[record.state] = (
            self._status_counts.get(record.state, 0) + 1
        )
        # A job cancelled while queued emitted no progress at all;
        # synthesise the terminal event so /events streams always end.
        if not any(event.get("done") for event in record.events):
            final = ProgressEvent(
                cost=(result.cost if result is not None and
                      result.cost is not None else -1),
                generated=result.generated if result is not None else 0,
                stored=result.unique_cs if result is not None else 0,
                elapsed_seconds=(
                    result.elapsed_seconds if result is not None else elapsed
                ),
                done=True,
                incumbent=result,
                elapsed_s=(
                    result.elapsed_seconds if result is not None else elapsed
                ),
            ).to_json_dict()
            record.events.append(final)
            for queue in record.subscribers:
                queue.put_nowait(final)
        for queue in record.subscribers:
            queue.put_nowait(None)  # stream-done sentinel
        self._completions += 1
        if self._completions % MAINTENANCE_EVERY == 0:
            self.history.save()
            self._prune_checkpoints()

    # ------------------------------------------------------------------
    # GET /jobs/<id>, DELETE /jobs/<id>
    # ------------------------------------------------------------------
    async def _get_job(self, job_id: str, writer) -> None:
        record = self._records.get(job_id)
        if record is None:
            await http11.send_response(
                writer, 404, {"error": "unknown job %s" % job_id}
            )
            return
        await http11.send_response(writer, 200, record.status_dict())

    async def _delete_job(self, job_id: str, writer) -> None:
        record = self._records.get(job_id)
        if record is None:
            await http11.send_response(
                writer, 404, {"error": "unknown job %s" % job_id}
            )
            return
        if record.finished:
            # Cancel-after-complete: the work is done; hand the caller
            # the finished record instead of pretending it vanished.
            data = record.status_dict()
            data["cancelled"] = False
            await http11.send_response(writer, 200, data)
            return
        delivered = (
            record.handle.cancel() if record.handle is not None else False
        )
        data = record.status_dict()
        data["cancelled"] = bool(delivered)
        await http11.send_response(writer, 202, data)

    # ------------------------------------------------------------------
    # GET /jobs/<id>/trace
    # ------------------------------------------------------------------
    def _job_spans(self, record: _JobRecord) -> List[dict]:
        """Server spans + the spans that came back with the result."""
        spans = list(record.server_spans)
        result = record.result
        if result is not None and isinstance(result.extra, dict):
            trace = result.extra.get("trace")
            # Guard on the trace id: a result answered from the store
            # may carry the trace of the run that produced it.
            if (
                isinstance(trace, dict)
                and trace.get("trace_id") == record.trace_id
            ):
                spans.extend(trace.get("spans") or [])
        return spans

    def trace_document(self, record: _JobRecord) -> dict:
        """The ``/jobs/<id>/trace`` document (also used by the CLI)."""
        spans = self._job_spans(record)
        return {
            "job_id": record.job_id,
            "trace_id": record.trace_id,
            "root_span_id": record.root_span_id,
            "state": record.state,
            "spans": spans,
            "stages": stage_summary(spans),
            "chrome_trace": chrome_trace(spans),
        }

    async def _get_trace(self, job_id: str, writer) -> None:
        record = self._records.get(job_id)
        if record is None:
            await http11.send_response(
                writer, 404, {"error": "unknown job %s" % job_id}
            )
            return
        if record.trace_id is None:
            await http11.send_response(
                writer, 404, {"error": "job %s was not traced" % job_id}
            )
            return
        await http11.send_response(writer, 200, self.trace_document(record))

    # ------------------------------------------------------------------
    # GET /jobs/<id>/events
    # ------------------------------------------------------------------
    async def _stream_events(self, job_id: str, reader, writer) -> None:
        record = self._records.get(job_id)
        if record is None:
            await http11.send_response(
                writer, 404, {"error": "unknown job %s" % job_id}
            )
            return
        stream = ChunkedWriter(writer)
        await stream.start()
        # Replay history first so a late subscriber sees the whole run.
        for event in list(record.events):
            await stream.send(event)
        if record.finished:
            await stream.finish()
            return
        queue: asyncio.Queue = asyncio.Queue()
        record.subscribers.append(queue)
        # Detect client disconnect by reading: the peer sends nothing
        # more on this connection, so any EOF/''-read means it left.
        eof_task = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                get_task = asyncio.ensure_future(queue.get())
                done, _pending = await asyncio.wait(
                    {get_task, eof_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if eof_task in done:
                    get_task.cancel()
                    return  # client went away; finally releases the sub
                event = get_task.result()
                if event is None:
                    break
                await stream.send(event)
            await stream.finish()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            if queue in record.subscribers:
                record.subscribers.remove(queue)
            if not eof_task.done():
                eof_task.cancel()

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` document (also handy for in-process tests)."""
        lanes = {}
        counters = {
            "retries": 0,
            "respawns": 0,
            "quarantined": 0,
            "preemptions": 0,
        }
        last_quarantine = None
        for klass, lane in self.lanes.items():
            liveness = lane.liveness()
            liveness["queue_depth"] = lane.queue_depth
            liveness["live_jobs"] = lane.live_jobs
            # A lane whose pool has zero live workers (every process
            # died in a respawn storm, or respawns are still racing the
            # reaper) must say so explicitly — claiming health while
            # unable to serve is the one lie /healthz must never tell.
            liveness["degraded"] = int(liveness.get("alive") or 0) == 0
            lanes[klass] = liveness
            stats = lane.stats
            for key in counters:
                counters[key] += int(stats.get(key, 0))
            lane_quarantine = liveness.get("last_quarantine_at")
            if lane_quarantine is not None and (
                last_quarantine is None or lane_quarantine > last_quarantine
            ):
                last_quarantine = lane_quarantine
        # Both lanes share one store directory, hence one quarantine —
        # read it once through either lane.
        quarantine = self.lanes[CLASS_INTERACTIVE].quarantine_records()
        for entry in quarantine:
            stamp = entry.get("quarantined_at")
            if stamp is not None and (
                last_quarantine is None or stamp > last_quarantine
            ):
                last_quarantine = stamp
        healthy = not any(lane["degraded"] for lane in lanes.values())
        return {
            "status": "ok" if healthy else "degraded",
            "lanes": lanes,
            "counters": counters,
            "quarantine": quarantine,
            "last_quarantine_at": last_quarantine,
            "admission": self.admission.depth_snapshot(),
            "brownout": self.admission.brownout_snapshot(),
            "preemptions_triggered": self.preemptions_triggered,
            "latency": self.latency.snapshot(),
            "jobs": dict(self._status_counts),
            "history_profiles": len(self.history),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the scheduler's counters."""
        lines: List[str] = []

        def metric(name: str, help_text: str, kind: str, samples) -> None:
            lines.append("# HELP %s %s" % (name, help_text))
            lines.append("# TYPE %s %s" % (name, kind))
            # A family with no samples yet still scrapes as zero — the
            # strict parser (repro.obs.validate) rejects empty families.
            samples = list(samples) or [({}, 0)]
            for labels, value in samples:
                label_text = (
                    "{%s}" % ",".join(
                        '%s="%s"' % (k, v) for k, v in sorted(labels.items())
                    )
                    if labels
                    else ""
                )
                lines.append("%s%s %s" % (name, label_text, value))

        depth = self.admission.depth_snapshot()
        latency = self.latency.snapshot()
        metric(
            "repro_queue_depth",
            "Jobs queued but not yet dispatched, per lane.",
            "gauge",
            [
                ({"class": klass}, self.lanes[klass].queue_depth)
                for klass in CLASSES
            ],
        )
        metric(
            "repro_jobs_inflight",
            "Admitted jobs not yet finished, per class.",
            "gauge",
            [({"class": k}, depth[k]["live"]) for k in CLASSES],
        )
        metric(
            "repro_jobs_rejected_total",
            "Submissions rejected with 429, per class.",
            "counter",
            [({"class": k}, depth[k]["rejected"]) for k in CLASSES],
        )
        brownout = self.admission.brownout_snapshot()
        metric(
            "repro_brownout_active",
            "1 while batch admissions are being shed to protect the "
            "interactive lane.",
            "gauge",
            [({}, 1 if brownout["active"] else 0)],
        )
        metric(
            "repro_brownout_rejections_total",
            "Batch submissions shed while brownout was active.",
            "counter",
            [({}, brownout["rejections"])],
        )
        metric(
            "repro_preemptions_total",
            "Running attempts preempted to a mid-level checkpoint, "
            "per lane.",
            "counter",
            [
                ({"class": klass},
                 int(self.lanes[klass].stats.get("preemptions", 0)))
                for klass in CLASSES
            ],
        )
        metric(
            "repro_preemption_triggers_total",
            "Interactive admissions that evicted a batch attempt.",
            "counter",
            [({}, self.preemptions_triggered)],
        )
        metric(
            "repro_jobs_total",
            "Finished jobs by terminal status.",
            "counter",
            [
                ({"status": status}, count)
                for status, count in sorted(self._status_counts.items())
            ],
        )
        metric(
            "repro_latency_seconds",
            "Windowed completion latency quantiles, per class.",
            "gauge",
            [
                ({"class": klass, "quantile": quantile}, latency[klass][key])
                for klass in CLASSES
                for quantile, key in (("0.5", "p50_s"), ("0.99", "p99_s"))
            ],
        )
        worker_samples = []
        utilisation_samples = []
        for klass in CLASSES:
            liveness = self.lanes[klass].liveness()
            worker_samples.append(({"class": klass}, liveness["alive"]))
            capacity = max(1, int(liveness.get("capacity") or 0))
            utilisation_samples.append(
                ({"class": klass}, "%.4f" % (liveness["load"] / capacity))
            )
        metric(
            "repro_workers_alive",
            "Live worker processes, per lane.",
            "gauge",
            worker_samples,
        )
        metric(
            "repro_worker_utilization",
            "Occupied worker slots over capacity, per lane.",
            "gauge",
            utilisation_samples,
        )
        if self.store_dir is not None:
            store = CheckpointStore(
                os.path.join(self.store_dir, CHECKPOINTS_SUBDIR)
            )
            keys = store.keys()
            metric(
                "repro_checkpoint_store_keys",
                "Checkpointed queries currently on disk.",
                "gauge",
                [({}, len(keys))],
            )
            metric(
                "repro_checkpoint_store_bytes",
                "Bytes the checkpoint store occupies on disk.",
                "gauge",
                [({}, sum(store.size_of(key) for key in keys))],
            )
        builds = self._plane_totals["builds"]
        hits = self._plane_totals["hits"]
        metric(
            "repro_plane_cache_hit_rate",
            "Packed-plane cache hits over lookups, across finished jobs.",
            "gauge",
            [({}, "%.4f" % (hits / max(1, hits + builds)))],
        )
        # Span-fed stage/job histograms (repro.obs.metrics registry).
        return "\n".join(lines) + "\n" + self.obs.render()

    # ------------------------------------------------------------------
    def _prune_checkpoints(self) -> None:
        if self.checkpoint_budget_bytes is None or self.store_dir is None:
            return
        store = CheckpointStore(
            os.path.join(self.store_dir, CHECKPOINTS_SUBDIR)
        )
        store.prune(max_bytes=self.checkpoint_budget_bytes)


__all__ = ["SynthesisServer", "FINISHED_RECORDS_KEPT"]
