"""A blocking HTTP client for :class:`~repro.server.app.SynthesisServer`.

The hand-rolled constraint applies to the *server* (it must multiplex
long-lived event streams); the client side is ordinary one-shot HTTP,
so the stdlib's :mod:`http.client` is exactly right — and its response
objects transparently decode the chunked ``/events`` body, which makes
the NDJSON stream a plain ``readline()`` loop.

:class:`HttpServiceClient` mirrors the in-process
:class:`~repro.service.client.ServiceClient` surface where it can
(``submit`` / ``result`` / ``cancel``), which is what lets the CLI and
the tests swap one for the other and assert bit-identical answers.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional
from urllib.parse import urlsplit

from ..api.progress import ProgressEvent
from ..errors import ReproError
from ..service.wire import WireRequest

#: Result-poll backoff: start fast, back off exponentially to the cap.
POLL_BASE_S = 0.05
POLL_CAP_S = 1.0


class ServerError(ReproError):
    """An HTTP-level failure talking to the synthesis server."""

    def __init__(self, status: int, payload: object) -> None:
        super().__init__("server returned %d: %r" % (status, payload))
        self.status = status
        self.payload = payload


class OverloadedError(ServerError):
    """A 429 rejection; ``retry_after_s`` is the server's suggestion."""

    def __init__(self, payload: object, retry_after_s: float) -> None:
        super().__init__(429, payload)
        self.retry_after_s = retry_after_s


def poll_intervals(
    base: float = POLL_BASE_S, cap: float = POLL_CAP_S
) -> Iterator[float]:
    """The exponential-backoff schedule used by every ``--wait`` path:
    ``base, 2·base, 4·base, …`` capped at ``cap``, then constant."""
    delay = base
    while True:
        yield delay
        delay = min(cap, delay * 2)


class HttpServiceClient:
    """One server address, one kept-alive connection, no threads.

    Fixed-length calls (submit/status/cancel/healthz/metrics) reuse a
    single persistent HTTP connection — a polling ``result()`` loop
    costs one TCP handshake total, not one per poll.  A connection the
    server has quietly closed (idle timeout, restart) is detected on
    the next call and retried once on a fresh connection.  The chunked
    ``/events`` stream is connection-terminal by design and always uses
    its own dedicated connection.
    """

    def __init__(
        self,
        address: str,
        timeout: float = 30.0,
        auth_token: Optional[str] = None,
    ) -> None:
        split = urlsplit(
            address if "//" in address else "http://%s" % address
        )
        if split.scheme not in ("", "http"):
            raise ValueError("only http:// addresses are supported")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self.auth_token = auth_token
        self._connection: Optional[http.client.HTTPConnection] = None

    def _headers(self, payload: Optional[bytes]) -> dict:
        headers = {"Content-Type": "application/json"} if payload else {}
        if self.auth_token is not None:
            headers["Authorization"] = "Bearer %s" % self.auth_token
        return headers

    def close(self) -> None:
        """Drop the persistent connection (reopened on the next call)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self._connection = None

    def __enter__(self) -> "HttpServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _fresh_request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ):
        """One-shot connection + response (the ``/events`` stream)."""
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        connection.request(
            method, path, body=payload, headers=self._headers(payload)
        )
        return connection, connection.getresponse()

    def _persistent_response(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> http.client.HTTPResponse:
        """Issue a request on the kept-alive connection.

        Retries exactly once on a fresh connection when the old one
        turns out to be stale (the server idle-closed it between
        polls); a failure on the fresh connection is a real error.
        """
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        headers = self._headers(payload)
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(
                    method, path, body=payload, headers=headers
                )
                return self._connection.getresponse()
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                BrokenPipeError,
                OSError,
            ):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _finish_response(self, response: http.client.HTTPResponse) -> None:
        """Honour the server's connection disposition after a read."""
        if response.will_close:
            self.close()

    def _json_call(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        response = self._persistent_response(method, path, body)
        raw = response.read()
        self._finish_response(response)
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            data = {"raw": raw.decode("utf-8", "replace")}
        if response.status == 429:
            retry_after = float(
                response.getheader("Retry-After")
                or data.get("retry_after_s")
                or 1.0
            )
            raise OverloadedError(data, retry_after)
        if response.status >= 400:
            raise ServerError(response.status, data)
        return data

    # ------------------------------------------------------------------
    def submit(
        self,
        request,
        klass: Optional[str] = None,
        registry=None,
    ) -> dict:
        """POST the request; returns the server's job document.

        Accepts anything :meth:`WireRequest.of` does.  Raises
        :class:`OverloadedError` on a 429 (carrying the server's
        Retry-After) rather than papering over admission control.
        """
        wire = WireRequest.of(request, registry=registry)
        payload = wire.to_json_dict()
        if klass is not None:
            payload["class"] = klass
        return self._json_call("POST", "/jobs", payload)

    def status(self, job_id: str) -> dict:
        """GET the job document."""
        return self._json_call("GET", "/jobs/%s" % job_id)

    def trace(self, job_id: str) -> dict:
        """GET the job's trace document (spans + Chrome trace JSON)."""
        return self._json_call("GET", "/jobs/%s/trace" % job_id)

    def cancel(self, job_id: str) -> dict:
        """DELETE the job; a finished job returns its result untouched."""
        return self._json_call("DELETE", "/jobs/%s" % job_id)

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> dict:
        """Poll (with exponential backoff) until the job finishes.

        Returns the terminal job document; raises :class:`TimeoutError`
        past ``timeout`` and :class:`ServerError` when the job failed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for delay in poll_intervals():
            data = self.status(job_id)
            state = data.get("state")
            if state in ("done", "cancelled"):
                return data
            if state == "failed":
                raise ServerError(500, data)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        "job %s not finished within %r s" % (job_id, timeout)
                    )
                delay = min(delay, remaining)
            time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def synthesize(self, request, timeout: Optional[float] = None) -> dict:
        """Submit and block; returns the result dict of the finished job."""
        job = self.submit(request)
        done = (
            job if job.get("state") in ("done", "cancelled")
            else self.result(job["job_id"], timeout=timeout)
        )
        return done.get("result") or {}

    # ------------------------------------------------------------------
    def events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[ProgressEvent]:
        """Stream the job's progress events (replay + live, in order).

        Yields :class:`ProgressEvent` objects; ``elapsed_s`` is the
        engine's own clock, exactly as emitted server-side.  Closing the
        generator mid-stream closes the connection — the server notices
        and releases the subscription.
        """
        connection, response = self._fresh_request(
            "GET",
            "/jobs/%s/events" % job_id,
            timeout=timeout if timeout is not None else 300.0,
        )
        try:
            if response.status != 200:
                raw = response.read()
                try:
                    data = json.loads(raw.decode("utf-8"))
                except ValueError:
                    data = {"raw": raw.decode("utf-8", "replace")}
                raise ServerError(response.status, data)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield ProgressEvent.from_json_dict(json.loads(line))
        finally:
            connection.close()

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """GET /healthz."""
        return self._json_call("GET", "/healthz")

    def metrics(self) -> str:
        """GET /metrics (raw Prometheus text)."""
        response = self._persistent_response("GET", "/metrics")
        raw = response.read()
        self._finish_response(response)
        if response.status >= 400:
            raise ServerError(response.status, raw)
        return raw.decode("utf-8")


__all__ = [
    "HttpServiceClient",
    "OverloadedError",
    "ServerError",
    "poll_intervals",
    "POLL_BASE_S",
    "POLL_CAP_S",
]
