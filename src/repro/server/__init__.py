"""Network-native synthesis service: HTTP server, scheduler, client.

The package splits into the three layers the tests exercise separately:

* :mod:`repro.server.scheduler` — admission control, workload classes,
  measured-history classification and adaptive sharding (pure Python,
  no sockets);
* :mod:`repro.server.http11` — the minimal asyncio HTTP/1.1 layer;
* :mod:`repro.server.app` — :class:`SynthesisServer`, wiring two
  worker-pool lanes behind the endpoints;
* :mod:`repro.server.client` — the blocking :class:`HttpServiceClient`.
"""

from .app import SynthesisServer
from .client import HttpServiceClient, OverloadedError, ServerError
from .scheduler import (
    CLASS_BATCH,
    CLASS_INTERACTIVE,
    AdmissionController,
    LatencyTracker,
    WorkloadHistory,
    choose_shard_workers,
    classify,
    estimate_cost,
)

__all__ = [
    "AdmissionController",
    "CLASS_BATCH",
    "CLASS_INTERACTIVE",
    "HttpServiceClient",
    "LatencyTracker",
    "OverloadedError",
    "ServerError",
    "SynthesisServer",
    "WorkloadHistory",
    "choose_shard_workers",
    "classify",
    "estimate_cost",
]
