"""A minimal HTTP/1.1 layer over ``asyncio`` streams.

Hand-rolled on purpose: the server must not grow runtime dependencies,
and the stdlib's ``http.server`` is thread-per-request and cannot
multiplex long-lived chunked event streams with cheap status probes.
This module implements exactly what the synthesis server needs and
nothing more:

* request parsing — request line, headers, ``Content-Length`` body,
  with hard limits so a malformed or hostile peer cannot balloon
  memory;
* fixed-length JSON responses, ``Connection: keep-alive`` by default so
  a polling client reuses one TCP connection across its whole
  status-poll loop (``close=True`` for terminal responses);
* ``Transfer-Encoding: chunked`` writing for the ``/events`` stream,
  one chunk per progress event, flushed eagerly so a client sees each
  level as the engine finishes it.  Chunked streams stay
  connection-terminal (``Connection: close``) — the zero-length chunk
  is the only unambiguous end-of-stream signal either side has.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: Parsing limits: longer request lines / more header bytes / larger
#: bodies than this are protocol errors, not allocation requests.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds a connection may take to deliver a complete request head.
REQUEST_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed request (maps to a 400 close)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: Epoch stamp of the moment the request line arrived — the start
    #: of the server's ``http-parse`` span (idle keep-alive time spent
    #: waiting for the peer is deliberately excluded).
    received_s: float = 0.0

    @property
    def wants_close(self) -> bool:
        """True when the peer asked for ``Connection: close``."""
        return self.headers.get("connection", "").lower() == "close"

    def json(self) -> object:
        """The body parsed as JSON (:class:`ProtocolError` on garbage)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError("invalid JSON body: %s" % exc)


async def read_request(
    reader: asyncio.StreamReader,
    timeout: float = REQUEST_TIMEOUT_S,
    idle_timeout: Optional[float] = None,
) -> Optional[Request]:
    """Parse one request off the stream; None on a clean EOF.

    ``idle_timeout`` replaces ``timeout`` for the *request line* only:
    on a kept-alive connection, a peer that sends nothing more is idle,
    not malformed, so expiry returns None (close quietly) instead of
    raising.  Once the request line arrives, the head and body must
    still complete within ``timeout``.
    """
    try:
        request_line = await asyncio.wait_for(
            reader.readline(),
            timeout=timeout if idle_timeout is None else idle_timeout,
        )
    except asyncio.TimeoutError:
        if idle_timeout is not None:
            return None
        raise ProtocolError("timed out waiting for the request line")
    if not request_line:
        return None
    received_s = time.time()
    if len(request_line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError("malformed request line %r" % request_line[:64])
    method, target, _version = parts
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        except asyncio.TimeoutError:
            raise ProtocolError("timed out reading headers")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ProtocolError("connection closed mid-headers")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError("headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError("malformed header line %r" % line[:64])
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("body too large (%d bytes)" % length)
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=timeout
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                raise ProtocolError("connection closed mid-body")
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
        received_s=received_s,
    )


def _head(
    status: int,
    extra_headers: Optional[Dict[str, str]],
    content_length: Optional[int],
    content_type: str,
    close: bool = True,
) -> bytes:
    lines = [
        "HTTP/1.1 %d %s" % (status, _REASONS.get(status, "Unknown")),
        "Content-Type: %s" % content_type,
        "Connection: %s" % ("close" if close else "keep-alive"),
    ]
    if content_length is not None:
        lines.append("Content-Length: %d" % content_length)
    for name, value in (extra_headers or {}).items():
        lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    headers: Optional[Dict[str, str]] = None,
    content_type: str = "application/json",
    close: bool = False,
) -> None:
    """One complete fixed-length response (payload JSON-encoded unless
    it is already ``bytes``/``str``).  Keep-alive unless ``close`` —
    or unless the connection loop marked the writer
    ``close_after_response`` (the peer sent ``Connection: close``), so
    every handler honours the peer's wish without plumbing it through.
    """
    close = close or bool(getattr(writer, "close_after_response", False))
    if isinstance(payload, bytes):
        body = payload
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
    writer.write(_head(status, headers, len(body), content_type, close=close))
    writer.write(body)
    await writer.drain()


class ChunkedWriter:
    """``Transfer-Encoding: chunked`` body writing for event streams."""

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        content_type: str = "application/x-ndjson",
    ) -> None:
        self._writer = writer
        self._content_type = content_type
        self._started = False
        self._closed = False

    async def start(self, status: int = 200) -> None:
        """Send the response head (idempotent)."""
        if self._started:
            return
        self._started = True
        self._writer.write(
            _head(
                status,
                {"Transfer-Encoding": "chunked", "Cache-Control": "no-store"},
                None,
                self._content_type,
            )
        )
        await self._writer.drain()

    async def send(self, payload: object) -> None:
        """One chunk — a JSON line per event, flushed immediately."""
        if not self._started:
            await self.start()
        if isinstance(payload, bytes):
            data = payload
        elif isinstance(payload, str):
            data = payload.encode("utf-8")
        else:
            data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        """The terminating zero-length chunk (idempotent)."""
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


def split_job_path(path: str) -> Tuple[Optional[str], Optional[str]]:
    """``/jobs/<id>[/<sub>]`` → ``(job_id, sub)`` (Nones when no match)."""
    parts = [part for part in path.split("/") if part]
    if len(parts) >= 2 and parts[0] == "jobs":
        job_id = parts[1]
        sub = parts[2] if len(parts) > 2 else None
        if len(parts) <= 3:
            return job_id, sub
    return None, None


__all__ = [
    "ChunkedWriter",
    "MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "read_request",
    "send_response",
    "split_job_path",
]
