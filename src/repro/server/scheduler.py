"""Admission control and latency-aware scheduling for the HTTP server.

The server splits traffic into two *classes* — ``interactive`` (small
specs that must answer in interactive time) and ``batch`` (wide sweeps
that should saturate cores) — and runs each class on its own worker
lane, so a flood of batch work can never sit in front of an interactive
request (the Polynesia HTAP recipe: one shared substrate, specialised
execution paths, no interference).  Everything in this module is plain,
lock-protected Python with no asyncio dependency, so the scheduling
policy is unit-testable without sockets or worker processes:

* :class:`WorkloadHistory` — measured level widths and wall-clock of
  prior runs, keyed by staging fingerprint (requests over the same
  example strings share a profile).  Optionally persisted as JSON under
  the store directory so a restarted server keeps its measurements.
* :func:`estimate_cost` / :func:`classify` — a priori work estimate
  from the spec and budgets, overridden by *measured* latency once the
  history has seen the same staging fingerprint.
* :func:`choose_shard_workers` — adaptive intra-query fan-out: shard
  only when recorded level widths prove the levels are wide enough to
  amortise the process fan-out (``BENCH_shard.json`` measured a 0.49×
  *slowdown* on narrow work — static gating either wastes cores or
  burns them).
* :class:`AdmissionController` — per-class concurrency bookkeeping with
  a bounded queue: past the bound a submission is *rejected* with a
  suggested Retry-After instead of growing an unbounded backlog.  Under
  *sustained* interactive saturation it additionally enters **brownout**
  — a degraded mode that sheds batch admissions outright until the
  interactive lane has been calm for a while — so a standing batch flood
  cannot keep the interactive lane pinned at its queue bound.
* :class:`LatencyTracker` — per-class p50/p99 over a sliding window,
  feeding both ``/metrics`` and the Retry-After estimate.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

#: Workload classes.
CLASS_INTERACTIVE = "interactive"
CLASS_BATCH = "batch"
CLASSES = (CLASS_INTERACTIVE, CLASS_BATCH)

#: Default classification knobs (see :func:`classify`).
DEFAULT_INTERACTIVE_THRESHOLD = 2_000_000.0
DEFAULT_LATENCY_TARGET_S = 0.5

#: Shard only when a measured level was at least this wide (candidates
#: emitted in one cost level) — below it the fan-out overhead dominates.
DEFAULT_SHARD_WIDTH_THRESHOLD = 2_000_000


# ----------------------------------------------------------------------
# Measured history
# ----------------------------------------------------------------------
@dataclass
class WorkloadProfile:
    """What prior runs over one staging fingerprint measured."""

    runs: int = 0
    max_level_width: int = 0
    last_generated: int = 0
    avg_elapsed_s: float = 0.0

    def to_json_dict(self) -> Dict[str, object]:
        """The JSON form persisted in the history file."""
        return {
            "runs": self.runs,
            "max_level_width": self.max_level_width,
            "last_generated": self.last_generated,
            "avg_elapsed_s": self.avg_elapsed_s,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "WorkloadProfile":
        return cls(
            runs=int(data.get("runs") or 0),
            max_level_width=int(data.get("max_level_width") or 0),
            last_generated=int(data.get("last_generated") or 0),
            avg_elapsed_s=float(data.get("avg_elapsed_s") or 0.0),
        )


class WorkloadHistory:
    """Per-staging-fingerprint measurements from completed jobs.

    ``record`` digests a finished :class:`~repro.core.result.
    SynthesisResult`: the per-level ``generated`` counts in
    ``extra["level_stats"]`` are the *level widths* the adaptive shard
    gate needs, and ``elapsed_seconds`` is the measured latency the
    classifier prefers over any a-priori estimate.  The history is an
    LRU bounded at ``max_entries`` profiles and (when given a path)
    persists itself as one JSON file — best-effort in both directions:
    a missing or corrupt file is an empty history, never an error.
    """

    def __init__(self, path=None, max_entries: int = 4096) -> None:
        self._lock = threading.Lock()
        self._profiles: "Dict[str, WorkloadProfile]" = {}
        self._order: deque = deque()
        self.max_entries = max_entries
        self.path = path
        if path is not None:
            self._load()

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def record(self, staging_fp: str, result) -> WorkloadProfile:
        """Fold one finished result into the fingerprint's profile."""
        level_stats = []
        if isinstance(getattr(result, "extra", None), dict):
            level_stats = result.extra.get("level_stats") or []
        width = 0
        for level in level_stats:
            try:
                width = max(width, int(level.get("generated", 0)))
            except (AttributeError, TypeError, ValueError):
                continue
        with self._lock:
            profile = self._profiles.get(staging_fp)
            if profile is None:
                profile = WorkloadProfile()
                self._profiles[staging_fp] = profile
                self._order.append(staging_fp)
                while len(self._profiles) > self.max_entries:
                    evicted = self._order.popleft()
                    self._profiles.pop(evicted, None)
            elapsed = float(getattr(result, "elapsed_seconds", 0.0) or 0.0)
            profile.avg_elapsed_s = (
                (profile.avg_elapsed_s * profile.runs + elapsed)
                / (profile.runs + 1)
            )
            profile.runs += 1
            profile.max_level_width = max(profile.max_level_width, width)
            profile.last_generated = int(getattr(result, "generated", 0) or 0)
            return profile

    def profile(self, staging_fp: str) -> Optional[WorkloadProfile]:
        """The fingerprint's measured profile, or None when unseen."""
        with self._lock:
            return self._profiles.get(staging_fp)

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        profiles = data.get("profiles") if isinstance(data, dict) else None
        if not isinstance(profiles, dict):
            return
        for key, value in profiles.items():
            if not isinstance(value, dict):
                continue
            try:
                self._profiles[str(key)] = WorkloadProfile.from_json_dict(value)
            except (TypeError, ValueError):
                continue
            self._order.append(str(key))

    def save(self) -> None:
        """Persist the profiles (best-effort, atomic)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "version": 1,
                "profiles": {
                    key: profile.to_json_dict()
                    for key, profile in self._profiles.items()
                },
            }
        from ..service.store import atomic_write_bytes

        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self.path,
                json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
            )
        except OSError:
            pass


# ----------------------------------------------------------------------
# Classification and adaptive sharding
# ----------------------------------------------------------------------
def estimate_cost(wire) -> float:
    """A-priori work estimate of a wire request, in candidate-ish units.

    Enumeration work scales with the universe (bounded by the infix
    closure of the example words, ``Σ len·(len+1)/2``) and with how far
    the sweep may run (the effective cost ceiling, dampened by any
    explicit candidate budget).  The absolute value is meaningless; only
    the ordering matters, and measured history overrides it as soon as
    the same staging fingerprint has completed once (see
    :func:`classify`).
    """
    words = set(wire.spec.all_words)
    closure_bound = sum(len(w) * (len(w) + 1) // 2 for w in words) + 1
    ceiling = wire.effective_max_cost()
    estimate = float(closure_bound) * float(ceiling) ** 2
    budget = wire.max_generated
    if budget is None:
        budget = wire.config.max_generated
    if budget is not None:
        estimate = min(estimate, float(budget) * float(closure_bound) ** 0.5)
    return estimate


def classify(
    wire,
    history: Optional[WorkloadHistory] = None,
    interactive_threshold: float = DEFAULT_INTERACTIVE_THRESHOLD,
    latency_target_s: float = DEFAULT_LATENCY_TARGET_S,
) -> str:
    """Interactive or batch, measured latency trumping the estimate.

    A fingerprint the history has seen is classified by what it actually
    cost last time (``avg_elapsed_s`` against the interactive latency
    target) — the latency-aware path.  An unseen fingerprint falls back
    to the :func:`estimate_cost` heuristic against the threshold.
    """
    if history is not None:
        profile = history.profile(wire.staging_fingerprint())
        if profile is not None and profile.runs > 0:
            return (
                CLASS_INTERACTIVE
                if profile.avg_elapsed_s <= latency_target_s
                else CLASS_BATCH
            )
    return (
        CLASS_INTERACTIVE
        if estimate_cost(wire) <= interactive_threshold
        else CLASS_BATCH
    )


def choose_shard_workers(
    wire,
    history: Optional[WorkloadHistory],
    cpu_count: int,
    max_shard_workers: int = 4,
    width_threshold: int = DEFAULT_SHARD_WIDTH_THRESHOLD,
) -> int:
    """Adaptive per-job ``shard_workers`` from recorded level widths.

    A request that already carries an explicit fan-out keeps it (the
    caller knows something we do not).  Otherwise shard only when a
    prior run over the same staging fingerprint measured a level at
    least ``width_threshold`` candidates wide — the regime where
    ``BENCH_shard.json`` shows the fan-out paying for itself — and never
    wider than the machine (or ``max_shard_workers``).
    """
    if wire.config.shard_workers > 1:
        return wire.config.shard_workers
    if history is None or max_shard_workers <= 1 or cpu_count <= 1:
        return 1
    profile = history.profile(wire.staging_fingerprint())
    if profile is None or profile.max_level_width < width_threshold:
        return 1
    return max(1, min(max_shard_workers, cpu_count))


# ----------------------------------------------------------------------
# Latency tracking
# ----------------------------------------------------------------------
class LatencyTracker:
    """Sliding-window per-class latency percentiles."""

    def __init__(self, window: int = 512) -> None:
        self._lock = threading.Lock()
        self._samples: Dict[str, deque] = {
            klass: deque(maxlen=window) for klass in CLASSES
        }
        self._counts: Dict[str, int] = {klass: 0 for klass in CLASSES}

    def record(self, klass: str, seconds: float) -> None:
        """Add one completion latency to ``klass``'s sliding window."""
        with self._lock:
            self._samples.setdefault(klass, deque(maxlen=512)).append(
                float(seconds)
            )
            self._counts[klass] = self._counts.get(klass, 0) + 1

    def count(self, klass: str) -> int:
        """Total completions ever recorded for ``klass``."""
        with self._lock:
            return self._counts.get(klass, 0)

    def percentile(self, klass: str, q: float) -> Optional[float]:
        """The windowed ``q``-quantile (0..1), or None with no samples."""
        with self._lock:
            samples = sorted(self._samples.get(klass, ()))
        if not samples:
            return None
        index = min(len(samples) - 1, max(0, math.ceil(q * len(samples)) - 1))
        return samples[index]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{class: {p50, p99, count}}`` for metrics and health."""
        out: Dict[str, Dict[str, float]] = {}
        for klass in CLASSES:
            p50 = self.percentile(klass, 0.50)
            p99 = self.percentile(klass, 0.99)
            out[klass] = {
                "p50_s": p50 if p50 is not None else 0.0,
                "p99_s": p99 if p99 is not None else 0.0,
                "count": self.count(klass),
            }
        return out


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Admission:
    """The verdict on one submission."""

    admitted: bool
    klass: str
    retry_after_s: Optional[float] = None
    reason: Optional[str] = None


class AdmissionController:
    """Bounded per-class admission over the lanes' live-job counts.

    ``slots`` is a class's concurrency quota (its lane's
    ``workers × depth`` — jobs past it queue inside the lane), and
    ``max_queue`` bounds that queue: a submission that would make the
    class's backlog exceed ``slots + max_queue`` is *rejected* so
    overload degrades to fast 429s instead of an unbounded queue whose
    every entry times out.  The suggested Retry-After is the backlog
    drained at the class's measured p50 (1s floor when unmeasured).

    **Brownout.**  When the interactive lane has been *saturated*
    (``live >= slots``) continuously for ``brownout_enter_after_s``,
    the controller enters brownout: batch submissions are shed with
    ``reason="brownout"`` regardless of batch capacity, while
    interactive admissions keep their normal bounds.  Brownout exits
    after the interactive lane has been below saturation continuously
    for ``brownout_exit_after_s`` (hysteresis, so the mode does not
    flap on a single completion).  The clock is injectable for tests.
    """

    def __init__(
        self,
        slots: Dict[str, int],
        max_queue: Dict[str, int],
        latency: Optional[LatencyTracker] = None,
        brownout_enter_after_s: float = 2.0,
        brownout_exit_after_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.slots = dict(slots)
        self.max_queue = dict(max_queue)
        self.latency = latency if latency is not None else LatencyTracker()
        self._lock = threading.Lock()
        self._live: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self.rejected: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self.brownout_enter_after_s = float(brownout_enter_after_s)
        self.brownout_exit_after_s = float(brownout_exit_after_s)
        self._clock = clock
        self.brownout_active = False
        self.brownout_rejections = 0
        self._saturated_since: Optional[float] = None
        self._calm_since: Optional[float] = None

    def live(self, klass: str) -> int:
        """Jobs currently admitted (queued or running) in ``klass``."""
        with self._lock:
            return self._live.get(klass, 0)

    # -- brownout state machine ---------------------------------------
    def _saturated_locked(self) -> bool:
        slots = max(1, self.slots.get(CLASS_INTERACTIVE, 1))
        return self._live.get(CLASS_INTERACTIVE, 0) >= slots

    def _update_brownout_locked(self, now: float) -> None:
        if self._saturated_locked():
            self._calm_since = None
            if self._saturated_since is None:
                self._saturated_since = now
            if (
                not self.brownout_active
                and now - self._saturated_since >= self.brownout_enter_after_s
            ):
                self.brownout_active = True
        else:
            self._saturated_since = None
            if self._calm_since is None:
                self._calm_since = now
            if (
                self.brownout_active
                and now - self._calm_since >= self.brownout_exit_after_s
            ):
                self.brownout_active = False

    def interactive_saturated(self) -> bool:
        """Is the interactive lane at (or past) its concurrency quota?"""
        with self._lock:
            return self._saturated_locked()

    def try_admit(self, klass: str) -> Admission:
        """Admit (and count) one job, or reject with a Retry-After."""
        capacity = self.slots.get(klass, 1) + self.max_queue.get(klass, 0)
        now = self._clock()
        with self._lock:
            self._update_brownout_locked(now)
            if klass == CLASS_BATCH and self.brownout_active:
                self.brownout_rejections += 1
                self.rejected[klass] = self.rejected.get(klass, 0) + 1
                return Admission(
                    admitted=False,
                    klass=klass,
                    retry_after_s=max(1.0, self.brownout_exit_after_s),
                    reason="brownout",
                )
            live = self._live.get(klass, 0)
            if live >= capacity:
                self.rejected[klass] = self.rejected.get(klass, 0) + 1
                queued = max(0, live - self.slots.get(klass, 1))
                return Admission(
                    admitted=False,
                    klass=klass,
                    retry_after_s=self.retry_after(klass, queued),
                    reason="%s queue full (%d live, capacity %d)"
                    % (klass, live, capacity),
                )
            self._live[klass] = live + 1
            self._update_brownout_locked(now)
        return Admission(admitted=True, klass=klass)

    def release(self, klass: str) -> None:
        """One admitted job finished (any terminal state)."""
        with self._lock:
            self._live[klass] = max(0, self._live.get(klass, 0) - 1)
            self._update_brownout_locked(self._clock())

    def retry_after(self, klass: str, queued: int) -> float:
        """Seconds until the class's backlog plausibly has room."""
        p50 = self.latency.percentile(klass, 0.50)
        if p50 is None or p50 <= 0.0:
            p50 = 1.0
        slots = max(1, self.slots.get(klass, 1))
        return max(1.0, math.ceil(queued * p50 / slots))

    def depth_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-class live counts against the configured bounds."""
        with self._lock:
            return {
                klass: {
                    "live": self._live.get(klass, 0),
                    "slots": self.slots.get(klass, 0),
                    "max_queue": self.max_queue.get(klass, 0),
                    "rejected": self.rejected.get(klass, 0),
                }
                for klass in CLASSES
            }

    def brownout_snapshot(self) -> Dict[str, object]:
        """Brownout mode state for ``/metrics`` and ``/healthz``."""
        with self._lock:
            self._update_brownout_locked(self._clock())
            return {
                "active": self.brownout_active,
                "rejections": self.brownout_rejections,
            }


__all__ = [
    "Admission",
    "AdmissionController",
    "CLASS_BATCH",
    "CLASS_INTERACTIVE",
    "CLASSES",
    "DEFAULT_INTERACTIVE_THRESHOLD",
    "DEFAULT_LATENCY_TARGET_S",
    "DEFAULT_SHARD_WIDTH_THRESHOLD",
    "LatencyTracker",
    "WorkloadHistory",
    "WorkloadProfile",
    "choose_shard_workers",
    "classify",
    "estimate_cost",
]
