"""A recursive-descent parser for the paper's regular expression syntax.

The accepted grammar (loosest to tightest binding)::

    union   ::= concat ('+' concat | '|' concat)*
    concat  ::= postfix postfix*
    postfix ::= atom ('*' | '?')*
    atom    ::= 'ε' | '∅' | '(' union ')' | literal

Any character other than the specials ``( ) + | * ?`` (and whitespace,
which is ignored) is a literal; specials can be escaped with a backslash.
``|`` is accepted as a synonym for ``+`` for convenience.  The parser and
:func:`repro.regex.printer.to_string` round-trip:
``parse(to_string(r))`` is structurally equal to ``r`` for every regex
``r`` without holes.
"""

from __future__ import annotations

from typing import List, Tuple

from .ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    HOLE,
    Question,
    Regex,
    Star,
    Union,
)

_SPECIALS = frozenset("()+|*?")


class RegexSyntaxError(ValueError):
    """Raised when the input is not a well-formed regular expression."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__("%s (at position %d)" % (message, position))
        self.position = position


def parse(text: str) -> Regex:
    """Parse ``text`` into a :class:`~repro.regex.ast.Regex`.

    Raises :class:`RegexSyntaxError` on malformed input.
    """
    tokens = _tokenize(text)
    parser = _Parser(tokens)
    regex = parser.parse_union()
    parser.expect_end()
    return regex


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    """Produce ``(kind, value, position)`` tokens.

    Kinds: ``op`` for specials, ``lit`` for literal characters (escape
    sequences already resolved), ``eps``, ``empty`` and ``hole``.
    """
    tokens: List[Tuple[str, str, int]] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "\\":
            if i + 1 >= len(text):
                raise RegexSyntaxError("dangling escape", i)
            tokens.append(("lit", text[i + 1], i))
            i += 2
            continue
        if ch in _SPECIALS:
            tokens.append(("op", "+" if ch == "|" else ch, i))
        elif ch == "ε":
            tokens.append(("eps", ch, i))
        elif ch == "∅":
            tokens.append(("empty", ch, i))
        elif ch == "□":
            tokens.append(("hole", ch, i))
        else:
            tokens.append(("lit", ch, i))
        i += 1
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str, int]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Tuple[str, str, int]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return ("end", "", self._tokens[-1][2] + 1 if self._tokens else 0)

    def _advance(self) -> Tuple[str, str, int]:
        token = self._peek()
        self._pos += 1
        return token

    def expect_end(self) -> None:
        kind, value, position = self._peek()
        if kind != "end":
            raise RegexSyntaxError("unexpected %r" % value, position)

    def parse_union(self) -> Regex:
        left = self.parse_concat()
        while True:
            kind, value, _ = self._peek()
            if kind == "op" and value == "+":
                self._advance()
                left = Union(left, self.parse_concat())
            else:
                return left

    def parse_concat(self) -> Regex:
        left = self.parse_postfix()
        while True:
            kind, value, _ = self._peek()
            if kind in ("lit", "eps", "empty", "hole") or (
                kind == "op" and value == "("
            ):
                left = Concat(left, self.parse_postfix())
            else:
                return left

    def parse_postfix(self) -> Regex:
        atom = self.parse_atom()
        while True:
            kind, value, _ = self._peek()
            if kind == "op" and value == "*":
                self._advance()
                atom = Star(atom)
            elif kind == "op" and value == "?":
                self._advance()
                atom = Question(atom)
            else:
                return atom

    def parse_atom(self) -> Regex:
        kind, value, position = self._advance()
        if kind == "lit":
            return Char(value)
        if kind == "eps":
            return EPSILON
        if kind == "empty":
            return EMPTY
        if kind == "hole":
            return HOLE
        if kind == "op" and value == "(":
            inner = self.parse_union()
            kind, value, position = self._advance()
            if kind != "op" or value != ")":
                raise RegexSyntaxError("expected ')'", position)
            return inner
        if kind == "end":
            raise RegexSyntaxError("unexpected end of input", position)
        raise RegexSyntaxError("unexpected %r" % value, position)
