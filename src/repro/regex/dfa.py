"""Deterministic finite automata: subset construction, Hopcroft
minimisation, products, equivalence, and bounded language enumeration.

This module is verification substrate (see :mod:`repro.regex.nfa`).  The
benchmark suites also use :func:`enumerate_words` / :func:`DFA.accepts` to
generate deterministic labelled example sets from ground-truth predicates.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .ast import Regex
from . import nfa as nfa_mod


@dataclass
class DFA:
    """A complete DFA over ``alphabet``.

    States are ``0..n_states-1``; ``transitions[state][symbol]`` is total
    (a sink state is materialised where needed).
    """

    alphabet: Tuple[str, ...]
    n_states: int
    start: int
    accepting: FrozenSet[int]
    transitions: Tuple[Dict[str, int], ...]

    def accepts(self, word: str) -> bool:
        """Decide ``word ∈ Lang(self)``."""
        state = self.start
        for symbol in word:
            row = self.transitions[state]
            if symbol not in row:
                return False
            state = row[symbol]
        return state in self.accepting

    def is_empty(self) -> bool:
        """True iff the DFA accepts no word at all."""
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                return False
            for successor in self.transitions[state].values():
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return True

    def complement(self) -> "DFA":
        """The DFA for the complement language (same alphabet)."""
        return DFA(
            alphabet=self.alphabet,
            n_states=self.n_states,
            start=self.start,
            accepting=frozenset(range(self.n_states)) - self.accepting,
            transitions=self.transitions,
        )


def from_nfa(nfa: nfa_mod.NFA, alphabet: Optional[Iterable[str]] = None) -> DFA:
    """Determinise ``nfa`` by subset construction over ``alphabet``.

    If ``alphabet`` is omitted, the NFA's own transition alphabet is used.
    The result is complete: missing moves go to a dead state.
    """
    symbols = tuple(sorted(set(alphabet) if alphabet is not None else nfa.alphabet))
    start_set = nfa.epsilon_closure({nfa.start})
    index: Dict[FrozenSet[int], int] = {start_set: 0}
    rows: List[Dict[str, int]] = [{}]
    order: List[FrozenSet[int]] = [start_set]
    queue = deque([start_set])
    while queue:
        current = queue.popleft()
        row = rows[index[current]]
        for symbol in symbols:
            successor = nfa.step(current, symbol)
            if successor not in index:
                index[successor] = len(order)
                order.append(successor)
                rows.append({})
                queue.append(successor)
            row[symbol] = index[successor]
    accepting = frozenset(
        index[subset] for subset in order if nfa.accept in subset
    )
    return DFA(
        alphabet=symbols,
        n_states=len(order),
        start=0,
        accepting=accepting,
        transitions=tuple(rows),
    )


def from_regex(regex: Regex, alphabet: Optional[Iterable[str]] = None) -> DFA:
    """Compile ``regex`` to a complete DFA (via Thompson + subset)."""
    return from_nfa(nfa_mod.from_regex(regex), alphabet=alphabet)


def minimize(dfa: DFA) -> DFA:
    """Hopcroft's partition-refinement minimisation.

    Unreachable states are removed first; the result is the unique (up to
    isomorphism) minimal complete DFA for the language.
    """
    reachable: Set[int] = {dfa.start}
    queue = deque([dfa.start])
    while queue:
        state = queue.popleft()
        for successor in dfa.transitions[state].values():
            if successor not in reachable:
                reachable.add(successor)
                queue.append(successor)
    states = sorted(reachable)
    remap = {state: i for i, state in enumerate(states)}
    transitions = [
        {symbol: remap[dfa.transitions[state][symbol]] for symbol in dfa.alphabet}
        for state in states
    ]
    accepting = {remap[s] for s in dfa.accepting if s in reachable}
    n = len(states)

    # Hopcroft refinement.
    partition: List[Set[int]] = []
    accept_block = set(accepting)
    reject_block = set(range(n)) - accept_block
    for block in (accept_block, reject_block):
        if block:
            partition.append(block)
    worklist: List[Set[int]] = [set(block) for block in partition]
    # Precompute inverse transitions.
    inverse: Dict[Tuple[str, int], Set[int]] = {}
    for state in range(n):
        for symbol, successor in transitions[state].items():
            inverse.setdefault((symbol, successor), set()).add(state)
    while worklist:
        splitter = worklist.pop()
        for symbol in dfa.alphabet:
            predecessors: Set[int] = set()
            for target in splitter:
                predecessors.update(inverse.get((symbol, target), ()))
            if not predecessors:
                continue
            next_partition: List[Set[int]] = []
            for block in partition:
                inside = block & predecessors
                outside = block - predecessors
                if inside and outside:
                    next_partition.append(inside)
                    next_partition.append(outside)
                    if block in worklist:
                        worklist.remove(block)
                        worklist.append(inside)
                        worklist.append(outside)
                    else:
                        worklist.append(inside if len(inside) <= len(outside) else outside)
                else:
                    next_partition.append(block)
            partition = next_partition
    block_of: Dict[int, int] = {}
    for block_index, block in enumerate(partition):
        for state in block:
            block_of[state] = block_index
    new_transitions = []
    for block in partition:
        representative = next(iter(block))
        new_transitions.append(
            {
                symbol: block_of[transitions[representative][symbol]]
                for symbol in dfa.alphabet
            }
        )
    return DFA(
        alphabet=dfa.alphabet,
        n_states=len(partition),
        start=block_of[remap[dfa.start]],
        accepting=frozenset(
            block_index
            for block_index, block in enumerate(partition)
            if next(iter(block)) in accepting
        ),
        transitions=tuple(new_transitions),
    )


def product(left: DFA, right: DFA, mode: str) -> DFA:
    """Product construction; ``mode`` is ``and``, ``or`` or ``diff``."""
    if left.alphabet != right.alphabet:
        symbols = tuple(sorted(set(left.alphabet) | set(right.alphabet)))
        raise ValueError(
            "product requires identical alphabets; rebuild both DFAs over %r"
            % (symbols,)
        )
    index: Dict[Tuple[int, int], int] = {}
    rows: List[Dict[str, int]] = []
    order: List[Tuple[int, int]] = []

    def intern(pair: Tuple[int, int]) -> int:
        if pair not in index:
            index[pair] = len(order)
            order.append(pair)
            rows.append({})
        return index[pair]

    start = intern((left.start, right.start))
    queue = deque([(left.start, right.start)])
    seen = {(left.start, right.start)}
    while queue:
        l_state, r_state = queue.popleft()
        row = rows[index[(l_state, r_state)]]
        for symbol in left.alphabet:
            pair = (
                left.transitions[l_state][symbol],
                right.transitions[r_state][symbol],
            )
            row[symbol] = intern(pair)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    accepting = set()
    for pair, state in index.items():
        in_left = pair[0] in left.accepting
        in_right = pair[1] in right.accepting
        if mode == "and":
            good = in_left and in_right
        elif mode == "or":
            good = in_left or in_right
        elif mode == "diff":
            good = in_left and not in_right
        else:
            raise ValueError("unknown product mode %r" % (mode,))
        if good:
            accepting.add(state)
    return DFA(
        alphabet=left.alphabet,
        n_states=len(order),
        start=start,
        accepting=frozenset(accepting),
        transitions=tuple(rows),
    )


def equivalent(left: DFA, right: DFA) -> bool:
    """Language equality via emptiness of both difference products."""
    return product(left, right, "diff").is_empty() and product(
        right, left, "diff"
    ).is_empty()


def regex_equivalent(a: Regex, b: Regex, alphabet: Iterable[str]) -> bool:
    """Language equality of two regexes over a shared alphabet."""
    symbols = tuple(sorted(alphabet))
    return equivalent(from_regex(a, symbols), from_regex(b, symbols))


def enumerate_words(
    dfa: DFA, max_length: int, accepted: bool = True
) -> Iterator[str]:
    """Yield all words of length ≤ ``max_length`` accepted (or rejected,
    with ``accepted=False``) by ``dfa``, in shortlex order."""
    for length in range(max_length + 1):
        for letters in itertools.product(dfa.alphabet, repeat=length):
            word = "".join(letters)
            if dfa.accepts(word) == accepted:
                yield word
