"""Abstract syntax trees for regular expressions (Def. 2.7 of the paper).

The grammar is::

    r ::= ∅ | ε | a | r·r | r + r | r* | r?

``r?`` is kept as a first-class constructor (rather than sugar for
``ε + r``) because the paper's cost homomorphisms assign it its own cost
``c2``, and the Paresy search enumerates it as a separate outermost
constructor.

A ``Hole`` node is also provided: it never appears in synthesis output, but
is the partial-expression placeholder used by the AlphaRegex baseline
(:mod:`repro.baselines.alpharegex`).

All nodes are immutable, hashable dataclasses, so they can be used as
dictionary keys (memoised derivatives, visited sets, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


class Regex:
    """Base class of all regular expression nodes.

    Instances are immutable; structural equality and hashing are inherited
    from the frozen dataclass machinery of the concrete subclasses.
    """

    __slots__ = ()

    def __mul__(self, other: "Regex") -> "Regex":
        """``r * s`` builds the concatenation ``r·s``."""
        return Concat(self, _as_regex(other))

    def __add__(self, other: "Regex") -> "Regex":
        """``r + s`` builds the union ``r + s``."""
        return Union(self, _as_regex(other))

    def star(self) -> "Regex":
        """Return the Kleene star ``r*``."""
        return Star(self)

    def opt(self) -> "Regex":
        """Return the option ``r?`` (same language as ``ε + r``)."""
        return Question(self)

    def __reduce__(self):
        """Pickle via the constructor.

        The nodes are frozen *slots* dataclasses, so the default
        state-based pickling would ``setattr`` onto a frozen instance and
        raise; rebuilding through ``__init__`` keeps results picklable —
        a requirement of the multi-process service layer.
        """
        from dataclasses import fields

        return (type(self), tuple(getattr(self, f.name) for f in fields(self)))

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from .printer import to_string

        return to_string(self)


@dataclass(frozen=True)
class Empty(Regex):
    """The regular expression ``∅`` denoting the empty language."""

    __slots__ = ()


@dataclass(frozen=True)
class Epsilon(Regex):
    """The regular expression ``ε`` denoting the language ``{ε}``."""

    __slots__ = ()


@dataclass(frozen=True)
class Char(Regex):
    """A single-character literal ``a`` for ``a ∈ Σ``.

    ``symbol`` is a one-character string; arbitrary alphabets are supported
    because any hashable single character works.
    """

    symbol: str

    __slots__ = ("symbol",)

    def __post_init__(self) -> None:
        if not isinstance(self.symbol, str) or len(self.symbol) != 1:
            raise ValueError(
                "Char expects a single-character string, got %r" % (self.symbol,)
            )


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation ``left · right``."""

    left: Regex
    right: Regex

    __slots__ = ("left", "right")


@dataclass(frozen=True)
class Union(Regex):
    """Union (disjunction) ``left + right``."""

    left: Regex
    right: Regex

    __slots__ = ("left", "right")


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star ``inner*``."""

    inner: Regex

    __slots__ = ("inner",)


@dataclass(frozen=True)
class Question(Regex):
    """Option ``inner?``, denoting ``{ε} ∪ Lang(inner)``."""

    inner: Regex

    __slots__ = ("inner",)


@dataclass(frozen=True)
class Hole(Regex):
    """A synthesis hole ``□`` (AlphaRegex partial expressions only)."""

    __slots__ = ()


#: Shared singletons for the nullary constructors.
EMPTY = Empty()
EPSILON = Epsilon()
HOLE = Hole()


def _as_regex(value: object) -> Regex:
    if isinstance(value, Regex):
        return value
    raise TypeError("expected a Regex, got %r" % (value,))


def literal(word: str) -> Regex:
    """Return a regex whose language is exactly ``{word}``.

    ``literal("")`` is ``ε``; longer words become left-nested
    concatenations of :class:`Char` nodes.
    """
    if not word:
        return EPSILON
    result: Regex = Char(word[0])
    for ch in word[1:]:
        result = Concat(result, Char(ch))
    return result


def union_all(parts: Sequence[Regex]) -> Regex:
    """Union of ``parts`` (left-nested); ``∅`` for the empty sequence."""
    if not parts:
        return EMPTY
    result = parts[0]
    for part in parts[1:]:
        result = Union(result, part)
    return result


def concat_all(parts: Sequence[Regex]) -> Regex:
    """Concatenation of ``parts`` (left-nested); ``ε`` for the empty one."""
    if not parts:
        return EPSILON
    result = parts[0]
    for part in parts[1:]:
        result = Concat(result, part)
    return result


def subterms(regex: Regex) -> Iterator[Regex]:
    """Yield ``regex`` and all of its subterms, pre-order."""
    stack = [regex]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (Concat, Union)):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, (Star, Question)):
            stack.append(node.inner)


def size(regex: Regex) -> int:
    """Number of AST nodes in ``regex``."""
    return sum(1 for _ in subterms(regex))


def depth(regex: Regex) -> int:
    """Height of the AST (a lone atom has depth 1)."""
    if isinstance(regex, (Concat, Union)):
        return 1 + max(depth(regex.left), depth(regex.right))
    if isinstance(regex, (Star, Question)):
        return 1 + depth(regex.inner)
    return 1


def alphabet_of(regex: Regex) -> frozenset:
    """The set of characters mentioned in ``regex``."""
    return frozenset(
        node.symbol for node in subterms(regex) if isinstance(node, Char)
    )


def has_hole(regex: Regex) -> bool:
    """True iff ``regex`` contains a :class:`Hole` (is a partial regex)."""
    return any(isinstance(node, Hole) for node in subterms(regex))


def count_holes(regex: Regex) -> int:
    """Number of :class:`Hole` nodes in ``regex``."""
    return sum(1 for node in subterms(regex) if isinstance(node, Hole))
