"""Brzozowski-derivative matching: the reference contains-check.

The paper distinguishes REI from the *contains-check* (§5.1): given a
regular expression ``r`` and a string ``w``, decide ``w ∈ Lang(r)``.  The
synthesiser itself never calls a matcher (languages are manipulated as
characteristic sequences), but a trustworthy matcher is needed

* to verify synthesis results in tests,
* by the AlphaRegex baseline, whose pruning requires many contains-checks,
* by the benchmark suites to generate labelled examples.

Brzozowski derivatives work for arbitrary alphabets with no automaton
construction: ``w ∈ Lang(r)`` iff ``nullable(d_{w_n}(... d_{w_1}(r)))``.
Smart constructors keep intermediate terms small.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from .ast import Char, Concat, EMPTY, Empty, Epsilon, Question, Regex, Star, Union
from .simplify import is_nullable, smart_concat, smart_star, smart_union

nullable = is_nullable


@lru_cache(maxsize=65536)
def derivative(regex: Regex, symbol: str) -> Regex:
    """The Brzozowski derivative ``d_symbol(regex)``.

    ``Lang(d_a(r)) = { w | a·w ∈ Lang(r) }``.
    """
    if isinstance(regex, (Empty, Epsilon)):
        return EMPTY
    if isinstance(regex, Char):
        from .ast import EPSILON

        return EPSILON if regex.symbol == symbol else EMPTY
    if isinstance(regex, Union):
        return smart_union(derivative(regex.left, symbol), derivative(regex.right, symbol))
    if isinstance(regex, Concat):
        first = smart_concat(derivative(regex.left, symbol), regex.right)
        if is_nullable(regex.left):
            return smart_union(first, derivative(regex.right, symbol))
        return first
    if isinstance(regex, Star):
        return smart_concat(derivative(regex.inner, symbol), smart_star(regex.inner))
    if isinstance(regex, Question):
        return derivative(regex.inner, symbol)
    raise TypeError("cannot take the derivative of %r" % (regex,))


def word_derivative(regex: Regex, word: Iterable[str]) -> Regex:
    """Iterated derivative ``d_w(regex)`` for a whole word."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
        if isinstance(current, Empty):
            return EMPTY
    return current


def matches(regex: Regex, word: str) -> bool:
    """Decide ``word ∈ Lang(regex)`` (the contains-check)."""
    return is_nullable(word_derivative(regex, word))


def satisfies(regex: Regex, positives: Iterable[str], negatives: Iterable[str]) -> bool:
    """Decide ``r |= (P, N)`` (Def. 3.1): accepts all of ``positives`` and
    rejects all of ``negatives``."""
    return all(matches(regex, word) for word in positives) and not any(
        matches(regex, word) for word in negatives
    )
