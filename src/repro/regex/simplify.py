"""Smart constructors and light algebraic simplification.

Brzozowski derivatives (see :mod:`repro.regex.derivatives`) only terminate
with a finite state space when terms are kept in a normal form; the smart
constructors below apply exactly the local identities needed for that,
plus a handful of extra language-preserving rewrites:

* ``∅ + r = r``, ``r + r = r``, associativity/commutativity normalisation
* ``∅ · r = ∅ = r · ∅``, ``ε · r = r = r · ε``
* ``∅* = ε* = ε``, ``(r*)* = r*``, ``(r?)* = r*``
* ``∅? = ε? = ε``, ``(r?)? = r?``, ``r? = r`` when ``r`` is nullable

All functions preserve the denoted language exactly.
"""

from __future__ import annotations

from typing import List

from .ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    Empty,
    Epsilon,
    Question,
    Regex,
    Star,
    Union,
)


def is_nullable(regex: Regex) -> bool:
    """True iff ``ε ∈ Lang(regex)``."""
    if isinstance(regex, (Epsilon, Star, Question)):
        return True
    if isinstance(regex, (Empty, Char)):
        return False
    if isinstance(regex, Concat):
        return is_nullable(regex.left) and is_nullable(regex.right)
    if isinstance(regex, Union):
        return is_nullable(regex.left) or is_nullable(regex.right)
    raise TypeError("unknown regex node %r" % (regex,))


def _union_parts(regex: Regex, out: List[Regex]) -> None:
    if isinstance(regex, Union):
        _union_parts(regex.left, out)
        _union_parts(regex.right, out)
    else:
        out.append(regex)


def smart_union(left: Regex, right: Regex) -> Regex:
    """Language-preserving union with flattening, dedup and ordering."""
    parts: List[Regex] = []
    _union_parts(left, parts)
    _union_parts(right, parts)
    seen = set()
    unique: List[Regex] = []
    for part in parts:
        if isinstance(part, Empty):
            continue
        if part not in seen:
            seen.add(part)
            unique.append(part)
    if not unique:
        return EMPTY
    unique.sort(key=repr)
    result = unique[0]
    for part in unique[1:]:
        result = Union(result, part)
    return result


def smart_concat(left: Regex, right: Regex) -> Regex:
    """Language-preserving concatenation with unit/annihilator rules."""
    if isinstance(left, Empty) or isinstance(right, Empty):
        return EMPTY
    if isinstance(left, Epsilon):
        return right
    if isinstance(right, Epsilon):
        return left
    return Concat(left, right)


def smart_star(inner: Regex) -> Regex:
    """Language-preserving Kleene star with idempotence rules."""
    if isinstance(inner, (Empty, Epsilon)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Question):
        return smart_star(inner.inner)
    return Star(inner)


def smart_question(inner: Regex) -> Regex:
    """Language-preserving option with nullability rules."""
    if isinstance(inner, (Empty, Epsilon)):
        return EPSILON
    if is_nullable(inner):
        return inner
    return Question(inner)


def left_associate(regex: Regex) -> Regex:
    """Re-associate nested unions and concatenations to the left.

    Preserves the denoted language, the operand order *and* the cost
    under every cost homomorphism (both constructors contribute a fixed
    per-node increment, so tree shape does not matter).  This is the
    normal form the parser produces, which makes
    ``parse(to_string(r)) == left_associate(r)`` hold for every regex.
    """
    if isinstance(regex, Union):
        parts: List[Regex] = []
        _flatten(regex, Union, parts)
        parts = [left_associate(p) for p in parts]
        result = parts[0]
        for part in parts[1:]:
            result = Union(result, part)
        return result
    if isinstance(regex, Concat):
        parts = []
        _flatten(regex, Concat, parts)
        parts = [left_associate(p) for p in parts]
        result = parts[0]
        for part in parts[1:]:
            result = Concat(result, part)
        return result
    if isinstance(regex, Star):
        return Star(left_associate(regex.inner))
    if isinstance(regex, Question):
        return Question(left_associate(regex.inner))
    return regex


def _flatten(regex: Regex, node_type: type, out: List[Regex]) -> None:
    if isinstance(regex, node_type):
        _flatten(regex.left, node_type, out)
        _flatten(regex.right, node_type, out)
    else:
        out.append(regex)


def simplify(regex: Regex) -> Regex:
    """Recursively rebuild ``regex`` through the smart constructors.

    The result denotes the same language and is never larger than a
    constant factor of the input; it is *not* guaranteed to be minimal.
    """
    if isinstance(regex, (Empty, Epsilon, Char)):
        return regex
    if isinstance(regex, Union):
        return smart_union(simplify(regex.left), simplify(regex.right))
    if isinstance(regex, Concat):
        return smart_concat(simplify(regex.left), simplify(regex.right))
    if isinstance(regex, Star):
        return smart_star(simplify(regex.inner))
    if isinstance(regex, Question):
        return smart_question(simplify(regex.inner))
    raise TypeError("unknown regex node %r" % (regex,))
