"""Bit-parallel contains-checking (Glushkov + Shift-And).

The paper (§5.1) carefully distinguishes REI from the *contains-check*
(`w ∈ Lang(r)`), and surveys its GPU/bit-level acceleration (INFAnt,
Zu et al., ...).  This module provides that substrate in the same
bitvector spirit as the synthesiser:

* the **Glushkov (position) automaton** of a regular expression — one
  state per character occurrence, no ε-transitions, so a state *set* is
  one machine-word bitmask for expressions with up to 64 positions (and
  a Python int beyond that);
* a **Shift-And style matcher** that advances a whole state set per
  input character with a handful of bitwise operations, memoising the
  (state-set, character) transitions it actually visits — a lazily
  materialised DFA over bitmasks.

It is cross-validated against the Brzozowski-derivative matcher and the
Thompson/subset pipeline by the test-suite, giving the project three
independent contains-check implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .ast import (
    Char,
    Concat,
    Empty,
    Epsilon,
    Question,
    Regex,
    Star,
    Union,
)


@dataclass
class _Fragment:
    nullable: bool
    first: int   # bitmask of positions that can start a match
    last: int    # bitmask of positions that can end a match


class GlushkovAutomaton:
    """The position automaton of a regular expression.

    ``symbols[i]`` is the character of position ``i`` (0-based);
    ``follow[i]`` is the bitmask of positions that may come right after
    position ``i``; ``first``/``last`` are bitmasks; ``nullable`` tells
    whether ``ε`` is accepted.
    """

    __slots__ = ("n_positions", "symbols", "first", "last", "follow",
                 "nullable", "char_masks", "_transitions")

    def __init__(self, regex: Regex) -> None:
        self.symbols: List[str] = []
        self.follow: List[int] = []
        fragment = self._build(regex)
        self.n_positions = len(self.symbols)
        self.first = fragment.first
        self.last = fragment.last
        self.nullable = fragment.nullable
        self.char_masks: Dict[str, int] = {}
        for index, symbol in enumerate(self.symbols):
            self.char_masks[symbol] = self.char_masks.get(symbol, 0) | (1 << index)
        self._transitions: Dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    def _new_position(self, symbol: str) -> int:
        self.symbols.append(symbol)
        self.follow.append(0)
        return len(self.symbols) - 1

    def _add_follow(self, sources: int, targets: int) -> None:
        index = 0
        while sources:
            if sources & 1:
                self.follow[index] |= targets
            sources >>= 1
            index += 1

    def _build(self, node: Regex) -> _Fragment:
        if isinstance(node, Empty):
            return _Fragment(nullable=False, first=0, last=0)
        if isinstance(node, Epsilon):
            return _Fragment(nullable=True, first=0, last=0)
        if isinstance(node, Char):
            bit = 1 << self._new_position(node.symbol)
            return _Fragment(nullable=False, first=bit, last=bit)
        if isinstance(node, Union):
            left = self._build(node.left)
            right = self._build(node.right)
            return _Fragment(
                nullable=left.nullable or right.nullable,
                first=left.first | right.first,
                last=left.last | right.last,
            )
        if isinstance(node, Concat):
            left = self._build(node.left)
            right = self._build(node.right)
            self._add_follow(left.last, right.first)
            return _Fragment(
                nullable=left.nullable and right.nullable,
                first=left.first | (right.first if left.nullable else 0),
                last=right.last | (left.last if right.nullable else 0),
            )
        if isinstance(node, Star):
            inner = self._build(node.inner)
            self._add_follow(inner.last, inner.first)
            return _Fragment(nullable=True, first=inner.first, last=inner.last)
        if isinstance(node, Question):
            inner = self._build(node.inner)
            return _Fragment(nullable=True, first=inner.first, last=inner.last)
        raise TypeError("cannot build a Glushkov automaton from %r" % (node,))

    # ------------------------------------------------------------------
    def step(self, states: int, symbol: str) -> int:
        """One Shift-And step: the successor state-set bitmask.

        Transitions are memoised per ``(states, symbol)``, so repeated
        matching against the same automaton converges to table lookups —
        a lazily materialised DFA over bitmasks.
        """
        mask = self.char_masks.get(symbol)
        if mask is None:
            return 0
        key = (states, symbol)
        cached = self._transitions.get(key)
        if cached is not None:
            return cached
        reachable = 0
        remaining = states
        index = 0
        while remaining:
            if remaining & 1:
                reachable |= self.follow[index]
            remaining >>= 1
            index += 1
        result = reachable & mask
        self._transitions[key] = result
        return result

    def accepts(self, word: str) -> bool:
        """Decide ``word ∈ Lang(r)`` bit-parallel."""
        if not word:
            return self.nullable
        states = self.first & self.char_masks.get(word[0], 0)
        for symbol in word[1:]:
            if not states:
                return False
            states = self.step(states, symbol)
        return bool(states & self.last)

    def count_states_visited(self) -> int:
        """Number of distinct memoised transitions (observability)."""
        return len(self._transitions)


def compile_pattern(regex: Regex) -> GlushkovAutomaton:
    """Compile a regex into its Glushkov automaton."""
    return GlushkovAutomaton(regex)


def bitparallel_matches(regex: Regex, word: str) -> bool:
    """One-shot bit-parallel contains-check."""
    return GlushkovAutomaton(regex).accepts(word)


def find_all(regex: Regex, text: str) -> List[Tuple[int, int]]:
    """All substring matches ``(start, end)`` of ``regex`` in ``text``.

    The information-extraction operation the paper's §5.1 calls
    ``extract(r, w)``: every ``(i, j)`` with ``text[i:j] ∈ Lang(r)``.
    Quadratic scan with early bitmask death; fine for the example- and
    test-scale texts this substrate serves.
    """
    automaton = GlushkovAutomaton(regex)
    matches: List[Tuple[int, int]] = []
    for start in range(len(text) + 1):
        if automaton.nullable:
            matches.append((start, start))
        if start == len(text):
            break
        states = automaton.first & automaton.char_masks.get(text[start], 0)
        end = start + 1
        if states & automaton.last:
            matches.append((start, end))
        while states and end < len(text):
            states = automaton.step(states, text[end])
            end += 1
            if states & automaton.last:
                matches.append((start, end))
    return matches
