"""Thompson-construction NFAs.

This is verification substrate: the synthesiser never builds automata, but
the test-suite cross-checks the derivative matcher, the DFA pipeline and
synthesis results against each other, and the benchmark suites use DFAs to
enumerate example strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from .ast import Char, Concat, Empty, Epsilon, Question, Regex, Star, Union


@dataclass
class NFA:
    """A non-deterministic finite automaton with ε-transitions.

    States are integers ``0..n_states-1``.  ``transitions`` maps
    ``(state, symbol)`` to a set of successor states; ``epsilon`` maps a
    state to its ε-successors.
    """

    n_states: int
    start: int
    accept: int
    transitions: Dict[Tuple[int, str], Set[int]] = field(default_factory=dict)
    epsilon: Dict[int, Set[int]] = field(default_factory=dict)

    @property
    def alphabet(self) -> FrozenSet[str]:
        """The set of symbols appearing on any transition."""
        return frozenset(symbol for (_, symbol) in self.transitions)

    def epsilon_closure(self, states: Set[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` by ε-transitions."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for successor in self.epsilon.get(state, ()):
                if successor not in closure:
                    closure.add(successor)
                    stack.append(successor)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], symbol: str) -> FrozenSet[int]:
        """One symbol-step (including closing under ε afterwards)."""
        moved: Set[int] = set()
        for state in states:
            moved.update(self.transitions.get((state, symbol), ()))
        return self.epsilon_closure(moved)

    def accepts(self, word: str) -> bool:
        """Decide ``word ∈ Lang(self)`` by subset simulation."""
        current = self.epsilon_closure({self.start})
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return self.accept in current


class _Builder:
    def __init__(self) -> None:
        self.n_states = 0
        self.transitions: Dict[Tuple[int, str], Set[int]] = {}
        self.epsilon: Dict[int, Set[int]] = {}

    def fresh(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def add(self, src: int, symbol: str, dst: int) -> None:
        self.transitions.setdefault((src, symbol), set()).add(dst)

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, set()).add(dst)

    def build(self, regex: Regex) -> Tuple[int, int]:
        """Thompson fragment for ``regex``; returns ``(start, accept)``."""
        if isinstance(regex, Empty):
            return self.fresh(), self.fresh()
        if isinstance(regex, Epsilon):
            start, accept = self.fresh(), self.fresh()
            self.add_epsilon(start, accept)
            return start, accept
        if isinstance(regex, Char):
            start, accept = self.fresh(), self.fresh()
            self.add(start, regex.symbol, accept)
            return start, accept
        if isinstance(regex, Concat):
            s1, a1 = self.build(regex.left)
            s2, a2 = self.build(regex.right)
            self.add_epsilon(a1, s2)
            return s1, a2
        if isinstance(regex, Union):
            s1, a1 = self.build(regex.left)
            s2, a2 = self.build(regex.right)
            start, accept = self.fresh(), self.fresh()
            self.add_epsilon(start, s1)
            self.add_epsilon(start, s2)
            self.add_epsilon(a1, accept)
            self.add_epsilon(a2, accept)
            return start, accept
        if isinstance(regex, Star):
            s1, a1 = self.build(regex.inner)
            start, accept = self.fresh(), self.fresh()
            self.add_epsilon(start, s1)
            self.add_epsilon(start, accept)
            self.add_epsilon(a1, s1)
            self.add_epsilon(a1, accept)
            return start, accept
        if isinstance(regex, Question):
            s1, a1 = self.build(regex.inner)
            start, accept = self.fresh(), self.fresh()
            self.add_epsilon(start, s1)
            self.add_epsilon(start, accept)
            self.add_epsilon(a1, accept)
            return start, accept
        raise TypeError("cannot build an NFA from %r" % (regex,))


def from_regex(regex: Regex) -> NFA:
    """Compile ``regex`` into an NFA by Thompson's construction."""
    builder = _Builder()
    start, accept = builder.build(regex)
    return NFA(
        n_states=builder.n_states,
        start=start,
        accept=accept,
        transitions=builder.transitions,
        epsilon=builder.epsilon,
    )
