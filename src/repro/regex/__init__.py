"""Regular expression syntax, costs, matching and automata."""

from .ast import (
    EMPTY,
    EPSILON,
    HOLE,
    Char,
    Concat,
    Empty,
    Epsilon,
    Hole,
    Question,
    Regex,
    Star,
    Union,
    alphabet_of,
    concat_all,
    depth,
    has_hole,
    literal,
    size,
    subterms,
    union_all,
)
from .cost import ALPHAREGEX_COST, EVALUATION_COST_FUNCTIONS, CostFunction
from .derivatives import matches, satisfies
from .parser import RegexSyntaxError, parse
from .printer import to_string
from .simplify import simplify

__all__ = [
    "EMPTY",
    "EPSILON",
    "HOLE",
    "Char",
    "Concat",
    "Empty",
    "Epsilon",
    "Hole",
    "Question",
    "Regex",
    "Star",
    "Union",
    "alphabet_of",
    "concat_all",
    "depth",
    "has_hole",
    "literal",
    "size",
    "subterms",
    "union_all",
    "ALPHAREGEX_COST",
    "EVALUATION_COST_FUNCTIONS",
    "CostFunction",
    "matches",
    "satisfies",
    "RegexSyntaxError",
    "parse",
    "to_string",
    "simplify",
]
