"""Cost homomorphisms over regular expressions (Def. 3.2 of the paper).

A cost homomorphism is determined by five strictly positive integers
``(c1, c2, c3, c4, c5)``::

    cost(∅) = cost(ε) = cost(a) = c1        for every a ∈ Σ
    cost(r?)    = cost(r) + c2
    cost(r*)    = cost(r) + c3
    cost(r·r')  = cost(r) + cost(r') + c4
    cost(r+r')  = cost(r) + cost(r') + c5

The paper's evaluation (Fig. 1 and Table 1) uses twelve specific cost
functions; they are exported as :data:`EVALUATION_COST_FUNCTIONS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .ast import (
    Char,
    Concat,
    Empty,
    Epsilon,
    Hole,
    Question,
    Regex,
    Star,
    Union,
)


@dataclass(frozen=True)
class CostFunction:
    """A cost homomorphism ``(c1, c2, c3, c4, c5)``.

    Attributes mirror the paper's naming convention: a 5-tuple
    ``(cost(a), cost(?), cost(*), cost(·), cost(+))`` in this exact order.
    """

    literal: int = 1
    question: int = 1
    star: int = 1
    concat: int = 1
    union: int = 1

    def __post_init__(self) -> None:
        for name in ("literal", "question", "star", "concat", "union"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(
                    "cost of %s must be a strictly positive integer, got %r"
                    % (name, value)
                )

    @classmethod
    def from_tuple(cls, values: Tuple[int, int, int, int, int]) -> "CostFunction":
        """Build a cost function from the paper's 5-tuple notation."""
        if len(values) != 5:
            raise ValueError("expected a 5-tuple (c1..c5), got %r" % (values,))
        return cls(*values)

    @classmethod
    def uniform(cls) -> "CostFunction":
        """The ``(1, 1, 1, 1, 1)`` cost function."""
        return cls()

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Return the paper's 5-tuple ``(c1, c2, c3, c4, c5)``."""
        return (self.literal, self.question, self.star, self.concat, self.union)

    @property
    def min_constructor_cost(self) -> int:
        """Smallest cost increment any constructor can add.

        Used by OnTheFly mode to determine the deepest cache level a target
        cost can depend on (paper §3, "OnTheFly mode").
        """
        return min(
            self.question,
            self.star,
            self.concat + self.literal,
            self.union + self.literal,
        )

    def cost(self, regex: Regex) -> int:
        """The cost of ``regex`` under this homomorphism.

        ``Hole`` nodes are priced at ``c1`` — the least any completion can
        cost — which makes partial-regex cost an admissible lower bound for
        the AlphaRegex baseline's best-first queue.
        """
        total = 0
        stack = [regex]
        while stack:
            node = stack.pop()
            if isinstance(node, (Empty, Epsilon, Char, Hole)):
                total += self.literal
            elif isinstance(node, Question):
                total += self.question
                stack.append(node.inner)
            elif isinstance(node, Star):
                total += self.star
                stack.append(node.inner)
            elif isinstance(node, Concat):
                total += self.concat
                stack.append(node.left)
                stack.append(node.right)
            elif isinstance(node, Union):
                total += self.union
                stack.append(node.left)
                stack.append(node.right)
            else:  # pragma: no cover - defensive
                raise TypeError("unknown regex node %r" % (node,))
        return total

    def word_cost(self, word: str) -> int:
        """Cost of the literal regex for ``word`` (``ε`` when empty)."""
        if not word:
            return self.literal
        return len(word) * self.literal + (len(word) - 1) * self.concat

    def overfit_cost(self, positives) -> int:
        """Cost of the maximally-overfitted solution for ``positives``.

        This is the regex ``w1 + ... + wk`` (with an outer ``?`` when ``ε``
        is among the positives).  The paper uses it as the guaranteed upper
        bound on synthesis cost ("Performance evaluation", §4.3): Paresy
        terminates no later than with this expression.
        """
        words = sorted(set(positives))
        if not words:
            return self.literal  # ∅
        non_empty = [w for w in words if w]
        has_epsilon = len(non_empty) != len(words)
        if not non_empty:
            return self.literal  # ε
        total = sum(self.word_cost(w) for w in non_empty)
        total += (len(non_empty) - 1) * self.union
        if has_epsilon:
            total += self.question
        return total

    def __str__(self) -> str:
        return "(%d, %d, %d, %d, %d)" % self.as_tuple()


#: The twelve cost functions used in the paper's Fig. 1 and Table 1.
EVALUATION_COST_FUNCTIONS: Tuple[CostFunction, ...] = tuple(
    CostFunction.from_tuple(values)
    for values in (
        (1, 1, 1, 1, 1),
        (10, 1, 1, 1, 1),
        (1, 10, 1, 1, 1),
        (1, 1, 10, 1, 1),
        (1, 1, 1, 10, 1),
        (1, 1, 1, 1, 10),
        (10, 10, 10, 10, 1),
        (10, 10, 10, 1, 10),
        (10, 10, 1, 10, 10),
        (10, 1, 10, 10, 10),
        (1, 10, 10, 10, 10),
        (20, 20, 20, 5, 30),
    )
)

#: AlphaRegex's implicit cost scale: every constructor and literal costs 5.
#: Table 2 of the paper reports ``Cost(RE)`` on this scale.
ALPHAREGEX_COST = CostFunction(5, 5, 5, 5, 5)
