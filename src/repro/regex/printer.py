"""Pretty-printing of regular expressions with minimal parentheses.

The concrete syntax matches the paper: ``+`` for union, juxtaposition for
concatenation, postfix ``*`` and ``?``, ``ε`` for the empty word and ``∅``
for the empty language.  ``□`` prints AlphaRegex holes.

Operator precedence (loosest to tightest): union < concatenation < postfix.
The printer emits parentheses only where required, so
``Union(Char('0'), Star(Concat(Char('1'), Char('0'))))`` prints as
``0+(10)*``.
"""

from __future__ import annotations

from .ast import (
    Char,
    Concat,
    Empty,
    Epsilon,
    Hole,
    Question,
    Regex,
    Star,
    Union,
)

#: Characters that carry syntactic meaning and must be escaped in literals.
SPECIAL_CHARS = frozenset("()+*?|\\")

_PREC_UNION = 0
_PREC_CONCAT = 1
_PREC_POSTFIX = 2
_PREC_ATOM = 3


def to_string(regex: Regex) -> str:
    """Render ``regex`` in the paper's concrete syntax."""
    return _render(regex, _PREC_UNION)


def _render(regex: Regex, context: int) -> str:
    if isinstance(regex, Empty):
        return "∅"
    if isinstance(regex, Epsilon):
        return "ε"
    if isinstance(regex, Hole):
        return "□"
    if isinstance(regex, Char):
        if regex.symbol in SPECIAL_CHARS:
            return "\\" + regex.symbol
        return regex.symbol
    if isinstance(regex, Union):
        # Union and concatenation print flat: they are associative both
        # semantically and for every cost homomorphism, so the parser's
        # left-association loses nothing but tree shape.  Round-tripping
        # holds up to associativity (see regex.simplify.left_associate).
        text = "%s+%s" % (
            _render(regex.left, _PREC_UNION),
            _render(regex.right, _PREC_UNION),
        )
        return _parenthesize(text, _PREC_UNION, context)
    if isinstance(regex, Concat):
        text = "%s%s" % (
            _render(regex.left, _PREC_CONCAT),
            _render(regex.right, _PREC_CONCAT),
        )
        return _parenthesize(text, _PREC_CONCAT, context)
    if isinstance(regex, Star):
        return _render_postfix(regex.inner, "*")
    if isinstance(regex, Question):
        return _render_postfix(regex.inner, "?")
    raise TypeError("unknown regex node %r" % (regex,))


def _render_postfix(inner: Regex, operator: str) -> str:
    return "%s%s" % (_render(inner, _PREC_POSTFIX), operator)


def _parenthesize(text: str, own: int, context: int) -> str:
    if own < context:
        return "(%s)" % text
    return text
