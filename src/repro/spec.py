"""Specifications ``(P, N)`` for regular expression inference (Def. 3.1).

A :class:`Spec` holds finite, disjoint sets of positive and negative
example strings over an arbitrary alphabet.  A language ``L`` satisfies a
spec when ``P ⊆ L`` and ``N ∩ L = ∅``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from .errors import InvalidSpecError


@dataclass(frozen=True)
class Spec:
    """A pair of positive and negative example sets.

    Examples are deduplicated and stored sorted (shortlex over the natural
    character order), so structurally equal specs compare equal.  An
    explicit ``alphabet`` may widen (never narrow) the inferred one.
    """

    positive: Tuple[str, ...]
    negative: Tuple[str, ...]
    alphabet: Tuple[str, ...]

    def __init__(
        self,
        positive: Iterable[str],
        negative: Iterable[str],
        alphabet: Optional[Sequence[str]] = None,
    ) -> None:
        pos = sorted(set(positive), key=lambda w: (len(w), w))
        neg = sorted(set(negative), key=lambda w: (len(w), w))
        overlap = set(pos) & set(neg)
        if overlap:
            raise InvalidSpecError(
                "positive and negative examples overlap: %r" % sorted(overlap)
            )
        inferred = {ch for word in pos for ch in word}
        inferred.update(ch for word in neg for ch in word)
        if alphabet is None:
            chars: Tuple[str, ...] = tuple(sorted(inferred))
        else:
            chars = tuple(alphabet)
            if len(set(chars)) != len(chars):
                raise InvalidSpecError("alphabet contains duplicates: %r" % (chars,))
            missing = inferred - set(chars)
            if missing:
                raise InvalidSpecError(
                    "alphabet %r does not cover example characters %r"
                    % (chars, sorted(missing))
                )
        object.__setattr__(self, "positive", tuple(pos))
        object.__setattr__(self, "negative", tuple(neg))
        object.__setattr__(self, "alphabet", chars)

    # ------------------------------------------------------------------
    @property
    def n_examples(self) -> int:
        """Total number of examples ``#(P ∪ N)``."""
        return len(self.positive) + len(self.negative)

    @property
    def all_words(self) -> Tuple[str, ...]:
        """``P ∪ N`` as a tuple (positives first)."""
        return self.positive + self.negative

    def is_satisfied_by(self, regex) -> bool:
        """``r |= (P, N)``: accepts every positive, rejects every negative."""
        from .regex.derivatives import satisfies

        return satisfies(regex, self.positive, self.negative)

    def errors_of(self, regex) -> int:
        """Number of examples ``regex`` classifies incorrectly."""
        from .regex.derivatives import matches

        wrong = sum(1 for word in self.positive if not matches(regex, word))
        wrong += sum(1 for word in self.negative if matches(regex, word))
        return wrong

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "positive": list(self.positive),
            "negative": list(self.negative),
            "alphabet": list(self.alphabet),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Spec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            positive=list(data["positive"]),
            negative=list(data["negative"]),
            alphabet=list(data["alphabet"]) if data.get("alphabet") else None,
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Spec":
        """Parse a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:
        def show(words: Tuple[str, ...]) -> str:
            return ", ".join("ε" if not w else w for w in words)

        return "P = {%s}; N = {%s}" % (show(self.positive), show(self.negative))
