"""The concurrent synthesis service: queue, worker pool, stores, client.

The execution subsystem that turns :class:`~repro.api.session.Session`
into a long-running, multi-core, restart-durable service:

* :mod:`repro.service.wire` — picklable job forms and content
  addresses (request fingerprint, staging fingerprint).
* :mod:`repro.service.queue` — :class:`JobQueue`: priorities, in-flight
  deduplication of identical requests, job-level cancellation.
* :mod:`repro.service.pool` — :class:`WorkerPool`: one warm session per
  worker process, universe-affinity scheduling with work-stealing,
  cross-process progress forwarding and a worker-side cancellation
  watchdog.
* :mod:`repro.service.store` — :class:`StagingStore` /
  :class:`ResultStore`: content-addressed persistence so a restarted
  service warm-starts instead of re-enumerating.
* :mod:`repro.service.checkpoint` — :class:`CheckpointStore`: durable
  per-cost-level journals, so an interrupted query resumes from its
  last completed level and repeat traffic re-serves enumerated levels.
* :mod:`repro.service.client` — :class:`ServiceClient`: the facade the
  CLI (``repro serve`` / ``repro submit``), the evaluation harness and
  the benchmarks all drive.
"""

from .checkpoint import CheckpointStore, checkpoint_key
from .client import ServiceClient
from .pool import WorkerPool
from .queue import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    JobFailedError,
    JobHandle,
    JobQueue,
)
from .store import ResultStore, StagingStore, StoreBackedSession
from .wire import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    WireRequest,
    staging_fingerprint,
)

__all__ = [
    "CheckpointStore",
    "checkpoint_key",
    "ServiceClient",
    "WorkerPool",
    "Job",
    "JobFailedError",
    "JobHandle",
    "JobQueue",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_CANCELLED",
    "JOB_FAILED",
    "ResultStore",
    "StagingStore",
    "StoreBackedSession",
    "WireRequest",
    "staging_fingerprint",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]
