"""The multi-core worker pool with universe-affinity scheduling.

Each worker process owns a long-lived, *warm*
:class:`~repro.api.session.Session` (a
:class:`~repro.service.store.StoreBackedSession` when the pool has a
persistent store), so the staging artifacts a worker has already built
or loaded stay hot in its memory.  The scheduler exploits exactly that:
jobs carry the :func:`~repro.service.wire.staging_fingerprint` of their
example-string set, and the dispatcher routes a job to a worker that is
already warm on that fingerprint — falling back to *work-stealing* (the
least-loaded cold worker takes the job) when every warm worker is
saturated.  Affinity is a performance routing decision only: any worker
answers any job bit-identically, so stealing never changes results.

Plumbing (all standard ``multiprocessing``):

* one task queue per worker (so affinity routing is explicit),
* one result queue per worker, drained by a collector thread in the
  parent (job results, forwarded progress events, worker stats).  The
  result path is deliberately *not* shared: a ``multiprocessing.Queue``
  write lock dies with whichever process holds it, so with a shared
  queue one SIGKILLed worker whose feeder thread was mid-write would
  deadlock every other worker's reporting.  Per-worker queues confine
  that poisoning to the dead worker, and the reaper replaces its queue
  along with its process,
* one ``Manager`` providing per-job cancellation events; inside the
  worker a tiny watchdog thread mirrors the cross-process event into a
  process-local flag that the engine's ``cancel_check`` polls for free.

Progress events stream back with their engine-side monotonic
``elapsed_s`` intact, so a cross-process progress stream reads exactly
like an in-process one.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import multiprocessing.connection
import os
import random
import threading
import time
import traceback
from pathlib import Path
from queue import Empty
from collections import OrderedDict
from dataclasses import replace as dataclasses_replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..api.config import EngineConfig, SynthesisRequest
from ..api.registry import BackendRegistry, default_registry
from ..api.session import Session
from ..core.result import SynthesisResult
from ..obs.export import stage_summary, trace_payload
from ..obs.trace import TraceContext, Tracer, new_span_id
from ..testing.faults import fault_point
from .checkpoint import CheckpointStore
from .queue import Job, JobHandle, JobQueue
from .store import (
    ResultStore,
    StagingStore,
    StoreBackedSession,
    atomic_write_bytes,
)
from .wire import PRIORITY_HIGH, PRIORITY_NORMAL, WireRequest

#: Store layout under a service root directory.
STAGING_SUBDIR = "staging"
RESULTS_SUBDIR = "results"
CHECKPOINTS_SUBDIR = "checkpoints"
QUARANTINE_SUBDIR = "quarantine"

#: How often (seconds) a worker's watchdog mirrors the cross-process
#: cancellation event into the engine-visible local flag.
_WATCHDOG_POLL_S = 0.02


def _worker_main(
    worker_id: int,
    config: EngineConfig,
    store_dir: Optional[str],
    max_staged: Optional[int],
    checkpoints: bool,
    partial_every_candidates: Optional[int],
    partial_every_s: Optional[float],
    task_queue,
    result_queue,
) -> None:
    """Worker process body: one warm session, jobs until shutdown."""
    staging_store = (
        StagingStore(os.path.join(store_dir, STAGING_SUBDIR))
        if store_dir is not None
        else None
    )
    checkpoint_store = (
        CheckpointStore(os.path.join(store_dir, CHECKPOINTS_SUBDIR))
        if store_dir is not None and checkpoints
        else None
    )
    session = StoreBackedSession(
        config,
        max_staged=max_staged,
        staging_store=staging_store,
        checkpoint_store=checkpoint_store,
        partial_every_candidates=partial_every_candidates,
        partial_every_s=partial_every_s,
    )
    while True:
        message = task_queue.get()
        if message[0] == "shutdown":
            break
        _, job_id, wire, cancel_event, preempt_event = message
        fault_point("pool.worker.before_job")
        local_cancel = threading.Event()
        local_preempt = threading.Event()
        stop_watchdog = threading.Event()

        def watch() -> None:
            # One watchdog mirrors both cross-process control events
            # into process-local flags the engine's probes poll for
            # free: ``cancel`` stops the job for good, ``preempt``
            # checkpoints it at the next safe point and hands it back.
            while not stop_watchdog.is_set():
                try:
                    if cancel_event.is_set():
                        local_cancel.set()
                        return
                    if preempt_event.is_set():
                        local_preempt.set()
                except (BrokenPipeError, EOFError, ConnectionError):
                    return
                stop_watchdog.wait(_WATCHDOG_POLL_S)

        watchdog = threading.Thread(target=watch, daemon=True)
        watchdog.start()

        def forward_progress(event) -> None:
            # The final event's incumbent is the full result, which the
            # ``done`` message already carries; strip it here and let
            # the parent re-attach it, so the result crosses the pipe
            # once.
            if event.incumbent is not None:
                event = dataclasses_replace(event, incumbent=None)
            result_queue.put(("progress", worker_id, job_id, event))

        request = wire.to_request().replace(
            cancel=local_cancel.is_set,
            preempt=local_preempt.is_set,
            on_progress=forward_progress,
        )
        tracer = None
        if wire.trace_ctx is not None:
            # Seed this process's recorder with the submitter's context:
            # the worker-job span hangs off the server's root span, and
            # every engine/session span nests under it.  The worker owns
            # draining — the session sees a live tracer and leaves the
            # harvest to us (see api.session._tracer_for).
            tracer = Tracer(
                wire.trace_ctx.trace_id,
                process="pool-worker-%d" % worker_id,
                parent_span_id=wire.trace_ctx.parent_span_id,
            )
            request = request.replace(tracer=tracer)
        try:
            job_span = (
                tracer.start("worker-job", job_id=job_id)
                if tracer is not None
                else None
            )
            result = session.synthesize(request)
            if job_span is not None:
                tracer.finish(job_span, status=result.status)
                if isinstance(result.extra, dict):
                    result.extra["trace"] = trace_payload(
                        tracer.trace_id, tracer.drain()
                    )
            if result.status == "preempted":
                # The injection point for dying between the preemption
                # checkpoint and the handback — the reaper then retries
                # the job, which resumes from the same partial record.
                fault_point("pool.worker.preempt")
            fault_point("pool.worker.after_job")
            result_queue.put(
                ("done", worker_id, job_id, result, _session_stats(session))
            )
        except BaseException:
            result_queue.put(
                ("error", worker_id, job_id, traceback.format_exc())
            )
        finally:
            stop_watchdog.set()
            watchdog.join()
    result_queue.put(("stats", worker_id, _session_stats(session)))


def _session_stats(session: Session) -> Dict[str, int]:
    """A picklable snapshot of a worker session's amortisation stats."""
    snapshot = {
        "requests_served": session.stats.requests_served,
        "staging_builds": session.stats.staging_builds,
        "staging_hits": session.stats.staging_hits,
    }
    if isinstance(session, StoreBackedSession):
        snapshot["store_loads"] = session.store_loads
        snapshot["store_saves"] = session.store_saves
        snapshot["checkpoint_loads"] = session.checkpoint_loads
        snapshot["checkpoint_saves"] = session.checkpoint_saves
        snapshot["partial_saves"] = session.partial_saves
        snapshot["partial_loads"] = session.partial_loads
        snapshot["resumed_queries"] = session.resumed_queries
    return snapshot


class _WorkerState:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("worker_id", "process", "task_queue", "result_queue",
                 "inflight", "load", "warm", "served", "stats", "dead",
                 "_warm_capacity")

    def __init__(self, worker_id: int, process, task_queue, result_queue,
                 warm_capacity):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.result_queue = result_queue
        self.inflight: set = set()
        #: Slot-weighted in-flight load (a sharded job claims
        #: ``job.slots`` slots of this worker's depth, not one).
        self.load = 0
        #: Staging fingerprints this worker's session is warm on
        #: (insertion-ordered, bounded like the session's LRU).
        self.warm: "OrderedDict[str, bool]" = OrderedDict()
        self.served = 0
        self.stats: Dict[str, int] = {}
        #: Set when the process died without a farewell (crash/kill);
        #: dead workers are excluded from dispatch.
        self.dead = False
        self._warm_capacity = warm_capacity

    # OrderedDict-LRU update mirroring Session's staging cache bound.
    def mark_warm(self, staging_fp: str) -> None:
        self.warm[staging_fp] = True
        self.warm.move_to_end(staging_fp)
        capacity = self._warm_capacity
        if capacity is not None:
            while len(self.warm) > capacity:
                self.warm.popitem(last=False)


class WorkerPool:
    """A process pool of warm sessions behind an affinity scheduler.

    ::

        with WorkerPool(workers=4, store_dir="service-state") as pool:
            handles = [pool.submit(spec) for spec in specs]
            results = [h.result() for h in handles]

    ``per_worker_depth`` bounds how many jobs may be in flight on one
    worker at a time (depth > 1 lets the affinity scheduler pipeline
    same-universe jobs onto the warm worker); ``reuse_results`` answers
    repeat submissions from the persistent result store without running
    anything.
    """

    def __init__(
        self,
        workers: int = 4,
        config: Optional[EngineConfig] = None,
        registry: Optional[BackendRegistry] = None,
        store_dir: Optional[str] = None,
        per_worker_depth: int = 2,
        max_staged_per_worker: Optional[int] = 64,
        reuse_results: bool = False,
        retry_max_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        retry_jitter: float = 0.25,
        checkpoints: bool = True,
        partial_every_candidates: Optional[int] = (
            StoreBackedSession.PARTIAL_EVERY_CANDIDATES
        ),
        partial_every_s: Optional[float] = (
            StoreBackedSession.PARTIAL_EVERY_S
        ),
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if per_worker_depth < 1:
            raise ValueError("per_worker_depth must be >= 1")
        if retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        self.config = config if config is not None else EngineConfig()
        self.registry = registry if registry is not None else default_registry()
        self.registry.resolve(self.config.backend)  # fail fast
        self.n_workers = workers
        self.store_dir = str(store_dir) if store_dir is not None else None
        self.per_worker_depth = per_worker_depth
        self.max_staged_per_worker = max_staged_per_worker
        self.reuse_results = reuse_results
        #: Total dispatch attempts a job gets before quarantine (so a
        #: job survives ``retry_max_attempts - 1`` worker deaths).
        self.retry_max_attempts = retry_max_attempts
        #: Base of the exponential retry backoff (delay of retry *n* is
        #: ``retry_backoff_s * 2**(n-1)``).
        self.retry_backoff_s = retry_backoff_s
        if retry_jitter < 0:
            raise ValueError("retry_jitter must be >= 0")
        #: Random jitter fraction on every backoff delay (a delay of
        #: ``d`` becomes ``d * uniform(1, 1 + retry_jitter)``), so jobs
        #: orphaned or preempted together don't requeue in lockstep.
        self.retry_jitter = retry_jitter
        self.checkpoints = checkpoints
        #: Mid-level checkpoint cadence handed to every worker session
        #: (see :class:`~repro.service.store.StoreBackedSession`).
        self.partial_every_candidates = partial_every_candidates
        self.partial_every_s = partial_every_s
        # The parent only touches results (dedup fast path + persisting
        # answers); staging stores live worker-side, in each worker's
        # StoreBackedSession.
        self.result_store: Optional[ResultStore] = (
            ResultStore(os.path.join(self.store_dir, RESULTS_SUBDIR))
            if self.store_dir is not None
            else None
        )
        self.queue = JobQueue()
        self.queue._running_cancel_hook = self._cancel_running
        self.stats: Dict[str, int] = {
            "affinity_hits": 0,
            "steals": 0,
            "cold_assignments": 0,
            "result_hits": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "quarantined": 0,
            "respawns": 0,
            "preemptions": 0,
        }
        self._lock = threading.RLock()
        #: job_id → (job, backoff timer) for jobs waiting out a retry
        #: delay — neither pending nor in flight, but still live.
        self._retrying: Dict[str, Tuple[Job, threading.Timer]] = {}
        self._workers: List[_WorkerState] = []
        self._jobs_by_id: Dict[str, Job] = {}
        self._cancel_events: Dict[str, object] = {}
        self._preempt_events: Dict[str, object] = {}
        #: job_id → monotonic dispatch epoch of the current attempt
        #: (what "longest-running" means to the preemption picker).
        self._dispatched_at: Dict[str, float] = {}
        self._pending_final_events: Dict[str, object] = {}
        #: Traced jobs only: submit epoch (for the queue-wait span) and
        #: parent-side spans waiting to join the result's trace.
        self._submitted_at: Dict[str, float] = {}
        self._parent_spans: Dict[str, List[dict]] = {}
        #: Epoch of the most recent quarantine (surfaced by /healthz).
        self.last_quarantine_at: Optional[float] = None
        self._mp = multiprocessing.get_context()
        self._manager = None
        self._collector: Optional[threading.Thread] = None
        self._collector_stop = threading.Event()
        self._atexit_hook = None
        self._started = False
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the workers and the collector thread (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._manager = self._mp.Manager()
            for worker_id in range(self.n_workers):
                task_queue = self._mp.Queue()
                result_queue = self._mp.Queue()
                # Workers are NOT daemonic: a daemonic process may not
                # spawn children, and a job configured with
                # ``shard_workers >= 2`` fans out inside its worker (see
                # repro.core.shard) — which is also why such a job
                # claims that many scheduler slots.  The atexit hook
                # below replaces the daemon flag's normal-exit cleanup;
                # a hard-killed parent orphans children under either
                # flag, so no safety is lost.
                process = self._spawn_process(
                    worker_id, task_queue, result_queue
                )
                self._workers.append(
                    _WorkerState(
                        worker_id, process, task_queue, result_queue,
                        self.max_staged_per_worker,
                    )
                )
            self._collector_stop = threading.Event()
            self._collector = threading.Thread(
                target=self._collect, daemon=True, name="repro-collector"
            )
            self._collector.start()
            # Non-daemonic workers would block a normal interpreter
            # exit (multiprocessing joins them) if the caller never
            # called shutdown(); this safety net stops them first.
            self._atexit_hook = self._exit_cleanup
            atexit.register(self._atexit_hook)
            self._started = True
        return self

    def _spawn_process(self, worker_id: int, task_queue, result_queue):
        """Start one worker process (initial spawn and respawn share it)."""
        process = self._mp.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.config,
                self.store_dir,
                self.max_staged_per_worker,
                self.checkpoints,
                self.partial_every_candidates,
                self.partial_every_s,
                task_queue,
                result_queue,
            ),
            daemon=False,
            name="repro-worker-%d" % worker_id,
        )
        process.start()
        return process

    def _exit_cleanup(self) -> None:  # pragma: no cover - exit path
        try:
            self.shutdown(wait=False, cancel_pending=True)
        except Exception:
            traceback.print_exc()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    def shutdown(
        self, wait: bool = True, cancel_pending: bool = False
    ) -> None:
        """Stop the pool.

        ``wait`` drains every live job first; ``cancel_pending`` cancels
        the still-queued ones instead of running them.
        """
        with self._lock:
            if not self._started or self._closing:
                return
            self._closing = True
        if cancel_pending:
            for job in self.queue.pending_in_order():
                JobHandle(job, self.queue).cancel()
        if wait:
            self.join()
        for worker in self._workers:
            worker.task_queue.put(("shutdown",))
        for worker in self._workers:
            worker.process.join(timeout=10)
            if worker.process.is_alive():  # pragma: no cover - safety net
                worker.process.terminate()
                worker.process.join(timeout=5)
        # Stop the collector: the flag is honoured only after a sweep
        # that drained nothing, so everything already queued (the
        # workers' farewell stats) is processed first.
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=10)
        self._manager.shutdown()
        # Release the queues without the interpreter-exit join: a
        # killed worker can leave a feeder thread wedged, and the
        # default atexit handler would join it forever.  Nothing useful
        # remains in these buffers — every outcome was settled above or
        # is failed below.
        for worker in self._workers:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
            worker.result_queue.close()
            worker.result_queue.cancel_join_thread()
        # Whatever is still unanswered now (``wait=False`` with jobs in
        # flight, or a worker terminated past the join timeout) will
        # never get a worker reply — fail it so blocked
        # ``JobHandle.result()`` callers raise instead of hanging.
        # Retry timers are cancelled the same way: their jobs would
        # requeue into a stopped pool.
        with self._lock:
            orphaned = list(self._jobs_by_id.values())
            retrying = list(self._retrying.values())
            self._retrying.clear()
        for job, timer in retrying:
            timer.cancel()
            orphaned.append(job)
        for job in orphaned:
            self.queue.fail(job, "pool shut down before the job completed")
        for job in self.queue.pending_in_order():
            if self.queue.mark_running(job, -1):
                self.queue.fail(
                    job, "pool shut down before the job completed")
        # Reset to a restartable state: a later start() spawns a fresh
        # pool instead of stacking onto stale workers, and submit()'s
        # "not running" error stays accurate.
        with self._lock:
            if self._atexit_hook is not None:
                try:
                    atexit.unregister(self._atexit_hook)
                except Exception:  # pragma: no cover - defensive
                    pass
                self._atexit_hook = None
            self._workers = []
            self._jobs_by_id.clear()
            self._cancel_events.clear()
            self._preempt_events.clear()
            self._dispatched_at.clear()
            self._pending_final_events.clear()
            self._submitted_at.clear()
            self._parent_spans.clear()
            self._manager = None
            self._collector = None
            self._started = False
            self._closing = False

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.queue.live_jobs:
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.005)
        return True

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request,
        priority: int = PRIORITY_NORMAL,
        on_progress: Optional[Callable[[object], None]] = None,
    ) -> JobHandle:
        """Submit a request/spec/pair; returns a :class:`JobHandle`.

        Identical in-flight submissions are deduplicated onto one job;
        with ``reuse_results`` and a persistent store, previously
        answered fingerprints return a completed handle immediately.

        A :class:`SynthesisRequest`'s own hooks keep working through
        the pool: its ``on_progress`` receives the forwarded events
        (alongside any ``on_progress`` passed here), and its ``cancel``
        probe is polled parent-side — between forwarded progress
        messages and on the collector's idle tick — cancelling the job
        exactly like :meth:`JobHandle.cancel` would.
        """
        if not self._started or self._closing:
            raise RuntimeError("pool is not running (call start())")
        cancel_probe = None
        if isinstance(request, SynthesisRequest):
            if request.on_progress is not None and on_progress is None:
                on_progress = request.on_progress
            elif request.on_progress is not None:
                callbacks = (request.on_progress, on_progress)

                def on_progress(event, _callbacks=callbacks):  # noqa: F811
                    for callback in _callbacks:
                        callback(event)

            cancel_probe = request.cancel
        wire = WireRequest.of(
            request, default_config=self.config, registry=self.registry
        )
        # In-process minting point: a traced config without an explicit
        # context (e.g. ServiceClient.submit with ``trace=True``) gets a
        # fresh root trace here — the fingerprint ignores it, so dedup
        # against untraced submissions is unaffected.
        if wire.config.trace and wire.trace_ctx is None:
            wire = dataclasses_replace(wire, trace_ctx=TraceContext.mint())
        stored_lookup = None
        if self.reuse_results and self.result_store is not None:
            stored_lookup = self.result_store.load_result
        handle = self.queue.submit(
            wire, priority=priority, on_progress=on_progress,
            stored_lookup=stored_lookup,
        )
        if handle.from_store:
            with self._lock:
                self.stats["result_hits"] += 1
            return handle
        if wire.trace_ctx is not None:
            with self._lock:
                # setdefault: a deduplicated resubmission must not reset
                # the original submission's queue-wait clock.
                self._submitted_at.setdefault(
                    handle._job.job_id, time.time()
                )
        if cancel_probe is not None:
            handle._job.cancel_probes.append(cancel_probe)
            self._poll_cancel_probes(handle._job)
        if not handle.deduplicated:
            self._dispatch()
        return handle

    def map(
        self,
        requests: Iterable[object],
        priority: int = PRIORITY_NORMAL,
        timeout: Optional[float] = None,
    ) -> List[SynthesisResult]:
        """Submit many requests and gather results in request order."""
        handles = [self.submit(r, priority=priority) for r in requests]
        return [handle.result(timeout=timeout) for handle in handles]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job by id; True if it was still live."""
        with self._lock:
            job = self._jobs_by_id.get(job_id)
        if job is None:
            job = next(
                (j for j in self.queue.pending_in_order()
                 if j.job_id == job_id),
                None,
            )
        if job is None:
            return False
        return JobHandle(job, self.queue).cancel()

    # ------------------------------------------------------------------
    # Preemption: checkpoint a running job and hand its worker back
    # ------------------------------------------------------------------
    def preempt(self, job_id: str) -> bool:
        """Ask a running job to yield at its next safe point.

        The worker checkpoints mid-level (when a store is attached) and
        returns the job with ``status="preempted"``; the pool requeues
        it at its prior priority to resume from the checkpoint.  True
        iff the signal was delivered to a running job (idempotent — a
        second call on the same attempt is a no-op that still returns
        True).
        """
        with self._lock:
            event = self._preempt_events.get(job_id)
        if event is None:
            return False
        try:
            event.set()
        except (BrokenPipeError, EOFError, ConnectionError):
            return False  # pool tearing down
        return True

    def preempt_longest_running(self) -> Optional[str]:
        """Preempt the running job whose current attempt is oldest.

        The admission layer's lever when the interactive lane
        saturates: the longest-running batch job is the one holding a
        worker the longest and the one with the most checkpointed
        progress to resume from.  Jobs already asked to yield are
        skipped, so a saturation burst preempts distinct jobs instead
        of hammering one.  Returns the preempted job id, or None when
        nothing is preemptible.
        """
        with self._lock:
            candidates = sorted(
                (
                    (dispatched, job_id)
                    for job_id, dispatched in self._dispatched_at.items()
                    if job_id in self._preempt_events
                ),
            )
            picked = None
            for _, job_id in candidates:
                event = self._preempt_events[job_id]
                try:
                    if event.is_set():
                        continue
                except (BrokenPipeError, EOFError, ConnectionError):
                    return None
                picked = (job_id, event)
                break
        if picked is None:
            return None
        job_id, event = picked
        try:
            event.set()
        except (BrokenPipeError, EOFError, ConnectionError):
            return None
        return job_id

    # ------------------------------------------------------------------
    # Scheduling: universe affinity with work-stealing
    # ------------------------------------------------------------------
    @staticmethod
    def plan_assignments(
        pending: Sequence,
        worker_loads: Sequence[int],
        worker_warm: Sequence[Iterable[str]],
        depth: int,
    ) -> List[tuple]:
        """Pure scheduling decision, exposed for deterministic tests.

        ``pending`` is an ordered sequence of objects with a
        ``staging_fp`` attribute (and optionally ``slots``); returns
        ``(index_in_pending, worker_id, kind)`` triples with ``kind``
        one of ``"affinity"`` (routed to a warm worker), ``"steal"`` (a
        warm worker exists but is saturated — a cold worker takes the
        job) or ``"cold"`` (nobody is warm).  Jobs are considered in
        queue order; an assignment consumes ``job.slots`` slots of the
        chosen worker's ``depth`` (default 1) — a sharded job reserves
        the capacity its intra-query fan-out will use.  A job wider
        than ``depth`` is still admitted, but only onto an *idle*
        worker.

        An unplaceable job *parks* on the least-loaded unreserved
        worker: that worker receives no later assignments this round,
        and because every round re-parks the head job the same way, the
        parked worker's load can only drain — so a wide job always
        reaches an idle worker and sustained narrow traffic can never
        starve it (later jobs may still backfill the *other* workers).
        """
        loads = list(worker_loads)
        warm_sets = [set(w) for w in worker_warm]
        plan: List[tuple] = []
        reserved: set = set()
        for index, job in enumerate(pending):
            slots = max(1, getattr(job, "slots", 1))
            free = [
                w
                for w in range(len(loads))
                if w not in reserved
                and (loads[w] == 0 or loads[w] + slots <= depth)
            ]
            if not free:
                drainable = [
                    w
                    for w in range(len(loads))
                    if w not in reserved and loads[w] < depth
                ]
                if not drainable:
                    break  # every worker saturated or already parked
                reserved.add(min(drainable, key=lambda w: (loads[w], w)))
                continue
            warm_free = [w for w in free if job.staging_fp in warm_sets[w]]
            if warm_free:
                target = min(warm_free, key=lambda w: (loads[w], w))
                kind = "affinity"
            else:
                target = min(free, key=lambda w: (loads[w], w))
                kind = (
                    "steal"
                    if any(job.staging_fp in s for s in warm_sets)
                    else "cold"
                )
            loads[target] += slots
            warm_sets[target].add(job.staging_fp)
            plan.append((index, target, kind))
        return plan

    def _dispatch(self) -> None:
        """Assign as many pending jobs as free capacity allows."""
        with self._lock:
            pending = self.queue.pending_in_order()
            if not pending:
                return
            # A crashed worker is only marked dead by the reaper on the
            # collector's next idle tick; in that window a dispatch to
            # it would land on a task queue the respawn then discards,
            # stranding the job.  Checking process liveness here closes
            # that window.
            alive = [
                w
                for w in self._workers
                if not w.dead
                and w.process is not None
                and w.process.is_alive()
            ]
            if not alive:
                return
            plan = self.plan_assignments(
                pending,
                [w.load for w in alive],
                [w.warm.keys() for w in alive],
                self.per_worker_depth,
            )
            for index, alive_index, kind in plan:
                job = pending[index]
                worker = alive[alive_index]
                if not self.queue.mark_running(job, worker.worker_id):
                    continue  # cancelled since the snapshot
                key = (
                    "affinity_hits" if kind == "affinity"
                    else "steals" if kind == "steal"
                    else "cold_assignments"
                )
                self.stats[key] += 1
                cancel_event = self._manager.Event()
                preempt_event = self._manager.Event()
                self._cancel_events[job.job_id] = cancel_event
                self._preempt_events[job.job_id] = preempt_event
                self._dispatched_at[job.job_id] = time.monotonic()
                self._jobs_by_id[job.job_id] = job
                worker.inflight.add(job.job_id)
                worker.load += job.slots
                worker.mark_warm(job.staging_fp)
                self._record_queue_wait(job)
                worker.task_queue.put(
                    ("job", job.job_id, job.wire, cancel_event,
                     preempt_event)
                )

    def _record_queue_wait(self, job: Job) -> None:
        """Close a traced job's queue-wait span at dispatch time.

        Parent-side span (the worker never sees how long the job sat in
        the queue); joined onto the result's trace in :meth:`_on_done`.
        Called under ``self._lock`` from :meth:`_dispatch`; a retry
        dispatch finds no submit epoch (popped the first time) and
        records nothing, so the span measures the *first* wait only.
        """
        ctx = job.wire.trace_ctx
        submitted = self._submitted_at.pop(job.job_id, None)
        if ctx is None or submitted is None:
            return
        self._parent_spans.setdefault(job.job_id, []).append(
            {
                "name": "queue-wait",
                "trace_id": ctx.trace_id,
                "span_id": new_span_id(),
                "parent_id": ctx.parent_span_id,
                "start_s": submitted,
                "end_s": time.time(),
                "process": "pool",
                "args": {"job_id": job.job_id},
            }
        )

    def _cancel_running(self, job: Job) -> None:
        """JobQueue hook: deliver cancellation to a running job."""
        with self._lock:
            event = self._cancel_events.get(job.job_id)
        if event is not None:
            try:
                event.set()
            except (BrokenPipeError, EOFError, ConnectionError):
                pass  # pool already tearing down

    # ------------------------------------------------------------------
    # Collector: results, progress, stats
    # ------------------------------------------------------------------
    #: One collector sweep drains at most this many messages from a
    #: single worker before moving on, so one chatty worker cannot
    #: starve the others' results.
    _COLLECT_BATCH = 128

    def _collect(self) -> None:
        while True:
            with self._lock:
                queues = [w.result_queue for w in self._workers]
            drained = 0
            for queue in queues:
                for _ in range(self._COLLECT_BATCH):
                    try:
                        message = queue.get_nowait()
                    except Empty:
                        break
                    except Exception:
                        # This one queue failed (torn down, or its
                        # worker was killed mid-write): the reaper
                        # respawns the worker with a fresh queue, and
                        # the other workers' queues are untouched.
                        traceback.print_exc()
                        break
                    drained += 1
                    self._handle_message(message)
            if drained:
                continue
            # Idle tick.  The stop flag is honoured only once every
            # queue is drained, so the workers' farewell "stats"
            # messages are always processed.
            if self._collector_stop.is_set():
                return
            self._reap_dead_workers()
            self._poll_cancel_probes()
            self._wait_for_messages(queues, timeout=0.5)

    def _handle_message(self, message) -> None:
        # A handler bug (or a failing store write) must never kill
        # the collector — a dead collector hangs every handle and
        # shutdown(wait=True) forever.
        kind = message[0]
        try:
            if kind == "progress":
                _, worker_id, job_id, event = message
                self._on_progress(job_id, event)
            elif kind == "done":
                _, worker_id, job_id, result, stats = message
                self._on_done(worker_id, job_id, result, stats)
            elif kind == "error":
                _, worker_id, job_id, text = message
                self._on_error(worker_id, job_id, text)
            elif kind == "stats":
                _, worker_id, stats = message
                with self._lock:
                    self._workers[worker_id].stats = stats
        except Exception:  # pragma: no cover - defensive
            traceback.print_exc()

    @staticmethod
    def _wait_for_messages(queues, timeout: float) -> None:
        """Block until some worker's result pipe has data, or timeout.

        ``multiprocessing.connection.wait`` on the queues' read pipes
        keeps result delivery prompt without a busy poll; the plain
        sleep is the fallback for a queue implementation without an
        exposed reader pipe.
        """
        readers = [
            reader
            for reader in (getattr(q, "_reader", None) for q in queues)
            if reader is not None
        ]
        if not readers:  # pragma: no cover - non-CPython fallback
            time.sleep(min(timeout, 0.05))
            return
        try:
            multiprocessing.connection.wait(readers, timeout=timeout)
        except OSError:  # pragma: no cover - queue torn down mid-wait
            time.sleep(0.01)

    def _reap_dead_workers(self) -> None:
        """Recover from workers that died without replying.

        Only in-worker Python exceptions come back as ``error``
        messages; an OOM kill or segfault leaves the job unanswered, so
        the collector's idle tick checks process liveness.  Each dead
        worker is *respawned* (fresh process, fresh task queue — the old
        queue may hold undelivered messages the crash poisoned) and its
        orphaned jobs are *retried* with exponential backoff, up to
        :attr:`retry_max_attempts` dispatches, after which a job is
        quarantined and failed.  Level checkpoints make the retry cheap:
        the replacement run resumes from the last level the dead
        worker's session journalled.  If every worker is dead and none
        can be respawned (the pool is closing), still-queued jobs are
        failed so their handles never block forever.
        """
        orphaned: List[Job] = []
        stranded: List[Job] = []
        respawn: List[_WorkerState] = []
        with self._lock:
            # Reaping must keep working while the pool is closing:
            # ``shutdown(wait=True)`` blocks on the live-job count, and
            # a worker that died mid-job can only be drained here.
            closing = self._closing
            for worker in self._workers:
                if worker.dead or worker.process.is_alive():
                    continue
                worker.dead = True
                for job_id in sorted(worker.inflight):
                    job = self._jobs_by_id.pop(job_id, None)
                    self._cancel_events.pop(job_id, None)
                    self._preempt_events.pop(job_id, None)
                    self._dispatched_at.pop(job_id, None)
                    self._pending_final_events.pop(job_id, None)
                    self._parent_spans.pop(job_id, None)
                    if job is not None:
                        orphaned.append(job)
                worker.inflight.clear()
                worker.load = 0
                if not closing:
                    respawn.append(worker)
            if all(w.dead for w in self._workers) and not respawn:
                for job in self.queue.pending_in_order():
                    if self.queue.mark_running(job, -1):
                        stranded.append(job)
                        self.stats["failed"] += 1
        for worker in respawn:
            self._respawn_worker(worker)
        for job in stranded:
            self.queue.fail(
                job, "worker process died without reporting a result"
            )
        for job in orphaned:
            self._retry_or_fail(
                job, "worker process died without reporting a result"
            )
        if orphaned or respawn:
            self._dispatch()

    def _respawn_worker(self, worker: "_WorkerState") -> None:
        """Replace a dead worker's process and both its queues — the
        crash may have poisoned either one's lock or stream."""
        worker.task_queue.close()
        worker.task_queue.cancel_join_thread()
        worker.result_queue.close()
        worker.result_queue.cancel_join_thread()
        task_queue = self._mp.Queue()
        result_queue = self._mp.Queue()
        process = self._spawn_process(
            worker.worker_id, task_queue, result_queue
        )
        with self._lock:
            worker.process = process
            worker.task_queue = task_queue
            worker.result_queue = result_queue
            # The replacement session starts cold; with a store it
            # warm-starts from disk, but the affinity map must not
            # promise memory-warmth the new process does not have.
            worker.warm.clear()
            worker.dead = False
            self.stats["respawns"] += 1

    # ------------------------------------------------------------------
    # Retry with backoff (worker deaths only — in-worker exceptions are
    # deterministic and fail immediately via _on_error)
    # ------------------------------------------------------------------
    def _backoff_delay(self, round_number: int) -> float:
        """The jittered exponential delay of backoff round ``n`` (1-based).

        The jitter de-synchronises jobs backed off together — every
        worker death or preemption wave orphans several jobs at once,
        and without it they would all requeue in lockstep and contend
        for the same freed capacity again.
        """
        delay = self.retry_backoff_s * (2 ** max(0, round_number - 1))
        if self.retry_jitter:
            delay *= 1.0 + random.random() * self.retry_jitter
        return delay

    def _retry_or_fail(self, job: Job, error: str) -> None:
        with self._lock:
            if job.finished:
                return  # a racing cancellation already settled it
            if job.attempts < self.retry_max_attempts:
                self.stats["retries"] += 1
                delay = self._backoff_delay(job.attempts)
                timer = threading.Timer(delay, self._requeue_job, args=(job,))
                timer.daemon = True
                self._retrying[job.job_id] = (job, timer)
                timer.start()
                return
            self.stats["failed"] += 1
        self._quarantine(job, error)
        self.queue.fail(job, "%s (attempts=%d)" % (error, job.attempts))

    def _requeue_job(
        self, job: Job, priority: Optional[int] = PRIORITY_HIGH
    ) -> None:
        """Timer body: put a backed-off job back in the queue.

        A crash retry is *escalated* to high priority — the job (and
        every handle joined to it) has already waited out a full
        attempt, so it must not queue behind traffic that arrived after
        it.  A *preempted* job passes ``priority=None`` instead: it
        yielded on purpose and resumes at its prior priority (jumping
        the interactive lane it yielded to would defeat the point).
        """
        with self._lock:
            self._retrying.pop(job.job_id, None)
            stopped = not self._started
        if stopped:
            self.queue.fail(
                job,
                "pool shut down before the job completed (attempts=%d)"
                % job.attempts,
            )
            return
        if self.queue.requeue(job, priority=priority):
            self._dispatch()

    def _quarantine(self, job: Job, error: str) -> None:
        """Record a poison job (kills every worker it touches) on disk."""
        quarantined_at = time.time()
        if self.store_dir is None:
            with self._lock:
                self.stats["quarantined"] += 1
                self.last_quarantine_at = quarantined_at
            return
        record = {
            "job_id": job.job_id,
            "fingerprint": job.fingerprint,
            "attempts": job.attempts,
            "error": error,
            "quarantined_at": quarantined_at,
            "request": job.wire.to_json_dict(),
        }
        path = (
            Path(self.store_dir)
            / QUARANTINE_SUBDIR
            / ("%s.json" % job.fingerprint)
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                path,
                json.dumps(record, indent=2, sort_keys=True).encode("utf-8"),
            )
        except OSError:  # pragma: no cover - the answer still fails below
            traceback.print_exc()
        with self._lock:
            self.stats["quarantined"] += 1
            self.last_quarantine_at = quarantined_at

    def _poll_cancel_probes(self, job: Optional[Job] = None) -> None:
        """Deliver cancellations requested through request-level
        ``cancel`` probes (polled parent-side; see :meth:`submit`)."""
        if job is not None:
            jobs = [job]
        else:
            with self._lock:
                jobs = [j for j in self._jobs_by_id.values()
                        if j.cancel_probes]
            jobs.extend(j for j in self.queue.pending_in_order()
                        if j.cancel_probes and j not in jobs)
        for candidate in jobs:
            if candidate.finished:
                continue
            try:
                fired = any(probe() for probe in candidate.cancel_probes)
            except Exception:  # pragma: no cover - user probe bug
                traceback.print_exc()
                continue
            if fired:
                JobHandle(candidate, self.queue).cancel()

    def _emit_progress(self, job: Job, event) -> None:
        for callback in list(job.progress_callbacks):
            try:
                callback(event)
            except Exception:  # pragma: no cover - user callback bug
                traceback.print_exc()

    def _on_progress(self, job_id: str, event) -> None:
        with self._lock:
            job = self._jobs_by_id.get(job_id)
        if job is None:
            return
        if getattr(event, "done", False):
            # Hold the final event until the result arrives, then emit
            # it with the incumbent re-attached (see _worker_main).
            with self._lock:
                self._pending_final_events[job_id] = event
            return
        self._emit_progress(job, event)
        if job.cancel_probes:
            self._poll_cancel_probes(job)

    def _release_worker(
        self, worker_id: int, job_id: str, stats, slots: int = 1
    ) -> None:
        worker = self._workers[worker_id]
        if job_id in worker.inflight:
            worker.inflight.discard(job_id)
            worker.load = max(0, worker.load - slots)
        worker.served += 1
        if stats:
            worker.stats = stats
        self._cancel_events.pop(job_id, None)
        self._preempt_events.pop(job_id, None)
        self._dispatched_at.pop(job_id, None)

    def _on_done(self, worker_id, job_id, result, stats) -> None:
        preempted = result.status == "preempted"
        with self._lock:
            job = self._jobs_by_id.pop(job_id, None)
            self._release_worker(
                worker_id,
                job_id,
                stats,
                slots=job.slots if job is not None else 1,
            )
            final_event = self._pending_final_events.pop(job_id, None)
            if not preempted:
                parent_spans = self._parent_spans.pop(job_id, [])
                self._submitted_at.pop(job_id, None)
                self.stats["completed"] += 1
        if job is None:  # pragma: no cover - defensive
            return
        if preempted:
            self._on_preempted(job)
            return
        if isinstance(result.extra, dict):
            result.extra["attempts"] = job.attempts
            result.extra["preemptions"] = job.preemptions
        ctx = job.wire.trace_ctx
        # Persist deterministic outcomes only: a cancelled verdict is an
        # operational accident, not the content-addressed answer.  A
        # failing store write (full disk) must not block the answer.
        if self.result_store is not None and result.status != "cancelled":
            write_started = time.time() if ctx is not None else None
            try:
                self.result_store.save_result(job.fingerprint, result)
            except OSError:
                traceback.print_exc()
            if write_started is not None:
                parent_spans.append(
                    {
                        "name": "result-store-write",
                        "trace_id": ctx.trace_id,
                        "span_id": new_span_id(),
                        "parent_id": ctx.parent_span_id,
                        "start_s": write_started,
                        "end_s": time.time(),
                        "process": "pool",
                        "args": {"fingerprint": job.fingerprint},
                    }
                )
        # Parent-side spans join the worker's trace after persistence —
        # queue wait and store writes are per-submission operational
        # events, not part of the content-addressed answer.
        if parent_spans and isinstance(result.extra, dict):
            trace = result.extra.get("trace")
            if isinstance(trace, dict):
                trace["spans"] = list(trace.get("spans") or []) + parent_spans
                trace["stages"] = stage_summary(trace["spans"])
            elif ctx is not None:
                result.extra["trace"] = trace_payload(
                    ctx.trace_id, parent_spans
                )
        self.queue.finish(job, result)
        if final_event is not None:
            self._emit_progress(
                job, dataclasses_replace(final_event, incumbent=result)
            )
        self._dispatch()

    def _on_preempted(self, job: Job) -> None:
        """A worker handed a job back mid-run: requeue it to resume.

        The job goes back at its *prior* priority after a jittered
        backoff (it yielded the worker on purpose; jumping ahead of the
        traffic it yielded to would defeat the preemption).  The
        interrupted dispatch is refunded from the crash-retry budget —
        preemption is scheduling, not failure, and must never push a
        job toward quarantine.  The checkpoint store holds its partial
        progress, so the resumed attempt loses at most one checkpoint
        interval of work.
        """
        with self._lock:
            if job.finished:  # a racing cancellation settled it
                self._dispatch()
                return
            self.stats["preemptions"] += 1
            job.preemptions += 1
            job.attempts = max(0, job.attempts - 1)
            ctx = job.wire.trace_ctx
            if ctx is not None:
                now = time.time()
                self._parent_spans.setdefault(job.job_id, []).append(
                    {
                        "name": "preempted",
                        "trace_id": ctx.trace_id,
                        "span_id": new_span_id(),
                        "parent_id": ctx.parent_span_id,
                        "start_s": now,
                        "end_s": now,
                        "process": "pool",
                        "args": {
                            "job_id": job.job_id,
                            "preemptions": job.preemptions,
                        },
                    }
                )
            delay = self._backoff_delay(job.preemptions)
            timer = threading.Timer(
                delay, self._requeue_job, args=(job, None)
            )
            timer.daemon = True
            self._retrying[job.job_id] = (job, timer)
            timer.start()
        self._dispatch()

    def _on_error(self, worker_id, job_id, text) -> None:
        with self._lock:
            job = self._jobs_by_id.pop(job_id, None)
            self._release_worker(
                worker_id,
                job_id,
                None,
                slots=job.slots if job is not None else 1,
            )
            self._pending_final_events.pop(job_id, None)
            self._parent_spans.pop(job_id, None)
            self._submitted_at.pop(job_id, None)
            self.stats["failed"] += 1
        if job is not None:
            self.queue.fail(job, text)
        self._dispatch()

    # ------------------------------------------------------------------
    # Introspection for the health/metrics endpoints
    # ------------------------------------------------------------------
    def liveness(self) -> Dict[str, object]:
        """Process liveness and load, as one JSON-ready snapshot.

        ``capacity`` is the scheduler-slot total (``alive × depth``) the
        admission layer sizes its quotas against; ``load`` the
        slot-weighted in-flight sum, so ``load / capacity`` is the
        pool's utilisation.
        """
        with self._lock:
            workers = list(self._workers)
            alive = sum(
                1
                for w in workers
                if not w.dead and w.process is not None
                and w.process.is_alive()
            )
            load = sum(w.load for w in workers if not w.dead)
        return {
            "started": self._started,
            "workers": len(workers),
            "alive": alive,
            "dead": len(workers) - alive,
            "load": load,
            "capacity": alive * self.per_worker_depth,
            "last_quarantine_at": self.last_quarantine_at,
        }

    def quarantine_records(self) -> List[Dict[str, object]]:
        """The quarantined poison jobs on disk (ids, attempts, errors).

        Surfaced through ``GET /healthz`` so an operator sees poisoned
        jobs without shell access to the store directory.  Unreadable
        records are reported as such rather than hidden — quarantine is
        exactly the place where damaged artifacts congregate.
        """
        if self.store_dir is None:
            return []
        quarantine_dir = Path(self.store_dir) / QUARANTINE_SUBDIR
        records: List[Dict[str, object]] = []
        try:
            paths = sorted(quarantine_dir.glob("*.json"))
        except OSError:
            return []
        for path in paths:
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                records.append(
                    {"fingerprint": path.stem, "error": "unreadable record"}
                )
                continue
            records.append(
                {
                    "fingerprint": record.get("fingerprint", path.stem),
                    "job_id": record.get("job_id"),
                    "attempts": record.get("attempts"),
                    "error": record.get("error"),
                    "quarantined_at": record.get("quarantined_at"),
                }
            )
        return records

    # ------------------------------------------------------------------
    def worker_stats(self) -> List[Dict[str, object]]:
        """Per-worker bookkeeping (served counts, warm sets, session
        stats as of the last completed job or shutdown)."""
        with self._lock:
            return [
                {
                    "worker_id": w.worker_id,
                    "served": w.served,
                    "load": w.load,
                    "warm": list(w.warm.keys()),
                    "session": dict(w.stats),
                }
                for w in self._workers
            ]
