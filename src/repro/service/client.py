"""The client facade of the concurrent synthesis service.

:class:`ServiceClient` owns a :class:`~repro.service.pool.WorkerPool`
and exposes the session-flavoured surface the rest of the codebase
already speaks — ``synthesize`` / ``synthesize_many`` / ``submit`` —
so call-sites can swap a :class:`~repro.api.session.Session` for a
multi-core, restart-durable service by changing one constructor::

    with ServiceClient(workers=4, store_dir="service-state") as client:
        results = client.synthesize_many(specs)      # pool-parallel
        handle = client.submit(spec, priority=PRIORITY_HIGH)
        handle.cancel()
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..api.config import EngineConfig
from ..api.registry import BackendRegistry
from ..core.result import SynthesisResult
from .pool import WorkerPool
from .queue import JobHandle
from .wire import PRIORITY_NORMAL


class ServiceClient:
    """A long-lived, multi-process synthesis service (see module doc)."""

    def __init__(
        self,
        workers: int = 4,
        config: Optional[EngineConfig] = None,
        registry: Optional[BackendRegistry] = None,
        store_dir: Optional[str] = None,
        per_worker_depth: int = 2,
        reuse_results: bool = False,
        max_staged_per_worker: Optional[int] = 64,
        retry_max_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        retry_jitter: float = 0.25,
        checkpoints: bool = True,
        partial_every_candidates: Optional[int] = None,
        partial_every_s: Optional[float] = None,
    ) -> None:
        pool_kwargs = {}
        # None keeps the pool's defaults (the store-backed session's
        # cadence constants) rather than disabling the intervals.
        if partial_every_candidates is not None:
            pool_kwargs["partial_every_candidates"] = partial_every_candidates
        if partial_every_s is not None:
            pool_kwargs["partial_every_s"] = partial_every_s
        self.pool = WorkerPool(
            workers=workers,
            config=config,
            registry=registry,
            store_dir=store_dir,
            per_worker_depth=per_worker_depth,
            reuse_results=reuse_results,
            max_staged_per_worker=max_staged_per_worker,
            retry_max_attempts=retry_max_attempts,
            retry_backoff_s=retry_backoff_s,
            retry_jitter=retry_jitter,
            checkpoints=checkpoints,
            **pool_kwargs,
        )

    # ------------------------------------------------------------------
    def start(self) -> "ServiceClient":
        """Start the underlying pool (idempotent)."""
        self.pool.start()
        return self

    def close(self, cancel_pending: bool = False) -> None:
        """Drain and stop the pool."""
        self.pool.shutdown(wait=not cancel_pending,
                           cancel_pending=cancel_pending)

    def __enter__(self) -> "ServiceClient":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.pool.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------------
    def submit(
        self,
        request,
        priority: int = PRIORITY_NORMAL,
        on_progress: Optional[Callable[[object], None]] = None,
    ) -> JobHandle:
        """Submit without blocking; returns a :class:`JobHandle`."""
        return self.pool.submit(
            request, priority=priority, on_progress=on_progress
        )

    def synthesize(
        self,
        request,
        priority: int = PRIORITY_NORMAL,
        timeout: Optional[float] = None,
    ) -> SynthesisResult:
        """Serve one request through the pool, blocking for the answer."""
        return self.submit(request, priority=priority).result(timeout=timeout)

    def synthesize_many(
        self,
        requests: Iterable[object],
        priority: int = PRIORITY_NORMAL,
        timeout: Optional[float] = None,
    ) -> List[SynthesisResult]:
        """Serve a batch pool-parallel; results in request order."""
        return self.pool.map(requests, priority=priority, timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job by id."""
        return self.pool.cancel(job_id)

    def preempt(self, job_id: str) -> bool:
        """Ask a running job to checkpoint and yield its worker."""
        return self.pool.preempt(job_id)

    def preempt_longest_running(self) -> Optional[str]:
        """Preempt the oldest running attempt; returns its job id."""
        return self.pool.preempt_longest_running()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs queued but not yet dispatched to a worker."""
        return len(self.pool.queue)

    @property
    def live_jobs(self) -> int:
        """Jobs queued or running (the admission layer's backlog)."""
        return self.pool.queue.live_jobs

    def liveness(self) -> Dict[str, object]:
        """Pool process liveness/load (see :meth:`WorkerPool.liveness`)."""
        return self.pool.liveness()

    def quarantine_records(self):
        """Quarantined poison jobs on disk (ids + attempts + errors)."""
        return self.pool.quarantine_records()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Scheduler counters (affinity hits, steals, dedupe, …)."""
        merged = dict(self.pool.stats)
        merged["submitted"] = self.pool.queue.submitted
        merged["deduplicated"] = self.pool.queue.deduplicated
        merged["cancelled"] = self.pool.queue.cancelled
        return merged

    def worker_stats(self) -> List[Dict[str, object]]:
        """Per-worker served counts, warm sets, and session stats."""
        return self.pool.worker_stats()
