"""Wire forms of the service layer: picklable jobs and content hashes.

A :class:`~repro.api.config.SynthesisRequest` may carry live hooks
(``on_progress``/``cancel``) that cannot cross a process boundary.
:class:`WireRequest` is the hook-free, picklable projection the queue,
the worker pool, and the file-based ``repro submit`` protocol all share;
it round-trips to a canonical JSON dict, and its SHA-256 fingerprint
over that dict is the *content address* of the question — the key for
in-flight deduplication and for the persistent result store.

The staging fingerprint hashes only what staging depends on — the
deduplicated example-string set and the alphabet (the same key
:func:`repro.api.session.staging_key_of` uses in memory) — so requests
over the same strings share one staging artifact on disk and one *warm*
worker in the pool's affinity scheduler.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..api.config import EngineConfig, SynthesisRequest
from ..obs.trace import TraceContext
from ..regex.cost import CostFunction
from ..spec import Spec

#: Scheduling priorities: lower values run earlier; ties are FIFO.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 10
PRIORITY_LOW = 20


def _sha256_of(payload: object) -> str:
    """Canonical-JSON SHA-256 of a JSON-serialisable payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def staging_fingerprint(spec: Spec) -> str:
    """Content address of the staging artifacts a spec needs.

    Depends only on the deduplicated example-string set and the
    alphabet — exactly what ``ic(P ∪ N)``, the guide table and its flat
    view are functions of.  Partitions of the same word set therefore
    share one fingerprint (and hence one store entry and one warm
    worker).
    """
    return _sha256_of(
        {"words": sorted(set(spec.all_words)), "alphabet": list(spec.alphabet)}
    )


@dataclass(frozen=True)
class WireRequest:
    """A hook-free synthesis request that pickles and JSON-round-trips.

    ``config`` is always concrete (never None) and its backend name is
    expected to be *canonical* — :meth:`of` resolves aliases through a
    registry so ``"gpu"`` and ``"vector"`` submissions deduplicate
    against each other.
    """

    spec: Spec
    cost_fn: Optional[CostFunction] = None
    max_cost: Optional[int] = None
    allowed_error: float = 0.0
    max_generated: Optional[int] = None
    time_limit: Optional[float] = None
    config: EngineConfig = EngineConfig()
    #: Observability identity (trace id + parent span); rides the wire
    #: so worker processes record spans against the submitter's trace,
    #: but never enters the fingerprint (it is not part of the question).
    trace_ctx: Optional[TraceContext] = None

    @classmethod
    def of(cls, request, default_config=None, registry=None) -> "WireRequest":
        """Project a request (or spec, or pair) onto the wire.

        Hooks are dropped — progress and cancellation are service-side
        concerns, re-attached by the pool on the parent side.
        """
        if isinstance(request, cls):
            if registry is not None:
                canonical = registry.canonical(request.config.backend)
                if canonical != request.config.backend:
                    return dataclasses.replace(
                        request,
                        config=request.config.replace(backend=canonical),
                    )
            return request
        request = SynthesisRequest.of(request)
        config = request.config if request.config is not None else default_config
        if config is None:
            config = EngineConfig()
        if registry is not None:
            config = config.replace(backend=registry.canonical(config.backend))
        return cls(
            spec=request.spec,
            cost_fn=request.cost_fn,
            max_cost=request.max_cost,
            allowed_error=request.allowed_error,
            max_generated=request.max_generated,
            time_limit=request.time_limit,
            config=config,
            trace_ctx=request.trace_ctx,
        )

    def to_request(self) -> SynthesisRequest:
        """The :class:`SynthesisRequest` a worker actually serves."""
        return SynthesisRequest(
            spec=self.spec,
            cost_fn=self.cost_fn,
            max_cost=self.max_cost,
            allowed_error=self.allowed_error,
            max_generated=self.max_generated,
            time_limit=self.time_limit,
            config=self.config,
            trace_ctx=self.trace_ctx,
        )

    # ------------------------------------------------------------------
    # Canonical JSON codec (shared by ``repro serve``/``repro submit``)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable canonical form (drives the fingerprint)."""
        payload: Dict[str, object] = {
            "spec": self.spec.to_dict(),
            "cost_fn": list(self.cost_fn.as_tuple()) if self.cost_fn else None,
            "max_cost": self.max_cost,
            "allowed_error": self.allowed_error,
            "max_generated": self.max_generated,
            "time_limit": self.time_limit,
            "config": {
                "backend": self.config.backend,
                "max_cache_size": self.config.max_cache_size,
                "use_guide_table": self.config.use_guide_table,
                "check_uniqueness": self.config.check_uniqueness,
                "max_generated": self.config.max_generated,
                "shard_workers": self.config.shard_workers,
                "trace": self.config.trace,
            },
        }
        # Only emitted when present so untraced payloads keep the exact
        # shape every pre-tracing client and store produced.
        if self.trace_ctx is not None:
            payload["trace_ctx"] = self.trace_ctx.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "WireRequest":
        """Inverse of :meth:`to_json_dict` (tolerates omitted fields)."""
        spec = Spec.from_dict(data["spec"])
        cost_values = data.get("cost_fn")
        config_data = dict(data.get("config") or {})
        return cls(
            spec=spec,
            cost_fn=(
                CostFunction.from_tuple(tuple(cost_values))
                if cost_values
                else None
            ),
            max_cost=data.get("max_cost"),
            allowed_error=float(data.get("allowed_error") or 0.0),
            max_generated=data.get("max_generated"),
            time_limit=data.get("time_limit"),
            config=EngineConfig(
                backend=config_data.get("backend", "vector"),
                max_cache_size=config_data.get("max_cache_size"),
                use_guide_table=config_data.get("use_guide_table", True),
                check_uniqueness=config_data.get("check_uniqueness", True),
                max_generated=config_data.get("max_generated"),
                shard_workers=int(config_data.get("shard_workers") or 1),
                trace=bool(config_data.get("trace", False)),
            ),
            trace_ctx=TraceContext.from_json_dict(data.get("trace_ctx")),
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content address of the whole question (spec + config + knobs).

        Two submissions with equal fingerprints would provably receive
        bit-identical answers, so the queue collapses them in flight and
        the result store answers repeats across restarts.  Pure
        *execution* knobs are excluded for exactly that reason:
        ``shard_workers`` changes how fast the answer arrives, never the
        answer (the sharded engine is bit-identical by construction), so
        submissions differing only in fan-out share one fingerprint —
        and pre-sharding stores keep answering their old requests.
        ``trace``/``trace_ctx`` are excluded on the same grounds: a
        traced run answers bit-identically, so it must dedupe against
        (and be answered by) untraced runs of the same question.
        """
        payload = self.to_json_dict()
        payload.pop("trace_ctx", None)
        payload["config"] = {
            key: value
            for key, value in payload["config"].items()
            if key not in ("shard_workers", "trace")
        }
        return _sha256_of(payload)

    def staging_fingerprint(self) -> str:
        """Content address of the staging this request needs."""
        return staging_fingerprint(self.spec)

    def effective_cost_fn(self) -> CostFunction:
        """The cost function, defaulted to uniform."""
        return self.cost_fn if self.cost_fn is not None else CostFunction.uniform()

    def effective_max_cost(self) -> int:
        """The cost ceiling, defaulted like the session layer's."""
        return self.to_request().effective_max_cost(self.effective_cost_fn())
