"""Durable level checkpoints: an append-only journal plus a manifest.

The enumeration is strictly level-by-level over cost, which makes each
*completed* cost level a natural checkpoint (the multicore-recovery
recipe: lightweight logging, recovery replays only the tail).  The
:class:`CheckpointStore` persists
:class:`~repro.core.engine.LevelCheckpoint` snapshots per *checkpoint
key* — the content address of an enumeration, hashed over the staging
fingerprint, the cost function, the guide-table toggle and the
:func:`~repro.core.cache.cache_version_fingerprint` (so a layout or
dedupe change invalidates stale checkpoints wholesale, never replaying
rows under the wrong interpretation).  The spec's masks and the backend
are deliberately **excluded**: enumeration is spec-independent and
bit-identical across backends, so one query's checkpoints serve every
query over the same universe and cost function, from either engine.

On-disk layout, per key::

    <key>.journal        RLVL | u64 payload-length | sha256 | pickle …
    <key>.manifest.json  {"records": [{cost, offset, length, …}, …]}
    <key>.lock           flock'd around append rounds

Crash safety is the classic journal/manifest split: a record is
appended and fsynced *before* the manifest is atomically rewritten to
mention it.  A crash between the two leaves orphan bytes after the last
manifest offset — skipped forever, harmlessly.  A torn or bit-rotten
record fails its digest on load; the loader serves the valid
consecutive prefix and rewrites the manifest down to it (self-healing),
so recovery is never worse than a shorter resume.  Concurrent appenders
(pool siblings finishing the same level) serialise on the lock file and
dedupe by cost, and since enumeration is deterministic they would write
identical payloads anyway.

Alongside completed levels the journal also carries **partial-level**
records (:class:`~repro.core.engine.PartialLevelCheckpoint`): the
emit-loop progress inside the level currently being built, written at
the engine's safe points so a SIGKILL — or a preemption — mid-wide-level
resumes from the last partial instead of the level start.  Manifest
records carry ``"kind": "level" | "partial"`` (absent means level, for
journals written before partials existed).  Only the newest partial is
manifest-reachable; superseded partials become orphan journal bytes like
any torn append, and a completed level drops every partial at or below
its cost.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from ..core.cache import cache_version_fingerprint
from ..core.engine import LevelCheckpoint, PartialLevelCheckpoint
from ..regex.cost import CostFunction
from ..testing.faults import fault_point
from .store import atomic_write_bytes
from .wire import _sha256_of

try:  # POSIX only; the store degrades to lock-free on other platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

_RECORD_MAGIC = b"RLVL"
_HEADER = struct.Struct("<4sQ")
_DIGEST_SIZE = hashlib.sha256().digest_size


def checkpoint_key(
    staging_fp: str, cost_fn: CostFunction, use_guide_table: bool = True
) -> str:
    """Content address of one enumeration's level sequence.

    Spec masks, budgets and the backend are excluded on purpose — none
    of them changes what a completed level contains (the spec only
    decides when the sweep *stops*, budgets only where it is cut, and
    the engines are bit-identical).
    """
    return _sha256_of(
        {
            "staging": staging_fp,
            "cost_fn": list(cost_fn.as_tuple()),
            "use_guide_table": bool(use_guide_table),
            "cache_version": cache_version_fingerprint(),
        }
    )


class CheckpointStore:
    """A directory of per-key level journals (see the module docstring)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _journal_path(self, key: str) -> Path:
        return self.root / ("%s.journal" % key)

    def _manifest_path(self, key: str) -> Path:
        return self.root / ("%s.manifest.json" % key)

    @contextmanager
    def _locked(self, key: str):
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.root / ("%s.lock" % key)
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            # The kernel drops the flock when the fd closes — including
            # on SIGKILL, which is the whole point of using flock here.
            os.close(fd)

    def _read_manifest(self, key: str) -> List[dict]:
        """The manifest's record list (empty on absent/corrupt manifest)."""
        try:
            data = json.loads(
                self._manifest_path(key).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return []
        records = data.get("records") if isinstance(data, dict) else None
        if not isinstance(records, list):
            return []
        out = []
        for record in records:
            if not isinstance(record, dict):
                return out
            try:
                kind = record.get("kind", "level")
                if kind not in ("level", "partial"):
                    return out
                out.append(
                    {
                        "cost": int(record["cost"]),
                        "offset": int(record["offset"]),
                        "length": int(record["length"]),
                        "generated_total": int(record["generated_total"]),
                        "kind": kind,
                    }
                )
            except (KeyError, TypeError, ValueError):
                return out
        return out

    @staticmethod
    def _record_order(record: dict):
        # Levels sort before a partial of the same cost (a partial always
        # describes the level right after the last complete one).
        return (record["cost"], 0 if record["kind"] == "level" else 1)

    def _write_manifest(self, key: str, records: List[dict]) -> None:
        payload = json.dumps(
            {"version": 1, "records": records}, indent=2, sort_keys=True
        )
        atomic_write_bytes(self._manifest_path(key), payload.encode("utf-8"))

    # ------------------------------------------------------------------
    def levels_recorded(self, key: str) -> List[int]:
        """Level costs the manifest currently lists (no payload reads)."""
        return [
            record["cost"]
            for record in self._read_manifest(key)
            if record["kind"] == "level"
        ]

    def _journal_record(self, key: str, payload: bytes) -> int:
        """Append one digest-framed record; returns its journal offset."""
        digest = hashlib.sha256(payload).digest()
        with open(self._journal_path(key), "ab") as handle:
            offset = handle.tell()
            handle.write(_HEADER.pack(_RECORD_MAGIC, len(payload)))
            handle.write(digest)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return offset

    def append_level(self, key: str, level: LevelCheckpoint) -> bool:
        """Journal one completed level; returns False when its cost is
        already recorded (a pool sibling got there first).

        A completed level supersedes every partial at or below its cost:
        those manifest records are dropped in the same atomic rewrite,
        their journal bytes becoming unreachable orphans.
        """
        with self._locked(key):
            records = self._read_manifest(key)
            if any(
                record["cost"] == level.cost and record["kind"] == "level"
                for record in records
            ):
                return False
            payload = pickle.dumps(
                level.to_payload(), protocol=pickle.HIGHEST_PROTOCOL
            )
            offset = self._journal_record(key, payload)
            # A crash here (the injection point) loses only the manifest
            # update: the journal bytes become unreachable orphans and
            # the level is re-journalled at the end of the file later.
            fault_point("checkpoint.append")
            records = [
                record
                for record in records
                if not (
                    record["kind"] == "partial"
                    and record["cost"] <= level.cost
                )
            ]
            records.append(
                {
                    "cost": int(level.cost),
                    "offset": offset,
                    "length": len(payload),
                    "generated_total": int(level.generated_total),
                    "kind": "level",
                }
            )
            records.sort(key=self._record_order)
            self._write_manifest(key, records)
            return True

    def append_partial(
        self, key: str, partial: PartialLevelCheckpoint
    ) -> bool:
        """Journal the current mid-level progress snapshot.

        Keeps at most one partial per key — the newest one replaces any
        older partial in the manifest.  Returns False when a completed
        level already covers the partial's cost (nothing to resume).
        """
        with self._locked(key):
            records = self._read_manifest(key)
            if any(
                record["kind"] == "level" and record["cost"] >= partial.cost
                for record in records
            ):
                return False
            payload = pickle.dumps(
                partial.to_payload(), protocol=pickle.HIGHEST_PROTOCOL
            )
            offset = self._journal_record(key, payload)
            # Same crash window as append_level: dying here orphans the
            # fresh bytes and keeps the previous partial reachable.
            fault_point("checkpoint.append_partial")
            records = [
                record for record in records if record["kind"] != "partial"
            ]
            records.append(
                {
                    "cost": int(partial.cost),
                    "offset": offset,
                    "length": len(payload),
                    "generated_total": int(partial.generated_total),
                    "kind": "partial",
                }
            )
            records.sort(key=self._record_order)
            self._write_manifest(key, records)
            return True

    def _read_record(self, handle, record: dict, cls=LevelCheckpoint):
        """One verified journal record, or None when it fails any check."""
        try:
            handle.seek(record["offset"])
            header = handle.read(_HEADER.size)
            if len(header) != _HEADER.size:
                return None
            magic, length = _HEADER.unpack(header)
            if magic != _RECORD_MAGIC or length != record["length"]:
                return None
            digest = handle.read(_DIGEST_SIZE)
            payload = handle.read(length)
            if len(digest) != _DIGEST_SIZE or len(payload) != length:
                return None
            if hashlib.sha256(payload).digest() != digest:
                return None
            level = cls.from_payload(pickle.loads(payload))
        except Exception:
            return None
        if level.cost != record["cost"]:
            return None
        return level

    def load_levels(
        self, key: str, upto_cost: Optional[int] = None
    ) -> List[LevelCheckpoint]:
        """The valid consecutive level prefix recorded under ``key``.

        Verifies every record (magic, length, digest, cost) and stops at
        the first failure or cost gap, so the result is always a
        replayable prefix.  When damage shortened the prefix, the
        manifest is rewritten to match (self-healing) — the bad tail is
        simply re-enumerated and re-journalled by the next run.
        """
        records = [
            record
            for record in self._read_manifest(key)
            if record["kind"] == "level"
        ]
        if not records:
            return []
        levels: List[LevelCheckpoint] = []
        kept: List[dict] = []
        try:
            handle = open(self._journal_path(key), "rb")
        except OSError:
            handle = None
        if handle is None:
            self._heal(key, [])
            return []
        with handle:
            for record in records:
                if levels and record["cost"] != levels[-1].cost + 1:
                    break
                level = self._read_record(handle, record)
                if level is None:
                    break
                levels.append(level)
                kept.append(record)
        if len(kept) != len(records):
            self._heal(key, kept)
        if upto_cost is not None:
            levels = [level for level in levels if level.cost <= upto_cost]
        return levels

    def load_partial(self, key: str) -> Optional[PartialLevelCheckpoint]:
        """The manifest's partial record, verified, or None.

        A usable partial describes the cost right after the last
        *consecutive* complete level (the engine re-checks that before
        adopting it, so a stale or orphaned partial degrades to a
        level-start resume, never a wrong one).  A partial that fails
        its digest is dropped from the manifest on the spot — the level
        prefix stays intact.
        """
        records = self._read_manifest(key)
        partial_records = [r for r in records if r["kind"] == "partial"]
        if not partial_records:
            return None
        record = partial_records[-1]
        try:
            handle = open(self._journal_path(key), "rb")
        except OSError:
            return None
        with handle:
            partial = self._read_record(
                handle, record, cls=PartialLevelCheckpoint
            )
        if partial is None:
            # Torn or bit-rotten: drop just the partial record so the
            # next run resumes from the intact level prefix.
            try:
                with self._locked(key):
                    current = self._read_manifest(key)
                    survivors = [
                        r for r in current if r["kind"] != "partial"
                    ]
                    if len(survivors) != len(current):
                        self._write_manifest(key, survivors)
            except OSError:
                pass
            return None
        return partial

    # ------------------------------------------------------------------
    # GC / size budgeting
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Every checkpoint key with a journal on disk."""
        return sorted(path.stem for path in self.root.glob("*.journal"))

    def size_of(self, key: str) -> int:
        """Bytes this key holds on disk (journal + manifest)."""
        total = 0
        for path in (self._journal_path(key), self._manifest_path(key)):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> dict:
        """Evict journal/manifest pairs, least-recently-*written* first.

        A long-lived store accretes one journal per (universe, cost
        function) ever enumerated; ``prune`` keeps it inside a byte
        budget.  Recency is the journal's mtime — appends touch it, so
        a universe still receiving traffic keeps advancing while an
        abandoned one ages out.  ``max_age_s`` drops keys idle longer
        than that outright; ``max_bytes`` then evicts oldest-first until
        the remainder fits.  Evicting a checkpoint is always safe: the
        next query over that universe re-enumerates cold and re-journals.

        Returns ``{"removed_keys", "removed_bytes", "kept_keys",
        "kept_bytes"}``.
        """
        import time as _time

        current = _time.time() if now is None else now
        entries = []  # (mtime, key, bytes)
        for key in self.keys():
            try:
                mtime = self._journal_path(key).stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, key, self.size_of(key)))
        entries.sort()  # oldest first
        removed_keys = 0
        removed_bytes = 0
        survivors = []
        for mtime, key, size in entries:
            if max_age_s is not None and current - mtime > max_age_s:
                removed_bytes += self._remove(key, size)
                removed_keys += 1
            else:
                survivors.append((mtime, key, size))
        if max_bytes is not None:
            total = sum(size for _, _, size in survivors)
            while survivors and total > max_bytes:
                mtime, key, size = survivors.pop(0)
                total -= size
                removed_bytes += self._remove(key, size)
                removed_keys += 1
        return {
            "removed_keys": removed_keys,
            "removed_bytes": removed_bytes,
            "kept_keys": len(survivors),
            "kept_bytes": sum(size for _, _, size in survivors),
        }

    def _remove(self, key: str, size: int) -> int:
        """Delete one key's files under its lock; returns bytes freed."""
        with self._locked(key):
            for path in (
                self._journal_path(key),
                self._manifest_path(key),
            ):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            (self.root / ("%s.lock" % key)).unlink()
        except OSError:
            pass
        return size

    def _heal(self, key: str, kept: List[dict]) -> None:
        """Rewrite the manifest down to the verified prefix (best-effort)."""
        try:
            with self._locked(key):
                current = self._read_manifest(key)
                kept_costs = {record["cost"] for record in kept}
                # Another appender may have advanced the manifest since
                # we read it; only drop records we actually verified bad
                # (same offset/length as what we read).
                checked = {
                    (r["cost"], r["offset"], r["length"]) for r in kept
                }
                read_upto = max(kept_costs) if kept_costs else None
                survivors = []
                for record in current:
                    triple = (record["cost"], record["offset"], record["length"])
                    if triple in checked:
                        survivors.append(record)
                    elif read_upto is not None and record["cost"] <= read_upto:
                        survivors.append(record)
                    elif read_upto is None and kept:
                        survivors.append(record)
                self._write_manifest(key, survivors if kept else [])
        except OSError:
            pass
