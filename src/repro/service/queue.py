"""The service's job queue: priorities, in-flight dedup, cancellation.

Jobs are keyed by the :meth:`~repro.service.wire.WireRequest.fingerprint`
content address.  Submitting a fingerprint that is already queued or
running does not enqueue a second copy — the new handle simply *joins*
the live job and receives the same result object when it completes
(the answer is provably identical, so running it twice would only burn
a worker).  Cancellation is job-level: cancelling through any joined
handle cancels the shared job for all of them.

The queue is a passive, lock-protected structure driven by the pool's
scheduler thread; it never talks to workers itself.  Ordering is
``(priority, submission order)`` — lower priority values run earlier,
ties are FIFO — but the scheduler may *peek* the pending list out of
order to honour universe affinity (see
:meth:`JobQueue.pending_in_order`).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..api.progress import ProgressEvent
from ..core.result import SynthesisResult
from ..errors import ReproError
from .wire import PRIORITY_NORMAL, WireRequest

#: Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_CANCELLED = "cancelled"
JOB_FAILED = "failed"


class JobFailedError(ReproError):
    """Raised by :meth:`JobHandle.result` when the worker crashed."""


class Job:
    """One deduplicated unit of work (possibly joined by many handles)."""

    __slots__ = (
        "job_id",
        "fingerprint",
        "staging_fp",
        "slots",
        "wire",
        "priority",
        "seq",
        "state",
        "attempts",
        "preemptions",
        "worker_id",
        "result",
        "error",
        "progress_callbacks",
        "cancel_probes",
        "_finished",
    )

    def __init__(
        self,
        job_id: str,
        wire: WireRequest,
        priority: int,
        seq: int,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.fingerprint = (
            fingerprint if fingerprint is not None else wire.fingerprint()
        )
        self.staging_fp = wire.staging_fingerprint()
        #: Scheduler slots this job occupies on its worker: a sharded
        #: request (``config.shard_workers >= 2``) fans out inside the
        #: worker, so it claims that many slots of the worker's depth.
        self.slots = max(1, getattr(wire.config, "shard_workers", 1))
        self.wire = wire
        self.priority = priority
        self.seq = seq
        self.state = JOB_QUEUED
        #: Dispatch count — 1 on the first run, +1 per retry after a
        #: worker death (surfaced in the result's ``extra["attempts"]``).
        self.attempts = 0
        #: Times this job was preempted mid-run and requeued (surfaced
        #: in the result's ``extra["preemptions"]``).  Preemptions are
        #: deliberate scheduling, not failures: they never count
        #: against the retry budget.
        self.preemptions = 0
        self.worker_id: Optional[int] = None
        self.result: Optional[SynthesisResult] = None
        self.error: Optional[str] = None
        self.progress_callbacks: List[Callable[[object], None]] = []
        #: Parent-side cancellation probes (e.g. a request's own
        #: ``cancel`` token), polled by the pool between progress
        #: messages and on the collector's idle tick.
        self.cancel_probes: List[Callable[[], object]] = []
        self._finished = threading.Event()

    @property
    def sort_key(self):
        """Queue order: lower priority value first, then FIFO."""
        return (self.priority, self.seq)

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self._finished.is_set()

    def _finish(self) -> None:
        self._finished.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; False on timeout."""
        return self._finished.wait(timeout)


class JobHandle:
    """The caller's view of a submitted (possibly joined) job."""

    __slots__ = ("_job", "_queue", "deduplicated", "from_store")

    def __init__(
        self,
        job: Job,
        queue: "JobQueue",
        deduplicated: bool = False,
        from_store: bool = False,
    ) -> None:
        self._job = job
        self._queue = queue
        #: True when this submission joined an already-live job.
        self.deduplicated = deduplicated
        #: True when the result was answered from the persistent store.
        self.from_store = from_store

    @property
    def job_id(self) -> str:
        """The job's id (stable across joined handles)."""
        return self._job.job_id

    @property
    def fingerprint(self) -> str:
        """The request's content address."""
        return self._job.fingerprint

    @property
    def state(self) -> str:
        """Current job state (queued/running/done/cancelled/failed)."""
        return self._job.state

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._job.finished

    def cancel(self) -> bool:
        """Cancel the underlying job (for *all* joined handles).

        Returns True if the job was still live when the cancellation was
        delivered; a finished job is left untouched (False).
        """
        return self._queue._cancel(self._job)

    def result(self, timeout: Optional[float] = None) -> SynthesisResult:
        """Block for the result.

        Raises :class:`TimeoutError` past ``timeout`` and
        :class:`JobFailedError` when the worker crashed.  A cancelled
        job returns its ``status == "cancelled"`` result normally.
        """
        if not self._job.wait(timeout):
            raise TimeoutError(
                "job %s not finished within %r s" % (self._job.job_id, timeout)
            )
        if self._job.state == JOB_FAILED:
            raise JobFailedError(
                "job %s failed in the worker: %s"
                % (self._job.job_id, self._job.error)
            )
        assert self._job.result is not None
        return self._job.result


class JobQueue:
    """Priorities + dedup + cancellation over live jobs (see module doc)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._seq = 0
        self._pending: List[Job] = []
        #: fingerprint → live (queued or running) job.
        self._live: Dict[str, Job] = {}
        self.submitted = 0
        self.deduplicated = 0
        self.cancelled = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def live_jobs(self) -> int:
        """Number of queued-or-running jobs."""
        with self._lock:
            return len(self._live)

    # ------------------------------------------------------------------
    def submit(
        self,
        wire: WireRequest,
        priority: int = PRIORITY_NORMAL,
        on_progress: Optional[Callable[[object], None]] = None,
        stored_lookup: Optional[Callable[[str], Optional[SynthesisResult]]] = None,
    ) -> JobHandle:
        """Enqueue a wire request (or join its live duplicate).

        ``stored_lookup`` is the persistent-result fast path: when no
        live duplicate exists, it is asked for a stored answer by
        fingerprint, and a hit returns an already-completed handle
        (``from_store=True``) without enqueuing anything.

        Joining a live duplicate *escalates* its priority when the new
        submission is more urgent (a queued job is re-ordered; a running
        one is already past scheduling), so a high-priority caller is
        never pinned to a low-priority duplicate's queue position.
        """
        fingerprint = wire.fingerprint()
        # The disk lookup runs OUTSIDE the lock (it is keyed purely by
        # the fingerprint), so slow I/O never serialises submitters or
        # the collector's state transitions; a live duplicate appearing
        # in the window simply wins below.
        stored = stored_lookup(fingerprint) if stored_lookup is not None else None
        stored_handle = None
        with self._lock:
            self.submitted += 1
            live = self._live.get(fingerprint)
            if live is not None:
                self.deduplicated += 1
                if on_progress is not None:
                    live.progress_callbacks.append(on_progress)
                if priority < live.priority and live.state == JOB_QUEUED:
                    live.priority = priority
                    self._pending.sort(key=lambda j: j.sort_key)
                return JobHandle(live, self, deduplicated=True)
            self._seq += 1
            job = Job(
                job_id="j%05d-%s" % (self._seq, fingerprint[:12]),
                wire=wire,
                priority=priority,
                seq=self._seq,
                fingerprint=fingerprint,
            )
            if stored is not None:
                job.result = stored
                job.state = JOB_DONE
                job._finish()
                stored_handle = JobHandle(job, self, from_store=True)
            else:
                if on_progress is not None:
                    job.progress_callbacks.append(on_progress)
                self._live[fingerprint] = job
                self._pending.append(job)
                self._pending.sort(key=lambda j: j.sort_key)
                return JobHandle(job, self)
        # Outside the lock (user code): a from_store answer still emits
        # the final done-event every other completion path produces;
        # ``elapsed_s`` is the stored run's engine wall-clock.
        if on_progress is not None:
            on_progress(ProgressEvent(
                cost=stored.cost if stored.cost is not None else -1,
                generated=stored.generated,
                stored=stored.unique_cs,
                elapsed_seconds=stored.elapsed_seconds,
                done=True,
                incumbent=stored,
                elapsed_s=stored.elapsed_seconds,
            ))
        return stored_handle

    def pending_in_order(self) -> List[Job]:
        """Snapshot of queued jobs in ``(priority, seq)`` order."""
        with self._lock:
            return list(self._pending)

    def mark_running(self, job: Job, worker_id: int) -> bool:
        """Move a pending job to ``running`` on ``worker_id``.

        Returns False when the job was cancelled (or otherwise removed)
        between scheduling and assignment.
        """
        with self._lock:
            if job.state != JOB_QUEUED or job not in self._pending:
                return False
            self._pending.remove(job)
            job.state = JOB_RUNNING
            job.attempts += 1
            job.worker_id = worker_id
            return True

    def requeue(self, job: Job, priority: Optional[int] = None) -> bool:
        """Put a running job back in the pending queue (worker died).

        Only a live, running job can be requeued — a finished one (a
        late cancellation won the race) is left alone.  ``priority``
        may *escalate* the job (lower value only): a retried job has
        already waited a full attempt, and joined duplicate handles
        must not be starved behind fresh traffic.
        """
        with self._lock:
            if job.finished or job.state != JOB_RUNNING:
                return False
            job.state = JOB_QUEUED
            job.worker_id = None
            if priority is not None and priority < job.priority:
                job.priority = priority
            self._pending.append(job)
            self._pending.sort(key=lambda j: j.sort_key)
            return True

    # ------------------------------------------------------------------
    # Terminal transitions (called by the pool's collector)
    # ------------------------------------------------------------------
    def finish(self, job: Job, result: SynthesisResult) -> None:
        """Complete a job with its result (also used for ``cancelled``
        results coming back from a worker)."""
        with self._lock:
            job.result = result
            job.state = (
                JOB_CANCELLED if result.status == "cancelled" else JOB_DONE
            )
            self._live.pop(job.fingerprint, None)
            job._finish()

    def fail(self, job: Job, error: str) -> None:
        """Mark a job failed (worker crash); handles raise on `.result`."""
        with self._lock:
            job.error = error
            job.state = JOB_FAILED
            self._live.pop(job.fingerprint, None)
            job._finish()

    def _cancel(self, job: Job) -> bool:
        with self._lock:
            if job.finished:
                return False
            self.cancelled += 1
            if job.state == JOB_QUEUED:
                # Never reached a worker: synthesise the cancelled
                # result right here.
                if job in self._pending:
                    self._pending.remove(job)
                self._live.pop(job.fingerprint, None)
                job.result = _cancelled_result(job.wire)
                job.state = JOB_CANCELLED
                job._finish()
                return True
            hook = self._running_cancel_hook
        # Running: flip the cross-process event; the worker's watchdog
        # relays it to the engine, which reports back a ``cancelled``
        # result through the normal done path.  The hook runs OUTSIDE
        # the queue lock: it takes the pool lock, and the pool's
        # dispatcher takes pool-then-queue — calling it under the queue
        # lock would be an AB-BA deadlock.  (If the job finishes in the
        # window, setting its stale event is a harmless no-op.)
        if hook is not None:
            hook(job)
        return True

    #: Installed by the pool: delivers cancellation to a running job's
    #: worker (e.g. by setting its Manager event).
    _running_cancel_hook: Optional[Callable[[Job], None]] = None


def _cancelled_result(wire: WireRequest) -> SynthesisResult:
    """The result record of a job cancelled before reaching a worker."""
    cost_fn = wire.effective_cost_fn()
    return SynthesisResult(
        status="cancelled",
        spec=wire.spec,
        backend=wire.config.backend,
        cost_function=cost_fn.as_tuple(),
        allowed_error=wire.allowed_error,
        max_cost=wire.effective_max_cost(),
        extra={"cancelled_while": "queued"},
    )
