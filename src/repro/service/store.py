"""Content-addressed persistence: staging artifacts and finished results.

The service's durability layer, after the multicore-recovery insight
(Wu et al.): the expensive state to recover after a restart is not the
queue — it is the *warm* state, the staged ``(Universe, GuideTable,
FlatGuideTable)`` triples and the completed answers.  Both stores are
plain content-addressed pickle directories with atomic writes (tmp +
``os.replace``), so a restarted service warm-starts by loading instead
of re-enumerating, and concurrent writers of the same key are harmless
(they write identical bytes to the same address).

:class:`StoreBackedSession` splices a :class:`StagingStore` under a
:class:`~repro.api.session.Session`: staging cache misses fall through
to the store before building, and fresh builds are persisted — the
worker-side half of the service's warm-start story.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Tuple

from ..api.config import EngineConfig
from ..api.registry import BackendRegistry
from ..api.session import Session, staging_key_of
from ..core.result import SynthesisResult
from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..spec import Spec
from ..testing.faults import fault_point
from .wire import staging_fingerprint

#: Version tag wrapped around every pickled store value.  Bump it when
#: the on-disk payload shape changes: old blobs then load as misses (and
#: are quarantined) instead of deserialising into the wrong shape.
STORE_VERSION = 1
_STORE_TAG = "repro-store"


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry table to disk (best-effort).

    Without this an ``os.replace`` can survive a process crash but be
    lost in a *machine* crash — the rename lived only in the page cache.
    Platforms whose directories cannot be opened/fsynced are skipped.
    """
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically and durably.

    The single implementation of the store-and-protocol write idiom:
    the payload is flushed to a temp file (``fsync`` before the rename,
    so the replace can never expose an empty or partial file after a
    power cut), ``os.replace``\\ d into place, and the parent directory
    is fsynced so the rename itself survives a crash.  Readers (a pool
    sibling, the serve loop, ``repro submit --wait``) never observe a
    partial file, and the temp file is cleaned up when the write fails.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=".%s." % path.name[:16], suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("store.atomic_write_bytes")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


class _PickleStore:
    """A directory of ``<key>.pkl`` blobs with atomic writes."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / ("%s.pkl" % key)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """All stored content addresses."""
        for path in sorted(self.root.glob("*.pkl")):
            yield path.stem

    def save(self, key: str, value: object) -> Path:
        """Persist ``value`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        envelope = (_STORE_TAG, STORE_VERSION, value)
        atomic_write_bytes(
            path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        )
        return path

    def load(self, key: str) -> Optional[object]:
        """The stored value, or None when the key is absent *or
        unreadable*.

        A corrupt or version-skewed blob (bit rot, a truncated write, a
        code upgrade that changed the pickled classes or bumped
        ``STORE_VERSION``) is treated as a miss rather than an error,
        so callers rebuild and overwrite — the store self-heals instead
        of permanently failing one content address.  The bad file is
        renamed to ``<name>.corrupt`` so the next ``save`` is not racing
        a reader of the damaged blob and an operator can post-mortem it
        (see docs/README.md).
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._quarantine(path)
            return None
        if (
            not isinstance(envelope, tuple)
            or len(envelope) != 3
            or envelope[0] != _STORE_TAG
            or envelope[1] != STORE_VERSION
        ):
            self._quarantine(path)
            return None
        return envelope[2]

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a damaged blob aside (``x.pkl`` → ``x.pkl.corrupt``)."""
        try:
            os.replace(str(path), str(path) + ".corrupt")
        except OSError:
            pass


class StagingStore(_PickleStore):
    """Persisted staging artifacts, keyed by :func:`staging_fingerprint`.

    Each entry is a ``(Universe, GuideTable)`` pair with the flat numpy
    view already materialised, so a load is immediately hot for the
    vectorised kernels.
    """

    def __init__(self, root) -> None:
        super().__init__(Path(root))

    def save_staging(
        self, key: str, universe: Universe, guide: GuideTable
    ) -> str:
        """Persist a staged pair under its content address.

        ``key`` must be the :func:`staging_fingerprint` of the *original
        example strings* — it cannot be recovered from the universe,
        whose word set is already the infix closure.
        """
        guide.flat  # materialise before pickling: loads must be hot
        self.save(key, (universe, guide))
        return key

    def load_staging(self, key: str) -> Optional[Tuple[Universe, GuideTable]]:
        """The staged ``(universe, guide)`` pair, or None."""
        value = self.load(key)
        if value is None:
            return None
        universe, guide = value
        return universe, guide


class ResultStore(_PickleStore):
    """Completed :class:`SynthesisResult`\\ s, keyed by request fingerprint."""

    def __init__(self, root) -> None:
        super().__init__(Path(root))

    def save_result(self, fingerprint: str, result: SynthesisResult) -> Path:
        """Persist a finished result under its request fingerprint."""
        return self.save(fingerprint, result)

    def load_result(self, fingerprint: str) -> Optional[SynthesisResult]:
        """The stored result, or None."""
        value = self.load(fingerprint)
        return value if isinstance(value, SynthesisResult) else None


class StoreBackedSession(Session):
    """A :class:`Session` whose staging cache falls through to disk.

    On a staging miss the session first consults the
    :class:`StagingStore`; only when the store also misses does it build
    — and then persists the fresh artifact, so the *next* process (a
    pool sibling, or the service after a restart) loads instead of
    re-enumerating.  ``store_loads``/``store_saves`` count the traffic.
    """

    #: Default mid-level checkpoint cadence: a partial is journalled
    #: once this many candidates — or this many seconds — have passed
    #: since the last safe-point snapshot.  Both bound the rework a
    #: SIGKILL (or a preemption) can cost inside one wide level.
    PARTIAL_EVERY_CANDIDATES = 250_000
    PARTIAL_EVERY_S = 2.0

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        registry: Optional[BackendRegistry] = None,
        max_staged: Optional[int] = None,
        staging_store: Optional[StagingStore] = None,
        checkpoint_store=None,
        partial_every_candidates: Optional[int] = PARTIAL_EVERY_CANDIDATES,
        partial_every_s: Optional[float] = PARTIAL_EVERY_S,
    ) -> None:
        super().__init__(config, registry=registry, max_staged=max_staged)
        self.staging_store = staging_store
        self.checkpoint_store = checkpoint_store
        self.partial_every_candidates = partial_every_candidates
        self.partial_every_s = partial_every_s
        self.store_loads = 0
        self.store_saves = 0
        self.checkpoint_loads = 0
        self.checkpoint_saves = 0
        self.partial_saves = 0
        self.partial_loads = 0
        self.resumed_queries = 0

    def staging_for(self, spec: Spec) -> Tuple[Universe, GuideTable]:
        key = staging_key_of(spec)
        if self.staging_store is None or key in self._staged:
            return super().staging_for(spec)
        fingerprint = staging_fingerprint(spec)
        loaded = self.staging_store.load_staging(fingerprint)
        if loaded is not None:
            self.store_loads += 1
            self._remember(key, loaded)
            return loaded
        universe, guide = super().staging_for(spec)
        self.staging_store.save_staging(fingerprint, universe, guide)
        self.store_saves += 1
        return universe, guide

    # ------------------------------------------------------------------
    # Level checkpoints (see repro.service.checkpoint)
    # ------------------------------------------------------------------
    def _attach_durability(self, engine) -> None:
        """Restore checkpointed cost levels and arm the writer hook.

        Eligibility mirrors what makes a checkpoint replayable at all:
        engines with a bounded cache (OnTheFly fallback changes what is
        stored) or with dedupe disabled (the stored sequence is no
        longer the canonical first-occurrence sequence) are excluded.
        Replay failures of any kind degrade to a cold run — durability
        must never make a query fail that would otherwise succeed.
        """
        if self.checkpoint_store is None:
            return
        if engine.max_cache_size is not None or not engine.check_uniqueness:
            return
        from .checkpoint import checkpoint_key

        key = checkpoint_key(
            staging_fingerprint(engine.spec),
            engine.cost_fn,
            engine.use_guide_table,
        )
        tracer = engine.tracer
        restore_span = (
            tracer.start("checkpoint-restore") if tracer is not None else None
        )
        try:
            levels = self.checkpoint_store.load_levels(key)
        except Exception:
            levels = []
        if restore_span is not None:
            tracer.finish(restore_span, levels=len(levels))
        restored = False
        if levels and levels[0].cost == engine.cost_fn.literal:
            try:
                engine.restore_levels(levels)
            except Exception:
                pass
            else:
                restored = True
                self.checkpoint_loads += len(levels)
                self.resumed_queries += 1
        if restored:
            # A mid-level partial right after the restored prefix lets
            # the run skip into the interrupted level instead of
            # rebuilding it from its start; the engine re-validates the
            # cost adjacency before adopting it.
            try:
                partial = self.checkpoint_store.load_partial(key)
            except Exception:
                partial = None
            if (
                partial is not None
                and partial.cost == levels[-1].cost + 1
            ):
                try:
                    engine.restore_partial(partial)
                except Exception:
                    pass
                else:
                    self.partial_loads += 1

        store = self.checkpoint_store
        session = self
        previous = engine.on_level
        # Don't re-journal what we just restored: the writer starts
        # past the last restored cost.
        state = {"last": levels[-1].cost if levels else 0}

        def checkpoint_and_forward(cost: int, start: int, end: int):
            # Journal FIRST, then forward: a cancel/progress hook that
            # stops the run still leaves this level on disk, which is
            # what makes kill-at-any-level resume work.
            if cost > state["last"]:
                state["last"] = cost
                span = (
                    engine.tracer.start("checkpoint-save", cost=cost)
                    if engine.tracer is not None
                    else None
                )
                try:
                    if store.append_level(
                        key, engine.level_checkpoint(cost, start, end)
                    ):
                        session.checkpoint_saves += 1
                except OSError:
                    pass
                finally:
                    if span is not None:
                        engine.tracer.finish(span)
            if previous is not None:
                return previous(cost, start, end)
            return False

        engine.on_level = checkpoint_and_forward

        def journal_partial(partial) -> None:
            span = (
                engine.tracer.start("partial-save", cost=partial.cost)
                if engine.tracer is not None
                else None
            )
            try:
                if store.append_partial(key, partial):
                    session.partial_saves += 1
            except OSError:
                pass
            finally:
                if span is not None:
                    engine.tracer.finish(span)

        engine.on_partial = journal_partial
        engine.partial_every_candidates = self.partial_every_candidates
        engine.partial_every_s = self.partial_every_s
