"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidSpecError(ReproError):
    """A specification ``(P, N)`` is malformed (e.g. ``P ∩ N ≠ ∅``)."""


class CapacityError(ReproError):
    """An internal fixed-capacity structure (hash set, cache) overflowed in
    a context where overflow is a programming error rather than an
    out-of-memory search verdict."""
