"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands
--------
synth        infer a regex from --pos/--neg examples
table1       regenerate Table 1 (scalar vs vector engines)
table2       regenerate Table 2 (AlphaRegex vs Paresy)
figure1      regenerate Figure 1 (cost-function impact)
outliers     duration-distribution table over a Figure-1 sweep
error-table  regenerate the §5.2 allowed-error table
ablations    run the E6 design-choice ablations
suite        print a generated Type 1/2 benchmark suite
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .api import (
    EngineConfig,
    ProgressEvent,
    Session,
    SynthesisRequest,
    default_registry,
)
from .errors import ReproError
from .eval.figures import figure1
from .eval.tables import (
    ERROR_TABLE_SPEC,
    ablation_cache_capacity,
    ablation_guide_table,
    ablation_uniqueness,
    error_table,
    outlier_table,
    table1,
    table2,
)
from .regex.cost import CostFunction
from .spec import Spec
from .suites.generator import (
    SCALED_TYPE1_PARAMS,
    SCALED_TYPE2_PARAMS,
    generate_suite,
)


def _parse_cost(text: str) -> CostFunction:
    """argparse type for ``--cost``: five comma-separated positive ints.

    Malformed strings become clean ``argparse`` usage errors instead of
    bare tracebacks.
    """
    cleaned = text.replace("(", "").replace(")", "").strip()
    parts = [piece.strip() for piece in cleaned.split(",")] if cleaned else []
    try:
        values = tuple(int(piece) for piece in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected five comma-separated integers c1,c2,c3,c4,c5, got %r"
            % text
        )
    if len(values) != 5:
        raise argparse.ArgumentTypeError(
            "expected exactly five cost components c1,c2,c3,c4,c5, got %d in %r"
            % (len(values), text)
        )
    try:
        return CostFunction.from_tuple(values)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _parse_spec_file(path_text: str) -> Spec:
    """argparse type for ``--spec-file``: a JSON spec (``Spec.to_json``
    layout: ``positive``/``negative`` lists plus optional ``alphabet``)."""
    try:
        payload = Path(path_text).read_text(encoding="utf-8")
    except OSError as exc:
        raise argparse.ArgumentTypeError("cannot read spec file: %s" % exc)
    try:
        return Spec.from_json(payload)
    except (ValueError, KeyError, TypeError, ReproError) as exc:
        raise argparse.ArgumentTypeError(
            "invalid spec JSON in %r: %s" % (path_text, exc)
        )


def _cmd_synth(args: argparse.Namespace) -> int:
    if args.spec_file is not None:
        if args.pos or args.neg:
            sys.stderr.write(
                "repro synth: error: --spec-file cannot be combined with "
                "--pos/--neg\n"
            )
            return 2
        spec = args.spec_file
    else:
        spec = Spec(args.pos, args.neg)

    def show_progress(event: ProgressEvent) -> None:
        if not event.done:
            print("  level %3d: %8d REs, %7d CSs, %.3f s"
                  % (event.cost, event.generated, event.stored,
                     event.elapsed_seconds))

    session = Session(
        EngineConfig(
            backend=args.backend,
            max_cache_size=args.max_cache,
            max_generated=args.max_generated,
        )
    )
    result = session.synthesize(
        SynthesisRequest(
            spec=spec,
            cost_fn=args.cost,
            allowed_error=args.error,
            time_limit=args.time_limit,
            on_progress=show_progress if args.progress else None,
        )
    )
    print("status     :", result.status)
    if result.found:
        print("regex      :", result.regex_str)
        print("cost       :", result.cost)
    print("# REs      :", result.generated)
    print("unique CSs :", result.unique_cs)
    print("|ic(P∪N)|  :", result.universe_size,
          "(padded to %d bits)" % result.padded_bits)
    print("elapsed    : %.4f s" % result.elapsed_seconds)
    return 0 if result.found else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    print(table1(pool_size=args.pool, max_generated=args.max_generated,
                 repeats=args.repeats).render())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    print(table2(paresy_budget=args.paresy_budget,
                 alpharegex_budget=args.ar_budget,
                 repeats=args.repeats).render())
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    data = figure1(type1_count=args.count, type2_count=args.count,
                   max_generated=args.max_generated)
    print(data.render())
    return 0


def _cmd_outliers(args: argparse.Namespace) -> int:
    data = figure1(type1_count=args.count, type2_count=args.count,
                   max_generated=args.max_generated)
    durations = [v for series in data.elapsed.values() for v in series]
    print(outlier_table(durations).render())
    return 0


def _cmd_error_table(args: argparse.Namespace) -> int:
    errors = [e / 100.0 for e in args.errors]
    print(error_table(errors=errors, max_generated=args.max_generated).render())
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    spec = ERROR_TABLE_SPEC
    print(ablation_guide_table(spec).render())
    print()
    print(ablation_uniqueness(spec, max_generated=args.max_generated).render())
    print()
    print(ablation_cache_capacity(spec).render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    params = SCALED_TYPE1_PARAMS if args.type == 1 else SCALED_TYPE2_PARAMS
    for bench in generate_suite(args.type, args.count, params, args.seed):
        print("%s  le=%d  #P=%d  #N=%d" % (bench.name, bench.le,
                                           bench.n_pos, bench.n_neg))
        print("   ", bench.spec)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Paresy reproduction: regular expression inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="infer a regex from examples")
    p.add_argument("--pos", nargs="*", default=[], help="positive examples")
    p.add_argument("--neg", nargs="*", default=[], help="negative examples")
    p.add_argument("--spec-file", type=_parse_spec_file, default=None,
                   dest="spec_file", metavar="PATH",
                   help="read the spec from a JSON file (Spec.to_json "
                        "layout) instead of --pos/--neg")
    p.add_argument("--cost", type=_parse_cost, default="1,1,1,1,1",
                   help="cost homomorphism c1,c2,c3,c4,c5")
    registry = default_registry()
    p.add_argument("--backend", default="vector",
                   choices=sorted(registry.names())
                   + sorted(registry.aliases()))
    p.add_argument("--error", type=float, default=0.0, help="allowed error")
    p.add_argument("--max-cache", type=int, default=None, dest="max_cache")
    p.add_argument("--max-generated", type=int, default=None,
                   dest="max_generated")
    p.add_argument("--time-limit", type=float, default=None, dest="time_limit",
                   help="wall-clock budget in seconds (status 'cancelled' "
                        "past it)")
    p.add_argument("--progress", action="store_true",
                   help="stream per-cost-level progress lines")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("table1", help="scalar vs vector engine comparison")
    p.add_argument("--pool", type=int, default=8)
    p.add_argument("--max-generated", type=int, default=200_000,
                   dest="max_generated")
    p.add_argument("--repeats", type=int, default=1)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="AlphaRegex vs Paresy comparison")
    p.add_argument("--paresy-budget", type=int, default=3_000_000,
                   dest="paresy_budget")
    p.add_argument("--ar-budget", type=int, default=40_000, dest="ar_budget")
    p.add_argument("--repeats", type=int, default=1)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("figure1", help="cost-function impact sweep")
    p.add_argument("--count", type=int, default=10,
                   help="benchmarks per type")
    p.add_argument("--max-generated", type=int, default=400_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_figure1)

    p = sub.add_parser("outliers", help="duration distribution table")
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--max-generated", type=int, default=400_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_outliers)

    p = sub.add_parser("error-table", help="allowed-error sweep (§5.2)")
    p.add_argument("--errors", type=int, nargs="*",
                   default=[50, 45, 40, 35, 30, 25, 20, 15],
                   help="allowed error percentages")
    p.add_argument("--max-generated", type=int, default=5_000_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_error_table)

    p = sub.add_parser("ablations", help="design-choice ablations (E6)")
    p.add_argument("--max-generated", type=int, default=2_000_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("suite", help="print a generated benchmark suite")
    p.add_argument("--type", type=int, default=1, choices=[1, 2])
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_suite)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
