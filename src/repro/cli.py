"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands
--------
synth        infer a regex from --pos/--neg examples
serve        run the multi-core synthesis service over a store directory
server       run the HTTP synthesis server (admission-controlled lanes)
client       talk to a running `repro server` over HTTP
submit       submit a job (or a cancellation) to a running service
trace        fetch a job's trace: text waterfall + Chrome trace JSON
report       render BENCH_*.json benchmark artifacts as markdown
backends     list the registered engines, aliases and capabilities
table1       regenerate Table 1 (scalar vs vector engines)
table2       regenerate Table 2 (AlphaRegex vs Paresy)
figure1      regenerate Figure 1 (cost-function impact)
outliers     duration-distribution table over a Figure-1 sweep
error-table  regenerate the §5.2 allowed-error table
ablations    run the E6 design-choice ablations
suite        print a generated Type 1/2 benchmark suite

``serve``/``submit`` speak a file-based protocol over the service store
directory: ``submit`` drops a content-addressed job file into
``<store>/inbox/`` (and a ``<id>.cancel`` marker to cancel), ``serve``
watches the inbox, runs jobs on its worker pool, and answers into
``<store>/outbox/<id>.json``.  The same store holds the persistent
staging/result caches, so a restarted server warm-starts.

``server``/``client`` are the network-native equivalents: ``server``
exposes the same pool behind HTTP with admission control and two
latency lanes (see :mod:`repro.server`), and ``client`` (or
``submit --server URL``) talks to it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from .api import (
    EngineConfig,
    ProgressEvent,
    Session,
    SynthesisRequest,
    default_registry,
)
from .errors import ReproError
from .eval.figures import figure1
from .eval.tables import (
    ERROR_TABLE_SPEC,
    ablation_cache_capacity,
    ablation_guide_table,
    ablation_uniqueness,
    error_table,
    outlier_table,
    table1,
    table2,
)
from .regex.cost import CostFunction
from .service import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ServiceClient,
    WireRequest,
)
from .service.store import atomic_write_bytes
from .spec import Spec
from .suites.generator import (
    SCALED_TYPE1_PARAMS,
    SCALED_TYPE2_PARAMS,
    generate_suite,
)


def _parse_cost(text: str) -> CostFunction:
    """argparse type for ``--cost``: five comma-separated positive ints.

    Malformed strings become clean ``argparse`` usage errors instead of
    bare tracebacks.
    """
    cleaned = text.replace("(", "").replace(")", "").strip()
    parts = [piece.strip() for piece in cleaned.split(",")] if cleaned else []
    try:
        values = tuple(int(piece) for piece in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected five comma-separated integers c1,c2,c3,c4,c5, got %r"
            % text
        )
    if len(values) != 5:
        raise argparse.ArgumentTypeError(
            "expected exactly five cost components c1,c2,c3,c4,c5, got %d in %r"
            % (len(values), text)
        )
    try:
        return CostFunction.from_tuple(values)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _parse_spec_file(path_text: str) -> Spec:
    """argparse type for ``--spec-file``: a JSON spec (``Spec.to_json``
    layout: ``positive``/``negative`` lists plus optional ``alphabet``)."""
    try:
        payload = Path(path_text).read_text(encoding="utf-8")
    except OSError as exc:
        raise argparse.ArgumentTypeError("cannot read spec file: %s" % exc)
    try:
        return Spec.from_json(payload)
    except (ValueError, KeyError, TypeError, ReproError) as exc:
        raise argparse.ArgumentTypeError(
            "invalid spec JSON in %r: %s" % (path_text, exc)
        )


def _parse_bytes(text: str) -> int:
    """argparse type for byte budgets: plain int or K/M/G suffixed."""
    cleaned = text.strip().upper()
    factor = 1
    for suffix, scale in (("K", 1024), ("M", 1024 ** 2), ("G", 1024 ** 3)):
        if cleaned.endswith(suffix):
            cleaned, factor = cleaned[: -len(suffix)], scale
            break
    try:
        value = int(cleaned)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a byte count like 500000, 64M or 2G, got %r" % text
        )
    if value < 0:
        raise argparse.ArgumentTypeError("byte budget must be >= 0")
    return value * factor


def _cmd_synth(args: argparse.Namespace) -> int:
    if args.spec_file is not None:
        if args.pos or args.neg:
            sys.stderr.write(
                "repro synth: error: --spec-file cannot be combined with "
                "--pos/--neg\n"
            )
            return 2
        spec = args.spec_file
    else:
        spec = Spec(args.pos, args.neg)

    def show_progress(event: ProgressEvent) -> None:
        if not event.done:
            print("  level %3d: %8d REs, %7d CSs, %.3f s"
                  % (event.cost, event.generated, event.stored,
                     event.elapsed_seconds))

    session = Session(
        EngineConfig(
            backend=args.backend,
            max_cache_size=args.max_cache,
            max_generated=args.max_generated,
        )
    )
    result = session.synthesize(
        SynthesisRequest(
            spec=spec,
            cost_fn=args.cost,
            allowed_error=args.error,
            time_limit=args.time_limit,
            on_progress=show_progress if args.progress else None,
        )
    )
    print("status     :", result.status)
    if result.found:
        print("regex      :", result.regex_str)
        print("cost       :", result.cost)
    print("# REs      :", result.generated)
    print("unique CSs :", result.unique_cs)
    print("|ic(P∪N)|  :", result.universe_size,
          "(padded to %d bits)" % result.padded_bits)
    print("elapsed    : %.4f s" % result.elapsed_seconds)
    return 0 if result.found else 1


def _cmd_backends(args: argparse.Namespace) -> int:
    registry = default_registry()
    for name in registry.names():
        info = registry.resolve(name)
        aliases = ", ".join(info.aliases) if info.aliases else "-"
        capabilities = ", ".join(sorted(info.capabilities)) or "-"
        print("%-8s aliases: %-14s capabilities: %s" % (name, aliases,
                                                        capabilities))
        if info.description:
            print("         %s" % info.description)
    return 0


_PRIORITIES = {"high": PRIORITY_HIGH, "normal": PRIORITY_NORMAL,
               "low": PRIORITY_LOW}

#: Service-store subdirectories of the file-based serve/submit protocol.
INBOX_SUBDIR = "inbox"
OUTBOX_SUBDIR = "outbox"

#: How long (seconds) an unmatched ``.cancel`` marker is kept waiting
#: for its job file.  Bounded so a stale marker cannot silently cancel
#: a legitimate resubmission of the same content address days later.
CANCEL_MARKER_TTL_S = 60.0


def _store_dirs(store: str):
    root = Path(store)
    inbox = root / INBOX_SUBDIR
    outbox = root / OUTBOX_SUBDIR
    inbox.mkdir(parents=True, exist_ok=True)
    outbox.mkdir(parents=True, exist_ok=True)
    return root, inbox, outbox


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write atomically so the serve loop never reads a partial file."""
    atomic_write_bytes(
        path,
        json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
    )


def _result_payload(fingerprint: str, handle, result) -> dict:
    payload = result.to_dict()
    payload["fingerprint"] = fingerprint
    payload["job_id"] = handle.job_id
    payload["deduplicated"] = handle.deduplicated
    payload["from_store"] = handle.from_store
    return payload


#: Everything a malformed job payload can raise while being decoded.
_JOB_PAYLOAD_ERRORS = (ValueError, KeyError, TypeError, ReproError)


def _parse_job_payload(text: str, default_priority: int):
    """Decode one job payload (inbox file or JSONL line) into a
    ``(WireRequest, priority)`` pair; raises `_JOB_PAYLOAD_ERRORS`."""
    payload = json.loads(text)
    priority = int(payload.pop("priority", default_priority))
    return WireRequest.from_json_dict(payload), priority


def _serve_one_inbox_file(client, path: Path, inflight: dict,
                          default_priority: int) -> Optional[str]:
    """Submit one inbox job file; returns its fingerprint (None on a
    malformed file, which is renamed aside instead of crashing the
    server).

    ``inflight`` is keyed by the payload's *computed* fingerprint —
    never by the file name, which is only the protocol convention —
    and a content-duplicate under a second name simply joins the live
    entry's path list (both files are consumed when the job answers).
    """
    try:
        wire, priority = _parse_job_payload(
            path.read_text(encoding="utf-8"), default_priority)
    except _JOB_PAYLOAD_ERRORS as exc:
        sys.stderr.write("repro serve: skipping %s: %s\n" % (path.name, exc))
        path.rename(path.with_suffix(".rejected"))
        return None
    fingerprint = wire.fingerprint()
    entry = inflight.get(fingerprint)
    if entry is not None:
        # Duplicate content: still submit, so the pool counts the
        # dedupe and escalates the live job's priority if this
        # submission is more urgent; keep the first handle (the joined
        # one answers identically).
        client.submit(wire, priority=priority)
        if path not in entry[1]:
            entry[1].append(path)
        return fingerprint
    handle = client.submit(wire, priority=priority)
    inflight[fingerprint] = (handle, [path])
    return fingerprint


def _drain_finished(outbox: Path, inflight: dict,
                    submitted_paths: Optional[dict] = None) -> int:
    """Write outbox answers for finished jobs; returns how many."""
    finished = [fp for fp, (handle, _) in inflight.items() if handle.done]
    for fp in finished:
        handle, job_paths = inflight.pop(fp)
        try:
            result = handle.result(timeout=0)
        except Exception as exc:  # worker crash: answer with the error
            _atomic_write_json(outbox / ("%s.json" % fp),
                               {"fingerprint": fp, "status": "failed",
                                "error": str(exc)})
        else:
            _atomic_write_json(outbox / ("%s.json" % fp),
                               _result_payload(fp, handle, result))
            print("served %s: %s%s" % (
                fp[:12], result.status,
                " %s" % result.regex_str if result.found else ""))
        for job_path in job_paths:
            if job_path.exists():
                job_path.unlink()
            if submitted_paths is not None:
                submitted_paths.pop(job_path, None)
    return len(finished)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.jobs is None and not args.watch:
        sys.stderr.write(
            "repro serve: error: need --jobs FILE, --watch, or both\n")
        return 2
    root, inbox, outbox = _store_dirs(args.store)
    if args.checkpoint_budget is not None:
        _prune_checkpoint_budget(root, args.checkpoint_budget)
    config = EngineConfig(backend=args.backend)
    client = ServiceClient(
        workers=args.workers,
        config=config,
        store_dir=str(root),
        per_worker_depth=args.depth,
        reuse_results=args.reuse_results,
        retry_max_attempts=args.max_attempts,
        checkpoints=args.checkpoints,
    )
    inflight: dict = {}
    served = 0
    with client:
        print("repro serve: %d workers (%s), store %s"
              % (args.workers, args.backend, root))
        if args.jobs is not None:
            with open(args.jobs, "r", encoding="utf-8") as handle:
                for number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    try:
                        wire, priority = _parse_job_payload(
                            line, PRIORITY_NORMAL)
                    except _JOB_PAYLOAD_ERRORS as exc:
                        sys.stderr.write(
                            "repro serve: skipping %s line %d: %s\n"
                            % (args.jobs, number, exc))
                        continue
                    # A duplicate line joins the live job at the pool
                    # level (counted in the dedupe stats); keep the
                    # FIRST handle so its answer is never dropped even
                    # if the job finishes mid-submission.
                    fingerprint = wire.fingerprint()
                    handle = client.submit(wire, priority=priority)
                    if fingerprint not in inflight:
                        inflight[fingerprint] = (handle, [])
        if not args.watch:
            while inflight:
                served += _drain_finished(outbox, inflight)
                time.sleep(0.01)
        else:
            last_activity = time.monotonic()
            submitted_paths: dict = {}
            try:
                while True:
                    activity = 0
                    # Job files first, so a cancellation that lands in
                    # the same poll tick as (or before) its job file
                    # finds the job in flight instead of being lost.
                    # Paths (not names) are the seen-guard: file names
                    # are only the protocol convention, the job's
                    # identity is its computed content fingerprint.  A
                    # changed mtime re-processes the file, so a repeat
                    # `repro submit --priority high` of an in-flight
                    # spec (same content address, new payload) still
                    # reaches the pool and escalates the live job.
                    for path in sorted(inbox.glob("*.json")):
                        try:
                            mtime = path.stat().st_mtime
                        except OSError:
                            continue
                        if submitted_paths.get(path) == mtime:
                            continue
                        if _serve_one_inbox_file(client, path, inflight,
                                                 PRIORITY_NORMAL):
                            activity += 1
                            submitted_paths[path] = mtime
                    for path in sorted(inbox.glob("*.cancel")):
                        fingerprint = path.stem
                        entry = inflight.get(fingerprint)
                        if entry is not None:
                            entry[0].cancel()
                            activity += 1
                            path.unlink()
                        elif (outbox / ("%s.json" % fingerprint)).exists():
                            path.unlink()  # already answered: moot
                        else:
                            # Keep the marker briefly — the job file may
                            # still be on its way (cancel-before-submit)
                            # — but expire it so it cannot ambush a
                            # future resubmission of the same spec.
                            try:
                                age = time.time() - path.stat().st_mtime
                            except OSError:
                                continue
                            if age > CANCEL_MARKER_TTL_S:
                                path.unlink()
                    drained = _drain_finished(outbox, inflight,
                                              submitted_paths)
                    served += drained
                    activity += drained
                    if activity:
                        last_activity = time.monotonic()
                    elif (args.idle_timeout is not None and not inflight
                          and time.monotonic() - last_activity
                          > args.idle_timeout):
                        break
                    time.sleep(args.poll_interval)
            except KeyboardInterrupt:  # pragma: no cover - interactive
                pass
        stats = client.stats
    print("repro serve: done (%d served, %d deduplicated, %d cancelled, "
          "%d affinity hits, %d steals)"
          % (served, stats["deduplicated"], stats["cancelled"],
             stats["affinity_hits"], stats["steals"]))
    return 0


def _prune_checkpoint_budget(root: Path, max_bytes: int) -> None:
    """Apply a ``--checkpoint-budget`` to the store's checkpoint dir."""
    from .service.checkpoint import CheckpointStore
    from .service.pool import CHECKPOINTS_SUBDIR

    stats = CheckpointStore(root / CHECKPOINTS_SUBDIR).prune(
        max_bytes=max_bytes
    )
    if stats["removed_keys"]:
        print("checkpoint budget: evicted %d key(s), %d bytes "
              "(%d kept, %d bytes)"
              % (stats["removed_keys"], stats["removed_bytes"],
                 stats["kept_keys"], stats["kept_bytes"]))


def _print_result_summary(answer: dict) -> int:
    print("status     :", answer.get("status"))
    if answer.get("regex"):
        print("regex      :", answer["regex"])
        print("cost       :", answer.get("cost"))
    print("elapsed    : %.4f s" % (answer.get("elapsed_seconds") or 0.0))
    return 0 if answer.get("status") == "success" else 1


def _submit_over_http(args: argparse.Namespace, wire) -> int:
    """`repro submit --server URL`: route through the HTTP service."""
    from .server.client import HttpServiceClient, OverloadedError, ServerError

    client = HttpServiceClient(args.server, auth_token=args.auth_token)
    if args.cancel is not None:
        try:
            answer = client.cancel(args.cancel)
        except ServerError as exc:
            sys.stderr.write("repro submit: %s\n" % exc)
            return 3
        print("cancellation %s for %s"
              % ("delivered" if answer.get("cancelled") else "moot",
                 args.cancel))
        return 0
    try:
        job = client.submit(wire)
    except OverloadedError as exc:
        sys.stderr.write(
            "repro submit: server overloaded; retry after %.0f s\n"
            % exc.retry_after_s)
        return 4
    except (ServerError, OSError) as exc:
        sys.stderr.write("repro submit: %s\n" % exc)
        return 3
    print("job id     :", job["job_id"])
    print("class      :", job.get("class"))
    if not args.wait:
        return 0
    try:
        done = client.result(job["job_id"], timeout=args.timeout)
    except TimeoutError:
        sys.stderr.write("repro submit: timed out after %.0f s\n"
                         % args.timeout)
        return 3
    except ServerError as exc:
        sys.stderr.write("repro submit: %s\n" % exc)
        return 3
    return _print_result_summary(done.get("result") or {})


def _cmd_submit(args: argparse.Namespace) -> int:
    if args.server is None and args.store is None:
        sys.stderr.write(
            "repro submit: error: need --store DIR or --server URL\n")
        return 2
    if args.cancel is not None and args.server is not None:
        return _submit_over_http(args, None)
    if args.cancel is not None:
        root, inbox, outbox = _store_dirs(args.store)
        marker = inbox / ("%s.cancel" % args.cancel)
        marker.write_text("", encoding="utf-8")
        print("cancellation requested for %s" % args.cancel)
        return 0
    if args.spec_file is not None:
        if args.pos or args.neg:
            sys.stderr.write(
                "repro submit: error: --spec-file cannot be combined with "
                "--pos/--neg\n")
            return 2
        spec = args.spec_file
    else:
        spec = Spec(args.pos, args.neg)
    wire = WireRequest(
        spec=spec,
        cost_fn=args.cost if isinstance(args.cost, CostFunction) else None,
        max_cost=args.max_cost,
        allowed_error=args.error,
        max_generated=args.max_generated,
        time_limit=args.time_limit,
        config=EngineConfig(backend=default_registry().canonical(args.backend)),
    )
    if args.server is not None:
        return _submit_over_http(args, wire)
    root, inbox, outbox = _store_dirs(args.store)
    fingerprint = wire.fingerprint()
    payload = wire.to_json_dict()
    payload["priority"] = _PRIORITIES[args.priority]
    _atomic_write_json(inbox / ("%s.json" % fingerprint), payload)
    print("job id     :", fingerprint)
    if not args.wait:
        print("submitted; result will appear at %s"
              % (outbox / ("%s.json" % fingerprint)))
        return 0
    # Exponential backoff: poll fast while the answer is likely near,
    # back off to a capped interval so a long job costs no busy-wait.
    from .server.client import poll_intervals

    answer_path = outbox / ("%s.json" % fingerprint)
    deadline = time.monotonic() + args.timeout
    for delay in poll_intervals():
        if answer_path.exists():
            break
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            sys.stderr.write(
                "repro submit: timed out after %.0f s waiting for %s\n"
                % (args.timeout, answer_path))
            return 3
        time.sleep(min(delay, remaining))
    answer = json.loads(answer_path.read_text(encoding="utf-8"))
    return _print_result_summary(answer)


def _cmd_server(args: argparse.Namespace) -> int:
    from .server import SynthesisServer

    server = SynthesisServer(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        interactive_workers=args.interactive_workers,
        batch_workers=args.batch_workers,
        per_worker_depth=args.depth,
        max_queue={
            "interactive": args.max_queue_interactive,
            "batch": args.max_queue_batch,
        },
        config=EngineConfig(backend=args.backend),
        registry=default_registry(),
        reuse_results=args.reuse_results,
        checkpoint_budget_bytes=args.checkpoint_budget,
        checkpoints=args.checkpoints,
        auth_token=args.auth_token,
        preempt_on_saturation=args.preempt,
        brownout_enter_after_s=args.brownout_after,
        brownout_exit_after_s=args.brownout_exit_after,
    )
    with server:
        print("repro server: listening on %s" % server.address)
        print("  lanes: %d interactive / %d batch workers (%s), store %s"
              % (args.interactive_workers, args.batch_workers,
                 args.backend, args.store))
        sys.stdout.flush()
        try:
            server.serve_forever(idle_timeout=args.idle_timeout)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
    print("repro server: stopped")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .server.client import HttpServiceClient, OverloadedError, ServerError

    client = HttpServiceClient(args.server, auth_token=args.auth_token)
    try:
        if args.action == "health":
            print(json.dumps(client.healthz(), indent=2, sort_keys=True))
            return 0
        if args.action == "metrics":
            sys.stdout.write(client.metrics())
            return 0
        if args.action in ("status", "cancel", "events"):
            if args.job_id is None:
                sys.stderr.write(
                    "repro client: error: %s needs a job id\n" % args.action)
                return 2
            if args.action == "status":
                print(json.dumps(client.status(args.job_id), indent=2,
                                 sort_keys=True))
                return 0
            if args.action == "cancel":
                answer = client.cancel(args.job_id)
                print(json.dumps(answer, indent=2, sort_keys=True))
                return 0
            for event in client.events(args.job_id):
                if event.done:
                    print("done: elapsed_s=%.4f" % event.elapsed_s)
                else:
                    print("level %3d: %8d REs, %7d CSs, %.3f s"
                          % (event.cost, event.generated, event.stored,
                             event.elapsed_s))
            return 0
        # submit
        if args.spec_file is not None:
            if args.pos or args.neg:
                sys.stderr.write(
                    "repro client: error: --spec-file cannot be combined "
                    "with --pos/--neg\n")
                return 2
            spec = args.spec_file
        else:
            spec = Spec(args.pos, args.neg)
        wire = WireRequest(
            spec=spec,
            cost_fn=args.cost,
            max_cost=args.max_cost,
            allowed_error=args.error,
            max_generated=args.max_generated,
            time_limit=args.time_limit,
            config=EngineConfig(
                backend=default_registry().canonical(args.backend)),
        )
        job = client.submit(wire, klass=args.klass)
        print("job id     :", job["job_id"])
        print("class      :", job.get("class"))
        if not args.wait:
            return 0
        done = client.result(job["job_id"], timeout=args.timeout)
        return _print_result_summary(done.get("result") or {})
    except OverloadedError as exc:
        sys.stderr.write(
            "repro client: server overloaded; retry after %.0f s\n"
            % exc.retry_after_s)
        return 4
    except TimeoutError:
        sys.stderr.write("repro client: timed out after %.0f s\n"
                         % args.timeout)
        return 3
    except (ServerError, OSError) as exc:
        sys.stderr.write("repro client: %s\n" % exc)
        return 3


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.export import waterfall
    from .server.client import HttpServiceClient, ServerError

    client = HttpServiceClient(args.server, auth_token=args.auth_token)
    try:
        document = client.trace(args.job_id)
    except (ServerError, OSError) as exc:
        sys.stderr.write("repro trace: %s\n" % exc)
        return 3
    finally:
        client.close()
    if args.out is not None:
        payload = json.dumps(
            document.get("chrome_trace") or {}, indent=2, sort_keys=True
        )
        Path(args.out).write_text(payload + "\n", encoding="utf-8")
        print(
            "repro trace: wrote Chrome trace JSON to %s "
            "(load it at https://ui.perfetto.dev)" % args.out
        )
    print(waterfall(document.get("spans") or []))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval.report import bench_report

    paths = sorted(Path(args.dir).glob(args.glob))
    text = bench_report(paths)
    if args.out is not None:
        Path(args.out).write_text(text, encoding="utf-8")
        print(
            "repro report: wrote %s (%d artifact files)"
            % (args.out, len(paths))
        )
    else:
        print(text, end="")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    print(table1(pool_size=args.pool, max_generated=args.max_generated,
                 repeats=args.repeats).render())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    print(table2(paresy_budget=args.paresy_budget,
                 alpharegex_budget=args.ar_budget,
                 repeats=args.repeats).render())
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    data = figure1(type1_count=args.count, type2_count=args.count,
                   max_generated=args.max_generated)
    print(data.render())
    return 0


def _cmd_outliers(args: argparse.Namespace) -> int:
    data = figure1(type1_count=args.count, type2_count=args.count,
                   max_generated=args.max_generated)
    durations = [v for series in data.elapsed.values() for v in series]
    print(outlier_table(durations).render())
    return 0


def _cmd_error_table(args: argparse.Namespace) -> int:
    errors = [e / 100.0 for e in args.errors]
    print(error_table(errors=errors, max_generated=args.max_generated).render())
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    spec = ERROR_TABLE_SPEC
    print(ablation_guide_table(spec).render())
    print()
    print(ablation_uniqueness(spec, max_generated=args.max_generated).render())
    print()
    print(ablation_cache_capacity(spec).render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    params = SCALED_TYPE1_PARAMS if args.type == 1 else SCALED_TYPE2_PARAMS
    for bench in generate_suite(args.type, args.count, params, args.seed):
        print("%s  le=%d  #P=%d  #N=%d" % (bench.name, bench.le,
                                           bench.n_pos, bench.n_neg))
        print("   ", bench.spec)
    return 0


def _add_auth_token_arg(p: argparse.ArgumentParser,
                        help_text: str) -> None:
    """``--auth-token`` with the ``REPRO_AUTH_TOKEN`` env default."""
    p.add_argument("--auth-token", dest="auth_token", metavar="TOKEN",
                   default=os.environ.get("REPRO_AUTH_TOKEN"),
                   help=help_text)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Paresy reproduction: regular expression inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="infer a regex from examples")
    p.add_argument("--pos", nargs="*", default=[], help="positive examples")
    p.add_argument("--neg", nargs="*", default=[], help="negative examples")
    p.add_argument("--spec-file", type=_parse_spec_file, default=None,
                   dest="spec_file", metavar="PATH",
                   help="read the spec from a JSON file (Spec.to_json "
                        "layout) instead of --pos/--neg")
    p.add_argument("--cost", type=_parse_cost, default="1,1,1,1,1",
                   help="cost homomorphism c1,c2,c3,c4,c5")
    registry = default_registry()
    p.add_argument("--backend", default="vector",
                   choices=sorted(registry.names())
                   + sorted(registry.aliases()))
    p.add_argument("--error", type=float, default=0.0, help="allowed error")
    p.add_argument("--max-cache", type=int, default=None, dest="max_cache")
    p.add_argument("--max-generated", type=int, default=None,
                   dest="max_generated")
    p.add_argument("--time-limit", type=float, default=None, dest="time_limit",
                   help="wall-clock budget in seconds (status 'cancelled' "
                        "past it)")
    p.add_argument("--progress", action="store_true",
                   help="stream per-cost-level progress lines")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("backends",
                       help="list registered engines and capabilities")
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser("serve", help="run the multi-core synthesis service")
    p.add_argument("--store", required=True,
                   help="service store directory (staging/result caches, "
                        "inbox/outbox protocol)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--backend", default="vector",
                   choices=sorted(registry.names())
                   + sorted(registry.aliases()))
    p.add_argument("--depth", type=int, default=2,
                   help="max jobs in flight per worker")
    p.add_argument("--jobs", default=None, metavar="FILE",
                   help="JSONL job file to serve (batch mode)")
    p.add_argument("--watch", action="store_true",
                   help="watch <store>/inbox for submitted jobs")
    p.add_argument("--idle-timeout", type=float, default=None,
                   dest="idle_timeout", metavar="SECONDS",
                   help="with --watch: exit after this long without "
                        "activity (default: run until interrupted)")
    p.add_argument("--poll-interval", type=float, default=0.1,
                   dest="poll_interval", help=argparse.SUPPRESS)
    p.add_argument("--reuse-results", action="store_true",
                   dest="reuse_results",
                   help="answer repeat submissions from the persistent "
                        "result store without re-running")
    p.add_argument("--max-attempts", type=int, default=3,
                   dest="max_attempts", metavar="N",
                   help="total dispatch attempts per job before a "
                        "worker-killing job is quarantined (default: 3)")
    p.add_argument("--no-checkpoints", action="store_false",
                   dest="checkpoints",
                   help="disable durable level checkpoints (crashed or "
                        "repeated queries re-enumerate from scratch)")
    p.add_argument("--checkpoint-budget", type=_parse_bytes, default=None,
                   dest="checkpoint_budget", metavar="BYTES",
                   help="LRU-evict checkpoint journals beyond this many "
                        "bytes at startup (accepts K/M/G suffixes)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("server",
                       help="run the HTTP synthesis server")
    p.add_argument("--store", required=True,
                   help="service store directory (shared by both lanes)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = OS-assigned, printed at start)")
    p.add_argument("--interactive-workers", type=int, default=1,
                   dest="interactive_workers",
                   help="worker processes in the interactive lane")
    p.add_argument("--batch-workers", type=int, default=2,
                   dest="batch_workers",
                   help="worker processes in the batch lane")
    p.add_argument("--depth", type=int, default=2,
                   help="max jobs in flight per worker")
    p.add_argument("--backend", default="vector",
                   choices=sorted(registry.names())
                   + sorted(registry.aliases()))
    p.add_argument("--max-queue-interactive", type=int, default=16,
                   dest="max_queue_interactive", metavar="N",
                   help="interactive backlog bound past the lane's slots "
                        "(submissions beyond it get 429)")
    p.add_argument("--max-queue-batch", type=int, default=32,
                   dest="max_queue_batch", metavar="N",
                   help="batch backlog bound (see --max-queue-interactive)")
    p.add_argument("--idle-timeout", type=float, default=None,
                   dest="idle_timeout", metavar="SECONDS",
                   help="exit after this long without requests "
                        "(default: run until interrupted)")
    p.add_argument("--no-reuse-results", action="store_false",
                   dest="reuse_results",
                   help="re-run repeat submissions instead of answering "
                        "from the persistent result store")
    p.add_argument("--no-checkpoints", action="store_false",
                   dest="checkpoints",
                   help="disable durable level checkpoints")
    p.add_argument("--checkpoint-budget", type=_parse_bytes, default=None,
                   dest="checkpoint_budget", metavar="BYTES",
                   help="LRU-evict checkpoint journals beyond this many "
                        "bytes (applied at startup and periodically; "
                        "accepts K/M/G suffixes)")
    p.add_argument("--no-preempt", action="store_false",
                   dest="preempt",
                   help="never preempt batch jobs for saturated "
                        "interactive admissions (trades interactive "
                        "p99 for batch throughput)")
    p.add_argument("--brownout-after", type=float, default=2.0,
                   dest="brownout_after", metavar="SECONDS",
                   help="shed batch submissions after the interactive "
                        "lane has been saturated this long")
    p.add_argument("--brownout-exit-after", type=float, default=5.0,
                   dest="brownout_exit_after", metavar="SECONDS",
                   help="leave brownout once the interactive lane has "
                        "been calm this long")
    _add_auth_token_arg(p, "require this bearer token on every request "
                           "(default: $REPRO_AUTH_TOKEN; unset = open)")
    p.set_defaults(func=_cmd_server)

    p = sub.add_parser("client",
                       help="talk to a running `repro server` over HTTP")
    p.add_argument("action",
                   choices=["submit", "status", "cancel", "events",
                            "health", "metrics"])
    p.add_argument("job_id", nargs="?", default=None,
                   help="job id for status/cancel/events")
    p.add_argument("--server", required=True, metavar="URL",
                   help="server address, e.g. http://127.0.0.1:8765")
    p.add_argument("--pos", nargs="*", default=[], help="positive examples")
    p.add_argument("--neg", nargs="*", default=[], help="negative examples")
    p.add_argument("--spec-file", type=_parse_spec_file, default=None,
                   dest="spec_file", metavar="PATH")
    p.add_argument("--cost", type=_parse_cost, default=None,
                   help="cost homomorphism c1,c2,c3,c4,c5")
    p.add_argument("--backend", default="vector",
                   choices=sorted(registry.names())
                   + sorted(registry.aliases()))
    p.add_argument("--error", type=float, default=0.0, help="allowed error")
    p.add_argument("--max-cost", type=int, default=None, dest="max_cost")
    p.add_argument("--max-generated", type=int, default=None,
                   dest="max_generated")
    p.add_argument("--time-limit", type=float, default=None,
                   dest="time_limit")
    p.add_argument("--class", choices=["interactive", "batch"],
                   default=None, dest="klass",
                   help="override the scheduler's workload classification")
    p.add_argument("--wait", action="store_true",
                   help="block (with backoff) until the job finishes")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait timeout in seconds")
    _add_auth_token_arg(p, "bearer token for an authenticated server "
                           "(default: $REPRO_AUTH_TOKEN)")
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser("submit",
                       help="submit a job to a running `repro serve` "
                            "or `repro server`")
    p.add_argument("--store", default=None,
                   help="the service's store directory (file protocol)")
    p.add_argument("--server", default=None, metavar="URL",
                   help="route through a running `repro server` instead "
                        "of the file-based store protocol")
    p.add_argument("--pos", nargs="*", default=[], help="positive examples")
    p.add_argument("--neg", nargs="*", default=[], help="negative examples")
    p.add_argument("--spec-file", type=_parse_spec_file, default=None,
                   dest="spec_file", metavar="PATH")
    p.add_argument("--cost", type=_parse_cost, default=None,
                   help="cost homomorphism c1,c2,c3,c4,c5")
    p.add_argument("--backend", default="vector",
                   choices=sorted(registry.names())
                   + sorted(registry.aliases()))
    p.add_argument("--error", type=float, default=0.0, help="allowed error")
    p.add_argument("--max-cost", type=int, default=None, dest="max_cost")
    p.add_argument("--max-generated", type=int, default=None,
                   dest="max_generated")
    p.add_argument("--time-limit", type=float, default=None,
                   dest="time_limit")
    p.add_argument("--priority", choices=sorted(_PRIORITIES),
                   default="normal")
    p.add_argument("--wait", action="store_true",
                   help="block until the result appears in the outbox")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait timeout in seconds")
    p.add_argument("--cancel", default=None, metavar="JOB_ID",
                   help="cancel a previously submitted job id instead of "
                        "submitting")
    _add_auth_token_arg(p, "bearer token when submitting over --server "
                           "(default: $REPRO_AUTH_TOKEN)")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("trace",
                       help="fetch a job's trace from a running server")
    p.add_argument("job_id", help="job id (the submission fingerprint)")
    p.add_argument("--server", required=True, metavar="URL",
                   help="server address, e.g. http://127.0.0.1:8765")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write Chrome trace-event JSON here "
                        "(loadable at https://ui.perfetto.dev)")
    _add_auth_token_arg(p, "bearer token for an authenticated server "
                           "(default: $REPRO_AUTH_TOKEN)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("report",
                       help="render BENCH_*.json artifacts as markdown")
    p.add_argument("--dir", default=".",
                   help="directory holding the artifact files")
    p.add_argument("--glob", default="BENCH_*.json",
                   help="artifact filename pattern")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the markdown here instead of stdout")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("table1", help="scalar vs vector engine comparison")
    p.add_argument("--pool", type=int, default=8)
    p.add_argument("--max-generated", type=int, default=200_000,
                   dest="max_generated")
    p.add_argument("--repeats", type=int, default=1)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="AlphaRegex vs Paresy comparison")
    p.add_argument("--paresy-budget", type=int, default=3_000_000,
                   dest="paresy_budget")
    p.add_argument("--ar-budget", type=int, default=40_000, dest="ar_budget")
    p.add_argument("--repeats", type=int, default=1)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("figure1", help="cost-function impact sweep")
    p.add_argument("--count", type=int, default=10,
                   help="benchmarks per type")
    p.add_argument("--max-generated", type=int, default=400_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_figure1)

    p = sub.add_parser("outliers", help="duration distribution table")
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--max-generated", type=int, default=400_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_outliers)

    p = sub.add_parser("error-table", help="allowed-error sweep (§5.2)")
    p.add_argument("--errors", type=int, nargs="*",
                   default=[50, 45, 40, 35, 30, 25, 20, 15],
                   help="allowed error percentages")
    p.add_argument("--max-generated", type=int, default=5_000_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_error_table)

    p = sub.add_parser("ablations", help="design-choice ablations (E6)")
    p.add_argument("--max-generated", type=int, default=2_000_000,
                   dest="max_generated")
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("suite", help="print a generated benchmark suite")
    p.add_argument("--type", type=int, default=1, choices=[1, 2])
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_suite)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
