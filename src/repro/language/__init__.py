"""Infix closure, the ordered universe ``ic(P ∪ N)``, and the guide table."""

from .infix import all_infixes, infix_closure, is_infix_closed, sort_shortlex
from .guide_table import FlatGuideTable, GuideTable
from .universe import Universe, next_power_of_two

__all__ = [
    "all_infixes",
    "infix_closure",
    "is_infix_closed",
    "sort_shortlex",
    "FlatGuideTable",
    "GuideTable",
    "Universe",
    "next_power_of_two",
]
