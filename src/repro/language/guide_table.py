"""The guide table: staged pre-computation of word splits (§3, "Staging").

For each word ``w`` of the universe the guide table stores every split
``w = σ1·σ2`` as a pair of universe indices ``(i, j)``.  Because the
universe is infix-closed, both halves of every split are guaranteed to be
universe words, so concatenation of two characteristic sequences reduces
to the branch-free bit-gather loop of Algorithm 2:

    bit_w(l · r) = OR over (i, j) ∈ gt[w] of ( bit_i(l) AND bit_j(r) )

The table is computed once per ``(P, N)`` — it only depends on the
universe — and reused for every concatenation and Kleene-star during the
whole search.  :attr:`GuideTable.flat` exposes the same data as flattened
numpy arrays for the vectorised engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .universe import Universe


@dataclass(frozen=True)
class FlatGuideTable:
    """Structure-of-arrays view of the guide table.

    ``offsets`` has ``n_words + 1`` entries; the splits of word ``w`` are
    ``(left_index[k], right_index[k])`` for ``k`` in
    ``offsets[w] : offsets[w+1]``.  This mirrors the paper's "array of
    arrays of pairs of offsets into the language cache".
    """

    offsets: np.ndarray
    left_index: np.ndarray
    right_index: np.ndarray


class GuideTable:
    """All splits of all universe words, indexed by target word."""

    __slots__ = ("universe", "splits", "n_splits", "_flat")

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        splits: List[Tuple[Tuple[int, int], ...]] = []
        for word in universe.words:
            pairs = []
            for cut in range(len(word) + 1):
                left, right = word[:cut], word[cut:]
                pairs.append((universe.index[left], universe.index[right]))
            splits.append(tuple(pairs))
        self.splits: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(splits)
        self.n_splits: int = sum(len(pairs) for pairs in splits)
        self._flat: Optional[FlatGuideTable] = None

    def __getitem__(self, word_index: int) -> Tuple[Tuple[int, int], ...]:
        """The splits ``(i, j)`` of the ``word_index``-th universe word."""
        return self.splits[word_index]

    def __len__(self) -> int:
        return len(self.splits)

    @property
    def flat(self) -> FlatGuideTable:
        """Flattened numpy view (built lazily, cached)."""
        if self._flat is None:
            offsets = np.zeros(len(self.splits) + 1, dtype=np.int64)
            left: List[int] = []
            right: List[int] = []
            for w, pairs in enumerate(self.splits):
                offsets[w + 1] = offsets[w] + len(pairs)
                for i, j in pairs:
                    left.append(i)
                    right.append(j)
            self._flat = FlatGuideTable(
                offsets=offsets,
                left_index=np.asarray(left, dtype=np.int64),
                right_index=np.asarray(right, dtype=np.int64),
            )
        return self._flat
