"""The guide table: staged pre-computation of word splits (§3, "Staging").

For each word ``w`` of the universe the guide table stores every split
``w = σ1·σ2`` as a pair of universe indices ``(i, j)``.  Because the
universe is infix-closed, both halves of every split are guaranteed to be
universe words, so concatenation of two characteristic sequences reduces
to the branch-free bit-gather loop of Algorithm 2:

    bit_w(l · r) = OR over (i, j) ∈ gt[w] of ( bit_i(l) AND bit_j(r) )

The table is computed once per ``(P, N)`` — it only depends on the
universe — and reused for every concatenation and Kleene-star during the
whole search.  :attr:`GuideTable.flat` exposes the same data as flattened
numpy arrays for the vectorised engine, together with the padded gather
tables the bit-sliced concat kernel needs, so the kernel itself does no
index arithmetic at all — the staging discipline of §3 applied to the
kernel's own bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .universe import Universe


@dataclass(frozen=True)
class FlatGuideTable:
    """Structure-of-arrays view of the guide table.

    ``offsets`` has ``n_words + 1`` entries; the splits of word ``w`` are
    ``(left_index[k], right_index[k])`` for ``k`` in
    ``offsets[w] : offsets[w+1]``.  This mirrors the paper's "array of
    arrays of pairs of offsets into the language cache".

    The remaining fields are the precomputed gather tables of the
    bit-sliced concat kernel:

    * ``max_splits_per_word`` — the padded per-word segment width;
    * ``left_padded[w * max_splits_per_word + t]`` /
      ``right_padded[...]`` — the split table padded to a uniform
      ``max_splits_per_word`` splits per word by *repeating each word's
      last split* (OR is idempotent, so duplicated splits never change
      the result).  The bit-sliced concat kernel gathers these in one
      shot and OR-reduces each word's fixed-width segment with a single
      vectorised reduction — no ragged ``reduceat`` on the hot path.
    """

    offsets: np.ndarray
    left_index: np.ndarray
    right_index: np.ndarray
    max_splits_per_word: int
    left_padded: np.ndarray
    right_padded: np.ndarray

    @property
    def n_splits(self) -> int:
        """Total number of splits across all words."""
        return int(self.left_index.shape[0])


class GuideTable:
    """All splits of all universe words, indexed by target word."""

    __slots__ = ("universe", "splits", "n_splits", "_flat")

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        splits: List[Tuple[Tuple[int, int], ...]] = []
        for word in universe.words:
            pairs = []
            for cut in range(len(word) + 1):
                left, right = word[:cut], word[cut:]
                pairs.append((universe.index[left], universe.index[right]))
            splits.append(tuple(pairs))
        self.splits: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(splits)
        self.n_splits: int = sum(len(pairs) for pairs in splits)
        self._flat: Optional[FlatGuideTable] = None

    def __getitem__(self, word_index: int) -> Tuple[Tuple[int, int], ...]:
        """The splits ``(i, j)`` of the ``word_index``-th universe word."""
        return self.splits[word_index]

    def __len__(self) -> int:
        return len(self.splits)

    @property
    def flat(self) -> FlatGuideTable:
        """Flattened numpy view (built lazily, cached)."""
        if self._flat is None:
            n_words = len(self.splits)
            offsets = np.zeros(n_words + 1, dtype=np.int64)
            left: List[int] = []
            right: List[int] = []
            for w, pairs in enumerate(self.splits):
                offsets[w + 1] = offsets[w] + len(pairs)
                for i, j in pairs:
                    left.append(i)
                    right.append(j)
            left_index = np.asarray(left, dtype=np.int64)
            right_index = np.asarray(right, dtype=np.int64)
            sizes = offsets[1:] - offsets[:-1]
            pad = int(sizes.max()) if n_words else 0
            if n_words:
                # (n_words, pad) split positions, clamped to each word's
                # last split — the duplicate-padding described above.
                position = np.minimum(
                    np.arange(pad, dtype=np.int64)[None, :],
                    (sizes - 1)[:, None],
                )
                padded = (offsets[:-1, None] + position).ravel()
            else:
                padded = np.zeros(0, dtype=np.int64)
            self._flat = FlatGuideTable(
                offsets=offsets,
                left_index=left_index,
                right_index=right_index,
                max_splits_per_word=pad,
                left_padded=left_index[padded],
                right_padded=right_index[padded],
            )
        return self._flat
