"""Infix closure and shortlex ordering (Defs. 2.2 and 2.5 of the paper).

``w`` is an *infix* (substring) of ``σ`` if ``σ = σ1·w·σ2`` for some
strings ``σi``.  The infix closure ``ic(S)`` is the smallest infix-closed
superset of ``S``; it is what makes bottom-up compositional construction
of characteristic sequences possible (§3, "First space-time trade-off").

Shortlex compares by length first, then lexicographically by a chosen
total order on the alphabet; it is the total order the paper uses to lay
characteristic sequences out in memory.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple


def all_infixes(word: str) -> Set[str]:
    """All infixes of ``word``, including ``ε`` and ``word`` itself."""
    infixes: Set[str] = {""}
    length = len(word)
    for start in range(length):
        for end in range(start + 1, length + 1):
            infixes.add(word[start:end])
    return infixes


def infix_closure(words: Iterable[str]) -> Set[str]:
    """``ic(words)``: the set of all infixes of all the words.

    Always contains ``ε`` (``ic(∅)`` is ``{ε}`` by this convention, which
    is harmless: the synthesiser handles the empty specification before
    any universe is built).
    """
    closure: Set[str] = {""}
    for word in words:
        closure.update(all_infixes(word))
    return closure


def is_infix_closed(words: Iterable[str]) -> bool:
    """True iff the set of ``words`` is closed under taking infixes."""
    pool = set(words)
    return all(all_infixes(word) <= pool for word in pool)


def shortlex_key(word: str, rank: Dict[str, int]) -> Tuple[int, Tuple[int, ...]]:
    """Sort key realising shortlex w.r.t. the alphabet order ``rank``.

    ``rank`` maps each character to its position in the chosen total order
    on Σ.  Characters absent from ``rank`` raise ``KeyError`` — the caller
    is responsible for supplying a rank covering the full alphabet.
    """
    return (len(word), tuple(rank[ch] for ch in word))


def sort_shortlex(words: Iterable[str], alphabet: Sequence[str]) -> List[str]:
    """Sort ``words`` in shortlex order w.r.t. the order of ``alphabet``."""
    rank = {ch: i for i, ch in enumerate(alphabet)}
    return sorted(set(words), key=lambda word: shortlex_key(word, rank))
