"""The Universe: a totally-ordered, infix-closed word domain.

A :class:`Universe` materialises ``ic(P ∪ N)`` with a fixed shortlex
order, and owns every translation between *languages* (sets of words) and
*characteristic sequences* (CSs — bitvectors with one bit per universe
word, stored as Python ints; bit ``i`` set means "the language contains
the ``i``-th word").

The paper's second space-time trade-off — padding bitvector length to the
next power of two — is reproduced via :attr:`Universe.padded_bits` and
:attr:`Universe.lanes` (the number of 64-bit machine words a CS occupies
in the vectorised engine).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .infix import infix_closure, sort_shortlex


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is ≥ ``value`` (and ≥ 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


class Universe:
    """``ic(P ∪ N)`` with a total (shortlex) order and bit indexing.

    Instances are immutable after construction and shared by every
    component of a synthesis run: the guide table, both engines, and the
    infix-power-series reference implementation.
    """

    __slots__ = (
        "alphabet",
        "words",
        "index",
        "n_words",
        "padded_bits",
        "lanes",
        "eps_index",
        "eps_bit",
        "full_mask",
        "max_word_length",
    )

    def __init__(
        self,
        base_words: Iterable[str],
        alphabet: Optional[Sequence[str]] = None,
    ) -> None:
        base = list(base_words)
        if alphabet is None:
            chars = sorted({ch for word in base for ch in word})
        else:
            chars = list(alphabet)
            missing = {ch for word in base for ch in word} - set(chars)
            if missing:
                raise ValueError(
                    "alphabet %r does not cover example characters %r"
                    % (chars, sorted(missing))
                )
        self.alphabet: Tuple[str, ...] = tuple(chars)
        closed = infix_closure(base)
        ordered = sort_shortlex(closed, self.alphabet)
        self.words: Tuple[str, ...] = tuple(ordered)
        self.index: Dict[str, int] = {word: i for i, word in enumerate(ordered)}
        self.n_words: int = len(ordered)
        self.padded_bits: int = max(8, next_power_of_two(self.n_words))
        self.lanes: int = (self.padded_bits + 63) // 64
        self.eps_index: int = self.index[""]
        self.eps_bit: int = 1 << self.eps_index
        self.full_mask: int = (1 << self.n_words) - 1
        self.max_word_length: int = max((len(w) for w in ordered), default=0)

    # ------------------------------------------------------------------
    # Language <-> characteristic sequence translation
    # ------------------------------------------------------------------
    def word_bit(self, word: str) -> int:
        """The single-bit CS of ``{word}``; raises ``KeyError`` if the word
        is not in the universe."""
        return 1 << self.index[word]

    def cs_of(self, words: Iterable[str]) -> int:
        """CS of the intersection of a language with the universe.

        Words outside the universe are rejected with ``KeyError`` — build
        CSs of arbitrary languages with :func:`cs_of_predicate` instead.
        """
        cs = 0
        for word in words:
            cs |= 1 << self.index[word]
        return cs

    def cs_of_predicate(self, predicate) -> int:
        """CS of ``{w ∈ universe | predicate(w)}``."""
        cs = 0
        for i, word in enumerate(self.words):
            if predicate(word):
                cs |= 1 << i
        return cs

    def cs_of_regex(self, regex) -> int:
        """CS of ``Lang(regex) ∩ universe`` via the derivative matcher.

        This is the reference semantics every engine kernel is tested
        against: for any regexes ``r, s`` built over the universe's
        alphabet, ``concat_kernel(cs(r), cs(s)) == cs_of_regex(r·s)``.
        """
        from ..regex.derivatives import matches

        return self.cs_of_predicate(lambda word: matches(regex, word))

    def words_of(self, cs: int) -> Tuple[str, ...]:
        """The universe words whose bits are set in ``cs``."""
        selected: List[str] = []
        i = 0
        while cs:
            if cs & 1:
                selected.append(self.words[i])
            cs >>= 1
            i += 1
        return tuple(selected)

    def char_cs(self, symbol: str) -> int:
        """CS of the single-character language ``{symbol}``.

        Characters that occur in no universe word denote the empty
        language relative to the universe, hence CS ``0``.
        """
        return self.word_bit(symbol) if symbol in self.index else 0

    def __len__(self) -> int:
        return self.n_words

    def __contains__(self, word: str) -> bool:
        return word in self.index

    def __repr__(self) -> str:
        return "Universe(n_words=%d, alphabet=%r, padded_bits=%d)" % (
            self.n_words,
            "".join(self.alphabet),
            self.padded_bits,
        )
