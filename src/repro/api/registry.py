"""The pluggable backend registry.

Replaces the hardcoded ``BACKENDS`` dict of the original facade: every
search engine is registered under a canonical name with friendly
aliases, a capability set, and a factory.  The session layer resolves
names through a registry, so alternative engines (a real GPU build, a
remote executor, …) plug in without touching the serving code — the
Polynesia-style "specialised engines behind one interface" seam.

Capabilities are advisory flags the serving layer consults:

* ``"vectorised"`` — batched array-level kernels.
* ``"batch-serving"`` — the engine's cache layout supports the shared
  multi-spec sweep of :meth:`repro.api.session.Session.synthesize_many`.
* ``"guide-table-ablation"`` — honours ``use_guide_table=False``.
* ``"onthefly"`` — degrades gracefully when the cache capacity is hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple


@dataclass(frozen=True)
class BackendInfo:
    """One registered engine: canonical name, factory and metadata."""

    name: str
    factory: Callable[..., object]
    aliases: Tuple[str, ...] = ()
    capabilities: FrozenSet[str] = frozenset()
    description: str = ""

    def supports(self, capability: str) -> bool:
        """True iff the backend advertises ``capability``."""
        return capability in self.capabilities


class BackendRegistry:
    """A name → engine mapping with aliases and duplicate rejection.

    Canonical names and aliases live in one namespace: registering a
    name (or alias) that is already taken raises :class:`ValueError`
    unless ``replace=True`` is passed — silent shadowing of an engine
    is never what a deployment wants.
    """

    def __init__(self) -> None:
        self._backends: Dict[str, BackendInfo] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Callable[..., object],
        aliases: Iterable[str] = (),
        capabilities: Iterable[str] = (),
        description: str = "",
        replace: bool = False,
    ) -> BackendInfo:
        """Register an engine factory; returns its :class:`BackendInfo`."""
        alias_tuple = tuple(aliases)
        if not replace:
            for candidate in (name,) + alias_tuple:
                if candidate in self._backends or candidate in self._aliases:
                    raise ValueError(
                        "backend name %r is already registered; pass "
                        "replace=True to override" % candidate
                    )
        info = BackendInfo(
            name=name,
            factory=factory,
            aliases=alias_tuple,
            capabilities=frozenset(capabilities),
            description=description,
        )
        self._backends[name] = info
        for alias in alias_tuple:
            self._aliases[alias] = name
        return info

    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve an alias (or canonical name) to the canonical name."""
        return self.resolve(name).name

    def resolve(self, name: str) -> BackendInfo:
        """The :class:`BackendInfo` for a name or alias.

        Raises :class:`ValueError` for unknown names, listing every
        accepted spelling — the error contract the CLI and the legacy
        facade document.
        """
        target = self._aliases.get(name, name)
        info = self._backends.get(target)
        if info is None:
            raise ValueError(
                "unknown backend %r; expected one of %s"
                % (name, sorted(self._backends) + sorted(self._aliases))
            )
        return info

    def names(self) -> Tuple[str, ...]:
        """All canonical names, sorted."""
        return tuple(sorted(self._backends))

    def aliases(self) -> Dict[str, str]:
        """A copy of the alias → canonical-name mapping."""
        return dict(self._aliases)

    def backends(self) -> Dict[str, Callable[..., object]]:
        """A canonical-name → factory snapshot (the legacy ``BACKENDS``
        shape)."""
        return {name: info.factory for name, info in self._backends.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._backends or name in self._aliases

    def __len__(self) -> int:
        return len(self._backends)


def _build_default() -> BackendRegistry:
    # Engine imports stay local: the registry is imported during
    # ``repro.core`` package initialisation, before the engine modules
    # exist in a finished state.
    from ..core.scalar_engine import ScalarEngine
    from ..core.vector_engine import VectorEngine

    registry = BackendRegistry()
    registry.register(
        "scalar",
        ScalarEngine,
        aliases=("cpu",),
        capabilities=(
            "batch-serving",
            "guide-table-ablation",
            "onthefly",
        ),
        description="the paper's CPU implementation: one CS at a time",
    )
    registry.register(
        "vector",
        VectorEngine,
        aliases=("gpu", "gpu-sim"),
        capabilities=(
            "batch-serving",
            "onthefly",
            "vectorised",
        ),
        description="the paper's GPU implementation (numpy-simulated)",
    )
    return registry


_default: Optional[BackendRegistry] = None


def default_registry() -> BackendRegistry:
    """The process-wide default registry (built lazily, shared).

    Ships the paper's two engines under their historical names and
    aliases; sessions use it unless given their own.  Plugins may
    :meth:`BackendRegistry.register` additional engines onto it.
    """
    global _default
    if _default is None:
        _default = _build_default()
    return _default
