"""The session-oriented public API: requests, configs, backends, serving.

This package is the architectural seam between the synthesis core and
anything that serves it at scale:

* :class:`~repro.api.config.SynthesisRequest` /
  :class:`~repro.api.config.EngineConfig` — typed request/configuration
  objects replacing the keyword sprawl of the original facade.
* :class:`~repro.api.registry.BackendRegistry` — pluggable,
  capability-aware engine registration (aliases, duplicate rejection).
* :class:`~repro.api.session.Session` — staged-artifact reuse across
  requests, per-request budgets/cancellation/progress, and
  :meth:`~repro.api.session.Session.synthesize_many` batched
  multi-spec serving from one shared enumeration sweep.
* :class:`~repro.api.session.SynthesisService` — the long-lived serving
  front wrapping one shared session.

:func:`repro.synthesize` remains as a thin backward-compatible facade
over this layer.
"""

from .config import EngineConfig, SynthesisRequest
from .progress import CancellationToken, ProgressEvent
from .registry import BackendInfo, BackendRegistry, default_registry
from .session import Session, SessionStats, SynthesisService, staging_key_of

__all__ = [
    "EngineConfig",
    "SynthesisRequest",
    "CancellationToken",
    "ProgressEvent",
    "BackendInfo",
    "BackendRegistry",
    "default_registry",
    "Session",
    "SessionStats",
    "SynthesisService",
    "staging_key_of",
]
