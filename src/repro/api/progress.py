"""Progress streaming and cancellation primitives of the session API.

A request's ``on_progress`` callback receives one :class:`ProgressEvent`
per completed cost level and a final event with :attr:`ProgressEvent.done`
set and the finished result attached — the serving-layer hook for
streaming an incumbent to impatient clients.  :class:`CancellationToken`
is the matching write-once switch for the ``cancel`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ProgressEvent:
    """A snapshot of a running (or just-finished) search.

    ``cost`` is the highest fully-built cost level, ``generated`` and
    ``stored`` the cumulative candidate and cache counters, and
    ``elapsed_seconds`` the serving-side wall-clock since the request
    started.  ``elapsed_s`` is the *engine's own* monotonic clock
    (``time.monotonic()`` since the sweep began, populated by the
    engine-level hooks): it travels with the event, so a progress stream
    forwarded across a process boundary stays self-describing — the
    receiver never has to reconstruct timing from its own clocks.  On
    the final event ``done`` is True and ``incumbent`` carries the
    :class:`~repro.core.result.SynthesisResult` — the minimal solution
    when the status is ``"success"`` (the bottom-up sweep makes the
    first solution the best one, so there is never a weaker incumbent
    to stream before it).
    """

    cost: int
    generated: int
    stored: int
    elapsed_seconds: float
    done: bool = False
    incumbent: Optional[object] = None
    elapsed_s: float = 0.0

    # ------------------------------------------------------------------
    # Wire codec (used by the HTTP event stream): the engine-side
    # ``elapsed_s`` monotonic clock must survive the trip, so a streamed
    # event reads exactly like an in-process one.
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict:
        """JSON-serialisable form; a result incumbent becomes its
        ``to_dict()`` summary."""
        data = {
            "cost": self.cost,
            "generated": self.generated,
            "stored": self.stored,
            "elapsed_seconds": self.elapsed_seconds,
            "done": self.done,
            "elapsed_s": self.elapsed_s,
        }
        if self.incumbent is not None:
            incumbent = self.incumbent
            data["incumbent"] = (
                incumbent.to_dict()
                if hasattr(incumbent, "to_dict")
                else incumbent
            )
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "ProgressEvent":
        """Inverse of :meth:`to_json_dict`.

        The incumbent (when present) stays the plain result *dict* —
        the receiving side of a network stream has no engine state to
        rebuild a live :class:`~repro.core.result.SynthesisResult`
        from, and the dict already carries every reportable field.
        """
        return cls(
            cost=int(data.get("cost", -1)),
            generated=int(data.get("generated", 0)),
            stored=int(data.get("stored", 0)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            done=bool(data.get("done", False)),
            incumbent=data.get("incumbent"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


class CancellationToken:
    """A write-once cancellation switch, polled between cost levels.

    Pass the token itself as a request's ``cancel`` hook (it is
    callable) and flip it from any other control flow::

        token = CancellationToken()
        request = SynthesisRequest(spec, cancel=token)
        ...
        token.cancel()        # next level boundary stops the search
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._cancelled

    def __call__(self) -> bool:
        return self._cancelled
