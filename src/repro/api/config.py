"""Request and configuration objects of the session-oriented API.

Two small frozen dataclasses replace the keyword sprawl of the original
``synthesize``/``make_engine`` facade:

* :class:`EngineConfig` — *how* to search: which backend, cache
  capacity, ablation switches, and a default candidate budget.  Configs
  are hashable, so the session layer can use them as part of batch
  grouping keys.
* :class:`SynthesisRequest` — *what* to search for: the specification
  plus everything that varies per request (cost function, cost ceiling,
  error tolerance, budgets, progress/cancellation hooks).

A request may carry its own :attr:`SynthesisRequest.config`, overriding
the session default for that request only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..regex.cost import CostFunction
from ..spec import Spec


@dataclass(frozen=True)
class EngineConfig:
    """Engine-side knobs, shared by every request served with it.

    ``backend`` is resolved through the backend registry, so aliases
    (``"cpu"``, ``"gpu"``, …) and plugin-registered engines work
    everywhere a config does.  ``use_guide_table`` and
    ``check_uniqueness`` are the paper's ablation switches;
    ``max_cache_size`` bounds the language cache (OnTheFly mode past
    it); ``max_generated`` is the default candidate budget, overridable
    per request.

    ``shard_workers`` turns on intra-query parallelism: with a value
    ``>= 2`` the engine partitions each cost level's pair work across
    that many shard worker processes (:mod:`repro.core.shard`),
    bit-identically to the serial sweep; ``1`` (the default) is exactly
    the serial code path.  In the service pool, a job whose config
    shards claims that many scheduler slots (see
    :meth:`repro.service.pool.WorkerPool.plan_assignments`).

    ``trace`` turns on end-to-end span recording (:mod:`repro.obs`):
    every layer that touches the request — staging, checkpoint replay,
    per-cost-level enumeration, shard fan-out — records timed spans
    into ``result.extra["trace"]``.  Like ``shard_workers`` it is a
    pure execution knob: it never changes the answer, and it is
    excluded from the wire fingerprint for exactly that reason.
    """

    backend: str = "vector"
    max_cache_size: Optional[int] = None
    use_guide_table: bool = True
    check_uniqueness: bool = True
    max_generated: Optional[int] = None
    shard_workers: int = 1
    trace: bool = False

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True, eq=False)
class SynthesisRequest:
    """One synthesis question: a spec plus its per-request parameters.

    ``cost_fn`` defaults to the uniform homomorphism and ``max_cost`` to
    the overfit-union ceiling that guarantees termination for precise
    synthesis — the same defaults as :func:`repro.synthesize`.

    ``on_progress`` receives a :class:`~repro.api.progress.ProgressEvent`
    after every completed cost level and a final event carrying the
    result; ``cancel`` is polled between levels (any zero-argument
    truth-valued callable, e.g. a
    :class:`~repro.api.progress.CancellationToken`); ``time_limit``
    bounds the search wall-clock in seconds.  Requests carrying hooks,
    a time limit or a private budget are always served individually —
    they never join a shared batch sweep.

    ``preempt`` is the preemption probe: polled at the engine's safe
    points, a truthy return makes the run checkpoint mid-level (when a
    durable store is attached) and stop with ``status="preempted"`` —
    unlike ``cancel`` the work is meant to continue later, resuming
    from the checkpoint.  Like every hook it never crosses the wire
    fingerprint.

    ``trace_ctx`` is the portable trace identity
    (:class:`~repro.obs.trace.TraceContext`) minted where the request
    entered the system; ``tracer`` is the live per-process recorder
    (:class:`~repro.obs.trace.Tracer`).  Both are observability-only:
    like the hooks they never cross the wire fingerprint, and a
    ``None`` tracer with ``config.trace`` unset is the zero-overhead
    path.
    """

    spec: Spec
    cost_fn: Optional[CostFunction] = None
    max_cost: Optional[int] = None
    allowed_error: float = 0.0
    max_generated: Optional[int] = None
    time_limit: Optional[float] = None
    on_progress: Optional[Callable[[object], None]] = None
    cancel: Optional[Callable[[], object]] = None
    preempt: Optional[Callable[[], object]] = None
    config: Optional[EngineConfig] = None
    tag: Optional[str] = None
    trace_ctx: Optional[object] = None
    tracer: Optional[object] = None

    @classmethod
    def of(cls, value: Union["SynthesisRequest", Spec, tuple]) -> "SynthesisRequest":
        """Coerce a request, a :class:`Spec`, or a ``(positives,
        negatives)`` pair into a :class:`SynthesisRequest`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, Spec):
            return cls(spec=value)
        positives, negatives = value
        return cls(spec=Spec(positives, negatives))

    def replace(self, **changes: object) -> "SynthesisRequest":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def effective_cost_fn(self) -> CostFunction:
        """The cost function, defaulted to uniform."""
        return self.cost_fn if self.cost_fn is not None else CostFunction.uniform()

    def effective_max_cost(self, cost_fn: CostFunction) -> int:
        """The cost ceiling, defaulted to the overfit-union guarantee."""
        if self.max_cost is not None:
            return self.max_cost
        return max(cost_fn.overfit_cost(self.spec.positive), cost_fn.literal)
