"""The session and serving layer: staged-artifact reuse and batching.

The paper's staging insight is that the universe ``ic(P ∪ N)``, the
guide table and its flattened numpy view depend only on the example
*strings* — never on the cost function or the search configuration.  A
:class:`Session` makes that insight a serving primitive: staging is
cached keyed by the deduplicated example-string set (plus alphabet), so
any number of requests over the same strings pay the staging cost once.

:meth:`Session.synthesize_many` goes one step further.  The enumeration
sweep itself — which candidates are built, in which order, and which
survive dedupe into the cache — depends only on ``(universe, cost
function)``; the specification is consulted *only* to decide when to
stop.  So requests that share a universe and a cost function are served
from **one** shared sweep: an enumeration-only engine builds the cost
levels, and after each level every still-open request scans the newly
stored CSs for its own first satisfying candidate.  Because the first
satisfying candidate of a spec can never be a duplicate of an earlier
CS (its earlier occurrence would already have satisfied the spec), the
answer each request receives is bit-identical to what a solo
:func:`repro.synthesize` call returns — the property the test-suite and
``BENCH_session.json`` both assert.

:class:`SynthesisService` is the long-lived front: a backend registry,
a default :class:`~repro.api.config.EngineConfig`, and a shared session
with a bounded staging cache.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bitops import int_to_lanes, popcount_rows
from ..core.cache import PackedCache
from ..core.engine import (
    OP_EMPTY,
    OP_EPSILON,
    STATUS_BUDGET,
    STATUS_NOT_FOUND,
    STATUS_PREEMPTED,
    STATUS_SUCCESS,
    SearchEngine,
    cs_solves,
    max_errors_for,
)
from ..core.reconstruct import reconstruct
from ..core.result import SynthesisResult
from ..language.guide_table import GuideTable
from ..language.universe import Universe
from ..obs.export import trace_payload
from ..obs.trace import TraceContext, Tracer
from ..regex.cost import CostFunction
from ..spec import Spec
from .config import EngineConfig, SynthesisRequest
from .progress import ProgressEvent
from .registry import BackendRegistry, default_registry

#: Staging cache key: the deduplicated example-string set and the
#: alphabet (both determine ``ic(P ∪ N)`` and hence the guide table).
StagingKey = Tuple[frozenset, Tuple[str, ...]]


@dataclass
class SessionStats:
    """Bookkeeping of what the session amortised."""

    staging_builds: int = 0
    staging_hits: int = 0
    requests_served: int = 0
    batch_groups: int = 0
    batch_requests: int = 0


def staging_key_of(spec: Spec) -> StagingKey:
    """The staging-cache key of a specification."""
    return (frozenset(spec.all_words), spec.alphabet)


def _phase_breakdown(
    engine: SearchEngine, staging_seconds: float, elapsed: float
) -> Dict[str, float]:
    """Per-phase wall-clock of one run, for perf-attribution artifacts.

    ``dedupe``/``solve``/``store`` come from the engine's own batch
    timers (zero for engines that do not time themselves, e.g. the
    scalar engine); ``staging`` is the session-side staging resolution
    (near zero on a warm hit); ``enumerate`` is the run's residual —
    kernel and emit time for the vectorised engine, everything for the
    scalar one.
    """
    phases = dict(engine.phase_seconds)
    phases["staging"] = staging_seconds
    phases["enumerate"] = max(
        0.0, elapsed - sum(engine.phase_seconds.values())
    )
    # ``total`` covers everything listed, so phase shares sum to ~1.
    phases["total"] = staging_seconds + elapsed
    return phases


def _tracer_for(request: SynthesisRequest, config: EngineConfig):
    """Resolve a request's tracer: ``(tracer, session_owns_it)``.

    A live tracer handed in (the pool worker's) wins; otherwise tracing
    activates when the request carries a trace context or the config
    asks for it, and the *session* owns the tracer — it drains the
    spans into ``result.extra["trace"]`` itself.  ``(None, False)`` is
    the untraced fast path.
    """
    if request.tracer is not None:
        return request.tracer, False
    if request.trace_ctx is None and not config.trace:
        return None, False
    ctx = request.trace_ctx or TraceContext.mint()
    return (
        Tracer(ctx.trace_id, process="session", parent_span_id=ctx.parent_span_id),
        True,
    )


class Session:
    """A reusable synthesis context with cached staging.

    Construct once, serve many requests::

        session = Session(EngineConfig(backend="vector"))
        first = session.synthesize(spec_a)                  # builds staging
        second = session.synthesize(SynthesisRequest(
            spec=spec_a, cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1))))
        # second reused the staged universe/guide table: stats.staging_hits == 1

    ``max_staged`` bounds the staging cache (least-recently-used
    eviction); ``None`` keeps every staging alive for the session's
    lifetime.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        registry: Optional[BackendRegistry] = None,
        max_staged: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.registry = registry if registry is not None else default_registry()
        self.max_staged = max_staged
        self.stats = SessionStats()
        self._staged: "OrderedDict[StagingKey, Tuple[Universe, GuideTable]]" = (
            OrderedDict()
        )
        # Fail fast on a bad default backend name.
        self.registry.resolve(self.config.backend)

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def staging_for(self, spec: Spec) -> Tuple[Universe, GuideTable]:
        """The staged ``(universe, guide table)`` for a spec's strings.

        Built on first use — including the flattened numpy view the
        vectorised kernels gather from — then shared by every request
        whose deduplicated example-string set (and alphabet) matches.
        """
        key = staging_key_of(spec)
        staged = self._staged.get(key)
        if staged is not None:
            self._staged.move_to_end(key)
            self.stats.staging_hits += 1
            return staged
        universe = Universe(spec.all_words, alphabet=spec.alphabet)
        guide = GuideTable(universe)
        guide.flat  # materialise the FlatGuideTable as part of staging
        self.stats.staging_builds += 1
        self._remember(key, (universe, guide))
        return universe, guide

    def _remember(self, key: StagingKey, staged) -> None:
        """Insert into the staging cache, honouring the LRU bound.

        The one place the cache-insert policy lives — store-backed
        sessions reuse it when adopting artifacts loaded from disk.
        """
        self._staged[key] = staged
        if self.max_staged is not None and len(self._staged) > self.max_staged:
            self._staged.popitem(last=False)

    def clear(self) -> None:
        """Drop every staged artifact (stats are kept)."""
        self._staged.clear()

    # ------------------------------------------------------------------
    # Single-request serving
    # ------------------------------------------------------------------
    def make_engine(
        self,
        request: SynthesisRequest,
        universe: Optional[Universe] = None,
        guide: Optional[GuideTable] = None,
    ) -> SearchEngine:
        """Construct (but do not run) the engine a request resolves to."""
        request = SynthesisRequest.of(request)
        config = request.config if request.config is not None else self.config
        info = self.registry.resolve(config.backend)
        if universe is None and guide is None:
            universe, guide = self.staging_for(request.spec)
        else:
            if universe is None:
                universe = Universe(
                    request.spec.all_words, alphabet=request.spec.alphabet
                )
            if guide is None:
                guide = GuideTable(universe)
        max_generated = (
            request.max_generated
            if request.max_generated is not None
            else config.max_generated
        )
        return info.factory(
            request.spec,
            request.effective_cost_fn(),
            universe,
            guide,
            max_cache_size=config.max_cache_size,
            allowed_error=request.allowed_error,
            use_guide_table=config.use_guide_table,
            check_uniqueness=config.check_uniqueness,
            max_generated=max_generated,
            shard_workers=config.shard_workers,
        )

    def _attach_durability(self, engine: SearchEngine) -> None:
        """Hook point for durable level checkpoints (no-op here).

        Called once per engine, after the request's own hooks are
        installed and before ``run``.  :class:`~repro.service.store.
        StoreBackedSession` overrides it to restore completed cost
        levels from its checkpoint store and to chain a checkpoint
        writer in front of the engine's ``on_level`` callback.
        """

    def synthesize(
        self,
        request,
        universe: Optional[Universe] = None,
        guide: Optional[GuideTable] = None,
    ) -> SynthesisResult:
        """Serve one request (a :class:`SynthesisRequest`, a
        :class:`Spec`, or a ``(positives, negatives)`` pair).

        Explicit ``universe``/``guide`` arguments bypass the staging
        cache — the escape hatch :class:`~repro.core.incremental.
        IncrementalSynthesizer` uses for superset-universe reuse.
        """
        request = SynthesisRequest.of(request)
        config = request.config if request.config is not None else self.config
        info = self.registry.resolve(config.backend)
        cost_fn = request.effective_cost_fn()
        max_cost = request.effective_max_cost(cost_fn)
        tracer, owns_tracer = _tracer_for(request, config)
        staging_started = time.perf_counter()
        if universe is None and guide is None:
            if tracer is None:
                universe, guide = self.staging_for(request.spec)
            else:
                with tracer.span("staging"):
                    universe, guide = self.staging_for(request.spec)
        staging_seconds = time.perf_counter() - staging_started
        engine = self.make_engine(request, universe=universe, guide=guide)
        engine.tracer = tracer

        started = time.perf_counter()
        if request.on_progress is not None:
            callback = request.on_progress

            def stream(cost: int, start: int, end: int) -> bool:
                callback(
                    ProgressEvent(
                        cost=cost,
                        generated=engine.generated,
                        stored=len(engine.cache),
                        elapsed_seconds=time.perf_counter() - started,
                        elapsed_s=engine.elapsed_s,
                    )
                )
                return False

            engine.on_level = stream
        if request.cancel is not None:
            engine.cancel_check = request.cancel
        if request.preempt is not None:
            engine.preempt_check = request.preempt
        if request.time_limit is not None:
            engine.deadline = started + request.time_limit
        self._attach_durability(engine)

        status = engine.run(max_cost)
        elapsed = time.perf_counter() - started

        result = SynthesisResult(
            status=status,
            spec=request.spec,
            backend=info.name,
            cost_function=cost_fn.as_tuple(),
            allowed_error=request.allowed_error,
            max_cost=max_cost,
            generated=engine.generated,
            unique_cs=len(engine.cache),
            universe_size=engine.universe.n_words,
            padded_bits=engine.universe.padded_bits,
            levels_built=engine.levels_built,
            elapsed_seconds=elapsed,
            extra={
                "level_stats": engine.level_stats,
                "sharded_emits": engine.sharded_emits,
                "resumed_levels": engine.resumed_levels,
                "shard_failovers": engine.shard_failovers,
                "partial_resumes": engine.partial_resumes,
                "partial_checkpoints": engine.partial_checkpoints,
                "phase_seconds": _phase_breakdown(
                    engine, staging_seconds, elapsed
                ),
            },
        )
        plane_stats = getattr(engine.cache, "plane_stats", None)
        if plane_stats is not None:
            result.extra["plane_stats"] = dict(plane_stats)
        if owns_tracer:
            result.extra["trace"] = trace_payload(
                tracer.trace_id, tracer.drain()
            )
        if status == STATUS_SUCCESS:
            result.regex = reconstruct(
                engine.solution, engine.cache.provenance, engine.universe.alphabet
            )
            result.cost = engine.solution_cost
        self.stats.requests_served += 1
        # A preempted run has no final answer to announce — the job is
        # going back in the queue, so no ``done`` event is emitted (the
        # eventual completed attempt emits it).
        if request.on_progress is not None and status != STATUS_PREEMPTED:
            request.on_progress(
                ProgressEvent(
                    cost=engine._current_cost,
                    generated=engine.generated,
                    stored=len(engine.cache),
                    elapsed_seconds=elapsed,
                    done=True,
                    incumbent=result,
                    elapsed_s=engine.elapsed_s,
                )
            )
        return result

    # ------------------------------------------------------------------
    # Batched multi-request serving
    # ------------------------------------------------------------------
    def synthesize_many(self, requests: Iterable[object]) -> List[SynthesisResult]:
        """Serve many requests, sharing work wherever it is shareable.

        Requests are grouped by ``(example-string set, alphabet, cost
        function, engine config)``; each group of two or more is served
        from one shared enumeration sweep (see the module docstring),
        the rest individually — but still through the staging cache.
        Results come back in request order, each bit-identical to a solo
        :meth:`synthesize` of the same request.
        """
        reqs = [SynthesisRequest.of(r) for r in requests]
        results: List[Optional[SynthesisResult]] = [None] * len(reqs)
        groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        solo: List[int] = []
        for i, req in enumerate(reqs):
            key = self._batch_key(req)
            if key is None:
                solo.append(i)
            else:
                groups.setdefault(key, []).append(i)
        for members in groups.values():
            if len(members) < 2:
                solo.extend(members)
                continue
            self._serve_batch([reqs[i] for i in members], members, results)
            self.stats.batch_groups += 1
            self.stats.batch_requests += len(members)
        for i in sorted(solo):
            results[i] = self.synthesize(reqs[i])
        return results  # type: ignore[return-value]

    def _batch_key(self, request: SynthesisRequest) -> Optional[tuple]:
        """The sweep-sharing group of a request, or None if it must be
        served solo (hooks, private budgets, bounded caches, tracing, or
        a backend without the ``batch-serving`` capability).  Traced
        requests stay solo so every span on a timeline belongs to
        exactly one request."""
        config = request.config if request.config is not None else self.config
        info = self.registry.resolve(config.backend)
        if (
            request.on_progress is not None
            or request.cancel is not None
            or request.preempt is not None
            or request.time_limit is not None
            or request.max_generated is not None
            or request.trace_ctx is not None
            or request.tracer is not None
            or config.trace
            or config.max_cache_size is not None
            or config.max_generated is not None
            or not info.supports("batch-serving")
        ):
            return None
        cost_fn = request.effective_cost_fn()
        # Normalise the backend to its canonical name so alias spellings
        # ("gpu" vs "vector") share one sweep group.
        return (
            staging_key_of(request.spec),
            config.replace(backend=info.name),
            cost_fn.as_tuple(),
        )

    def _serve_batch(
        self,
        requests: Sequence[SynthesisRequest],
        indices: Sequence[int],
        results: List[Optional[SynthesisResult]],
    ) -> None:
        """Serve a shared-universe, shared-cost-function group from one
        enumeration-only sweep."""
        config = requests[0].config if requests[0].config is not None else self.config
        info = self.registry.resolve(config.backend)
        cost_fn = requests[0].effective_cost_fn()
        staging_started = time.perf_counter()
        universe, guide = self.staging_for(requests[0].spec)
        staging_seconds = time.perf_counter() - staging_started
        probe = requests[0].replace(
            allowed_error=0.0, on_progress=None, cancel=None, time_limit=None
        )
        engine = self.make_engine(probe, universe=universe, guide=guide)
        engine.disable_solution_checks()
        packed = isinstance(engine.cache, PackedCache)

        started = time.perf_counter()
        queries = [
            _BatchQuery(request, universe, cost_fn, packed) for request in requests
        ]
        pending: List[_BatchQuery] = []
        for query in queries:
            if not query.check_trivials(universe, cost_fn.literal, started):
                pending.append(query)

        if pending:
            c1 = cost_fn.literal

            def scan_level(cost: int, start: int, end: int) -> bool:
                still: List[_BatchQuery] = []
                for query in pending:
                    # The solo sweep seeds (and solution-checks) the
                    # literal level unconditionally, even when max_cost
                    # is below it — only levels past c1 respect the
                    # ceiling.  Mirror that exactly.
                    if cost > query.max_cost and cost > c1:
                        query.finalize(STATUS_NOT_FOUND, engine, started)
                    elif not query.scan(engine, cost, start, end, started):
                        still.append(query)
                pending[:] = still
                return not pending

            engine.on_level = scan_level
            self._attach_durability(engine)
            engine.run(max(query.max_cost for query in pending))
            leftover_status = (
                STATUS_BUDGET if engine.status == STATUS_BUDGET else STATUS_NOT_FOUND
            )
            for query in pending:
                query.finalize(leftover_status, engine, started)

        sweep_seconds = time.perf_counter() - started
        provenance = engine.cache.provenance
        shared_extra = {
            "batched": True,
            "batch_size": len(requests),
            "sweep_seconds": sweep_seconds,
            "sweep_generated": engine.generated,
            "sharded_emits": engine.sharded_emits,
            "resumed_levels": engine.resumed_levels,
            "shard_failovers": engine.shard_failovers,
            "phase_seconds": _phase_breakdown(
                engine, staging_seconds, sweep_seconds
            ),
        }
        plane_stats = getattr(engine.cache, "plane_stats", None)
        if plane_stats is not None:
            shared_extra["plane_stats"] = dict(plane_stats)
        for query, index in zip(queries, indices):
            results[index] = query.to_result(
                info.name, cost_fn, universe, provenance, shared_extra
            )
            self.stats.requests_served += 1


class _BatchQuery:
    """One request attached to a shared enumeration sweep."""

    __slots__ = (
        "request",
        "pos_mask",
        "neg_mask",
        "pos_lanes",
        "neg_lanes",
        "max_errors",
        "max_cost",
        "status",
        "solution",
        "solution_cost",
        "generated",
        "unique_cs",
        "levels_built",
        "elapsed_seconds",
    )

    def __init__(
        self,
        request: SynthesisRequest,
        universe: Universe,
        cost_fn: CostFunction,
        packed: bool,
    ) -> None:
        spec = request.spec
        self.request = request
        self.pos_mask = universe.cs_of(spec.positive)
        self.neg_mask = universe.cs_of(spec.negative)
        self.pos_lanes = (
            int_to_lanes(self.pos_mask, universe.lanes) if packed else None
        )
        self.neg_lanes = (
            int_to_lanes(self.neg_mask, universe.lanes) if packed else None
        )
        self.max_errors = max_errors_for(request.allowed_error, spec.n_examples)
        self.max_cost = request.effective_max_cost(cost_fn)
        self.status: Optional[str] = None
        self.solution: Optional[Tuple[int, int, int]] = None
        self.solution_cost: Optional[int] = None
        self.generated = 0
        self.unique_cs = 0
        self.levels_built = 0
        self.elapsed_seconds = 0.0

    # ------------------------------------------------------------------
    def solves_int(self, cs: int) -> bool:
        """The engines' solution predicate, per-query."""
        return cs_solves(cs, self.pos_mask, self.neg_mask, self.max_errors)

    def check_trivials(self, universe: Universe, c1: int, started: float) -> bool:
        """The per-spec ``∅``/``ε`` checks of Algorithm 1 (lines 4–5),
        mirroring the solo engine's candidate counting."""
        if self.solves_int(0):
            self._resolve((OP_EMPTY, -1, -1), c1, 1, 0, 0, started)
            return True
        if self.solves_int(universe.eps_bit):
            self._resolve((OP_EPSILON, -1, -1), c1, 2, 0, 0, started)
            return True
        return False

    def scan(
        self,
        engine: SearchEngine,
        cost: int,
        start: int,
        end: int,
        started: float,
    ) -> bool:
        """Scan the level's newly stored CSs ``[start, end)`` for this
        query's first satisfying candidate; True iff resolved."""
        cache = engine.cache
        hit: Optional[int] = None
        if isinstance(cache, PackedCache):
            rows = cache.rows(start, end)
            if self.max_errors == 0:
                flags = ((rows & self.pos_lanes) == self.pos_lanes).all(axis=1)
                flags &= ((rows & self.neg_lanes) == 0).all(axis=1)
            else:
                mistakes = popcount_rows((rows & self.pos_lanes) ^ self.pos_lanes)
                mistakes += popcount_rows(rows & self.neg_lanes)
                flags = mistakes <= self.max_errors
            hits = np.flatnonzero(flags)
            if hits.size:
                hit = start + int(hits[0])
        else:
            cs_list = cache.cs_list
            for index in range(start, end):
                if self.solves_int(cs_list[index]):
                    hit = index
                    break
        if hit is None:
            return False
        self._resolve(
            hit,
            cost,
            engine.generated,
            len(cache),
            engine.levels_built,
            started,
        )
        return True

    def finalize(self, status: str, engine: SearchEngine, started: float) -> None:
        """Close an unsolved query (cost ceiling or budget exhausted)."""
        self.status = status
        self.generated = engine.generated
        self.unique_cs = len(engine.cache)
        self.levels_built = engine.levels_built
        self.elapsed_seconds = time.perf_counter() - started

    def _resolve(
        self,
        solution,
        cost: int,
        generated: int,
        unique_cs: int,
        levels_built: int,
        started: float,
    ) -> None:
        self.status = STATUS_SUCCESS
        self.solution = solution
        self.solution_cost = cost
        self.generated = generated
        self.unique_cs = unique_cs
        self.levels_built = levels_built
        self.elapsed_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def to_result(
        self,
        backend: str,
        cost_fn: CostFunction,
        universe: Universe,
        provenance: Sequence[Tuple[int, int, int]],
        shared_extra: Dict[str, object],
    ) -> SynthesisResult:
        """Materialise the per-request :class:`SynthesisResult`.

        ``generated``/``unique_cs`` are *shared-sweep* snapshots taken
        when this request resolved (the sweep does not stop at one
        request's solution the way a solo run does); the regex, cost and
        status are bit-identical to the solo run's.
        """
        result = SynthesisResult(
            status=self.status or STATUS_NOT_FOUND,
            spec=self.request.spec,
            backend=backend,
            cost_function=cost_fn.as_tuple(),
            allowed_error=self.request.allowed_error,
            max_cost=self.max_cost,
            generated=self.generated,
            unique_cs=self.unique_cs,
            universe_size=universe.n_words,
            padded_bits=universe.padded_bits,
            levels_built=self.levels_built,
            elapsed_seconds=self.elapsed_seconds,
            extra=dict(shared_extra),
        )
        if result.status == STATUS_SUCCESS:
            triple = (
                self.solution
                if isinstance(self.solution, tuple)
                else provenance[self.solution]
            )
            result.regex = reconstruct(triple, provenance, universe.alphabet)
            result.cost = self.solution_cost
        return result


class SynthesisService:
    """A long-lived serving front over one shared :class:`Session`.

    The service owns the registry and default config of a deployment;
    request handlers call :meth:`synthesize`/:meth:`synthesize_many`
    directly, or :meth:`session` to carve out an isolated session (own
    staging cache, shared registry) for a tenant or an experiment.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        registry: Optional[BackendRegistry] = None,
        max_staged: Optional[int] = 128,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.registry = registry if registry is not None else default_registry()
        self._shared = Session(
            self.config, registry=self.registry, max_staged=max_staged
        )

    def session(
        self,
        config: Optional[EngineConfig] = None,
        max_staged: Optional[int] = None,
    ) -> Session:
        """A new isolated session sharing this service's registry."""
        return Session(
            config if config is not None else self.config,
            registry=self.registry,
            max_staged=max_staged,
        )

    def synthesize(self, request) -> SynthesisResult:
        """Serve one request through the shared session."""
        return self._shared.synthesize(request)

    def synthesize_many(self, requests: Iterable[object]) -> List[SynthesisResult]:
        """Serve a batch through the shared session."""
        return self._shared.synthesize_many(requests)

    @property
    def stats(self) -> SessionStats:
        """The shared session's statistics."""
        return self._shared.stats
