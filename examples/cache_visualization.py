"""Visualising the language cache — the paper's §3 figure, live.

Runs Paresy on the paper's Example 3.6 specification and prints the
language cache exactly in the style of the paper's illustration: one
bitvector row per unique language, annotated with a minimal regular
expression and its cost level, over the 15-word universe

    ε, 0, 1, 00, 01, 10, 11, 001, 011, 101, 110, 0011, 1011, 1101, 11011

Run with::

    python examples/cache_visualization.py
"""

from repro import CostFunction, Spec
from repro.core.synthesizer import make_engine
from repro.core.trace import level_growth_table, render_cache


def main() -> None:
    spec = Spec(
        positive=["1", "011", "1011", "11011"],
        negative=["", "10", "101", "0011"],
    )
    engine = make_engine(spec, CostFunction.uniform(), backend="vector")
    status = engine.run(20)
    print("status:", status)
    print()
    print(render_cache(engine, limit=30))
    print()
    print("level growth (the exponential blow-up of §3):")
    print("%6s %10s %8s %11s %10s" % ("cost", "generated", "stored",
                                      "duplicates", "keep ratio"))
    for entry in level_growth_table(engine):
        print("%6d %10d %8d %11d %9.0f%%"
              % (entry["cost"], entry["generated"], entry["stored"],
                 entry["duplicates"], 100 * entry["keep_ratio"]))


if __name__ == "__main__":
    main()
