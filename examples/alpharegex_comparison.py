"""Head-to-head with AlphaRegex on classic textbook tasks (paper Table 2).

For a few of the 25 reconstructed Lee et al. benchmarks, run both the
AlphaRegex reimplementation (top-down search with pruning) and Paresy's
scalar engine under AlphaRegex's (5,5,5,5,5) cost scale, and print the
paper's comparison columns.

Run with::

    python examples/alpharegex_comparison.py
"""

import time

from repro import ALPHAREGEX_COST, synthesize
from repro.baselines.alpharegex import alpharegex_synthesize
from repro.suites.alpharegex_suite import task_by_name


TASKS = ["no1", "no2", "no11", "no17", "no19", "no23", "no24"]


def main() -> None:
    print("%-5s %-34s %9s %9s %7s %7s %9s %9s"
          % ("task", "description", "aR s", "Paresy s", "aR c",
             "Pa c", "aR #REs", "Pa #REs"))
    for name in TASKS:
        task = task_by_name(name)
        spec = task.build_spec(n_pos=8, n_neg=8, max_len=6)

        started = time.perf_counter()
        ar = alpharegex_synthesize(spec, max_expanded=60_000)
        ar_time = time.perf_counter() - started

        started = time.perf_counter()
        paresy = synthesize(spec, cost_fn=ALPHAREGEX_COST, backend="scalar")
        paresy_time = time.perf_counter() - started

        print("%-5s %-34s %9.4f %9.4f %7s %7s %9s %9s"
              % (name, task.description[:34], ar_time, paresy_time,
                 ar.cost, paresy.cost, ar.checked, paresy.generated))
        if ar.found and paresy.found:
            assert paresy.cost <= ar.cost, "Paresy must be minimal"
    print()
    print("Shape of the paper's Table 2: Paresy is faster on wall clock")
    print("even though it usually generates *more* candidates; AlphaRegex")
    print("prunes aggressively but pays per-candidate overhead.")


if __name__ == "__main__":
    main()
