"""Inferring token patterns from a log file — an information-extraction
flavoured scenario (paper §5.1 discusses this REI application family).

A sysadmin has a pile of request identifiers.  Some belong to the
legacy service (and must be routed there), the rest to the new one.
Instead of writing the router regex by hand, we label a handful of
identifiers and let Paresy infer a minimal pattern for each class.

The alphabet here is NOT binary — Paresy handles arbitrary alphabets.

Run with::

    python examples/log_pattern_inference.py
"""

from repro import Session, Spec, SynthesisRequest
from repro.regex.derivatives import matches


LEGACY_IDS = ["ax1", "ax12", "ax121", "ax2", "ax21", "ax11"]
MODERN_IDS = ["bx1", "b1", "x2", "a1", "ab", "xa2", ""]


def main() -> None:
    spec = Spec(positive=LEGACY_IDS, negative=MODERN_IDS)
    print("alphabet inferred from examples:", "".join(spec.alphabet))

    # Both routing questions — "what is legacy?" and "what is modern?" —
    # are partitions of the same identifier set, so the session serves
    # them from one staging build and one shared enumeration sweep.
    session = Session()
    result, modern = session.synthesize_many([
        SynthesisRequest(spec=spec, tag="legacy"),
        SynthesisRequest(spec=Spec(MODERN_IDS, LEGACY_IDS), tag="modern"),
    ])
    assert result.found and modern.found
    print("legacy-service pattern:", result.regex_str)
    print("modern-service pattern:", modern.regex_str)
    print("cost %d, %d shared-sweep candidates, %.3fs (staging builds: %d)"
          % (result.cost, result.extra["sweep_generated"],
             result.elapsed_seconds, session.stats.staging_builds))

    # Deploy-time sanity check: classify unseen identifiers.
    print("\nrouting decisions for unseen identifiers:")
    for request_id in ["ax122", "ax", "bx12", "ax211", "ba1"]:
        route = "legacy" if matches(result.regex, request_id) else "modern"
        print("  %-7s -> %s" % (request_id or "ε", route))

    # The inferred pattern generalises: it is minimal w.r.t. the cost
    # function, not the overfitted union ax1+ax12+...  of the examples.
    overfit_cost = sum(2 * len(w) - 1 for w in LEGACY_IDS) + len(LEGACY_IDS) - 1
    print("\nminimal cost %d vs overfitted union cost %d"
          % (result.cost, overfit_cost))
    assert result.cost < overfit_cost


if __name__ == "__main__":
    main()
