"""Quickstart: infer a regular expression from labelled example strings.

This reproduces the paper's introduction example: from seven positive
and six negative strings, Paresy infers the minimal regular expression
``10(0+1)*`` — "strings starting with 10" — rather than overfitting to
the union of the positives.

Run with::

    python examples/quickstart.py
"""

from repro import CostFunction, Session, Spec, SynthesisRequest, synthesize


def main() -> None:
    spec = Spec(
        positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
        negative=["", "0", "1", "00", "11", "010"],
    )
    print("Specification:", spec)
    print()

    # The default backend is the data-parallel ("GPU-sim") engine.
    result = synthesize(spec, cost_fn=CostFunction.uniform())
    print("inferred regex     :", result.regex_str)
    print("cost               :", result.cost)
    print("candidates checked :", result.generated)
    print("unique languages   :", result.unique_cs)
    print("|ic(P ∪ N)|        :", result.universe_size,
          "words, padded to", result.padded_bits, "bits")
    print("elapsed            : %.4f s" % result.elapsed_seconds)
    print()

    # The scalar ("CPU") engine runs the identical algorithm one
    # candidate at a time and returns the identical result.
    scalar = synthesize(spec, backend="scalar")
    assert scalar.regex == result.regex
    print("scalar backend agrees:", scalar.regex_str,
          "(%.4f s)" % scalar.elapsed_seconds)

    # Precision is guaranteed: the result accepts every positive and
    # rejects every negative example.
    assert spec.is_satisfied_by(result.regex)
    print("precision verified against the derivative matcher ✓")
    print()

    # Long-lived callers use a Session: the staged universe and guide
    # table depend only on the example *strings*, so a second spec over
    # the same strings — here the complementary question, "what matches
    # the rejected class?" — reuses them instead of rebuilding.
    session = Session()
    first = session.synthesize(spec)
    flipped = session.synthesize(
        SynthesisRequest(spec=Spec(spec.negative, spec.positive))
    )
    assert first.regex == result.regex
    print("session: complement class :", flipped.regex_str)
    print("session: staging builds   : %d (1 build serves both specs, "
          "%d reuse)" % (session.stats.staging_builds,
                         session.stats.staging_hits))
    assert session.stats.staging_builds == 1


if __name__ == "__main__":
    main()
