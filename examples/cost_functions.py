"""Exploring cost homomorphisms: how the cost function shapes the
inferred expression and the search (paper Fig. 1 and §5.1).

Three demonstrations:

1. The same specification under different cost functions yields
   different minimal expressions.
2. Setting ``cost(*)`` very high searches the *star-free* fragment —
   the paper's remark on subsuming FIDEX-style star-free synthesis.
3. The twelve evaluation cost functions of Fig. 1 are swept over one
   specification, showing how the search order (and hence candidate
   count) moves.

Run with::

    python examples/cost_functions.py
"""

from repro import (
    CostFunction,
    EVALUATION_COST_FUNCTIONS,
    Session,
    Spec,
    SynthesisRequest,
    synthesize,
)


SPEC = Spec(
    positive=["0", "00", "000", "0000"],
    negative=["", "1", "01", "10", "11"],
)


def different_optima() -> None:
    print("== the cost function changes the optimum ==")
    for tuple_ in ((1, 1, 1, 1, 1), (1, 1, 10, 1, 1), (1, 10, 10, 1, 1)):
        result = synthesize(SPEC, cost_fn=CostFunction.from_tuple(tuple_))
        print("  cost %s -> %s (cost %d)"
              % (tuple_, result.regex_str, result.cost))
    print()


def star_free_synthesis() -> None:
    print("== star-free synthesis via an expensive Kleene star ==")
    spec = Spec(["01", "011"], ["", "0", "1", "10"])
    free = synthesize(spec)
    starfree = synthesize(
        spec, cost_fn=CostFunction.from_tuple((1, 1, 60, 1, 1))
    )
    print("  unrestricted :", free.regex_str)
    print("  star-free    :", starfree.regex_str)
    assert "*" not in starfree.regex_str
    print()


def sweep_figure1_cost_functions() -> None:
    # A cost-function sweep is exactly what sessions amortise: the
    # staged universe/guide table depend only on the example strings,
    # so twelve searches pay one staging build.
    session = Session()
    print("== Fig. 1 sweep on one specification ==")
    print("  %-22s %-18s %8s" % ("cost function", "regex", "# REs"))
    for cost_fn in EVALUATION_COST_FUNCTIONS:
        result = session.synthesize(SynthesisRequest(spec=SPEC,
                                                     cost_fn=cost_fn))
        print("  %-22s %-18s %8d"
              % (cost_fn, result.regex_str, result.generated))
    print("  (staging built %d time(s) for %d searches)"
          % (session.stats.staging_builds, session.stats.requests_served))


def main() -> None:
    different_optima()
    star_free_synthesis()
    sweep_figure1_cost_functions()


if __name__ == "__main__":
    main()
