"""Error-tolerant inference on noisily-labelled examples (paper §5.2).

Labels in the wild are noisy: a fraction of the examples may be
mislabelled.  Precise REI then overfits to the noise; ``allowed_error``
trades precision for a (much) smaller expression and a (much) smaller
search.  This script reruns the paper's own §5.2 experiment — the exact
specification from the conclusion — and prints the error/size/search
trade-off curve.

Run with::

    python examples/error_tolerant.py
"""

from repro import Session, Spec, SynthesisRequest


# The specification from the paper's §5.2 (= Table 1 row "Type 1, No 50").
SPEC = Spec(
    positive=["00", "1101", "0001", "0111", "001", "1", "10", "1100",
              "111", "1010"],
    negative=["", "0", "0000", "0011", "01", "010", "011", "100", "1000",
              "1001", "11", "1110"],
)


def main() -> None:
    print("specification:", SPEC)
    print()
    # Every error level shares the same strings AND the same cost
    # function, so `synthesize_many` serves the whole curve from one
    # enumeration sweep (plus one staging build) instead of seven cold
    # searches.  Each regex/cost is bit-identical to a solo
    # synthesize(); the "# REs" column is the *shared* sweep's
    # cumulative candidate count at the level where the row resolved
    # (a solo run stops counting mid-level at its solution).
    session = Session()
    percents = (50, 45, 40, 35, 30, 25, 20)
    results = session.synthesize_many(
        [SynthesisRequest(spec=SPEC, allowed_error=p / 100.0)
         for p in percents]
    )
    print("%-13s %-10s %-22s %8s %9s"
          % ("allowed error", "errors", "regex", "cost", "# REs"))
    for percent, result in zip(percents, results):
        assert result.found
        print("%-13s %-10d %-22s %8d %9d"
              % ("%d %%" % percent, result.errors(), result.regex_str,
                 result.cost, result.generated))
    print()
    print("one shared sweep served %d error levels (%.3f s)"
          % (len(percents), results[0].extra.get("sweep_seconds", 0.0)))
    print()
    print("The paper's table shows the same regexes at the same error")
    print("levels, with the search cost dropping roughly exponentially;")
    print("at 0 %% error this specification needs 2.7e10 candidates on an")
    print("A100 — out of reach of a pure-Python engine, see EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
