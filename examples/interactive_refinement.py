"""Interactive specification refinement with incremental synthesis.

A user teaches the system a pattern one counter-example at a time — the
classic programming-by-example feedback loop (FlashFill-style, which the
paper's §5.1 contrasts with Paresy's batch mode; incrementalisation is
the paper's stated future work, implemented here in
``repro.core.incremental``).

At each step we either reuse the cached answer (the new example is
already classified correctly — provably still minimal), reuse the staged
universe/guide-table (the new example adds no new infixes), or rebuild.

Run with::

    python examples/interactive_refinement.py
"""

from repro import IncrementalSynthesizer, Spec
from repro.regex.derivatives import matches


def main() -> None:
    # Target concept in the user's head: strings starting with 10.
    inc = IncrementalSynthesizer(Spec(positive=["10"], negative=[""]))
    print("initial guess:", inc.result.regex_str)

    session = [
        ("+", "101"), ("-", "0"), ("+", "100"), ("-", "1"),
        ("+", "1011"), ("-", "010"), ("+", "1000"), ("-", "11"),
    ]
    for sign, word in session:
        if sign == "+":
            inc.add_positive(word)
        else:
            inc.add_negative(word)
        print("after %s%-5s -> %-12s (searches: %d run, %d skipped)"
              % (sign, word or "ε", inc.result.regex_str,
                 inc.stats.searches_run, inc.stats.searches_skipped))

    print()
    print("final regex      :", inc.result.regex_str)
    print("staging rebuilds :", inc.stats.staging_rebuilds)
    print("staging reuses   :", inc.stats.staging_reuses)
    print("searches skipped :", inc.stats.searches_skipped)

    # The refined pattern generalises to unseen strings.
    for word in ("10111", "01", "10000000"):
        print("  %-9s -> %s" % (word, matches(inc.result.regex, word)))


if __name__ == "__main__":
    main()
