"""Setuptools shim.

The container used for development has no network access and no `wheel`
package, so PEP 660 editable installs (which shell out to bdist_wheel)
fail.  This shim lets `pip install -e . --no-use-pep517` take the legacy
`setup.py develop` path, which works offline.
"""

from setuptools import setup

setup()
