"""Scalar ↔ vector engine equivalence.

The two engines implement the paper's CPU and GPU algorithms; they must
agree on everything observable: the regex found, its cost, the number of
candidates generated ("# REs"), and the entire language cache content in
order.  This is the strongest internal consistency check the
reproduction has, and it is exercised both on fixed paper examples and
on random specifications.
"""

from hypothesis import given, settings

from _fixtures import small_specs
from repro.core.bitops import lanes_to_int
from repro.core.synthesizer import make_engine
from repro.regex.cost import CostFunction
from repro.spec import Spec


def run_both(spec, cost_fn=None, max_cost=30, **kw):
    cost_fn = cost_fn or CostFunction.uniform()
    scalar = make_engine(spec, cost_fn, backend="scalar", **kw)
    vector = make_engine(spec, cost_fn, backend="vector", **kw)
    scalar.run(max_cost)
    vector.run(max_cost)
    return scalar, vector


def assert_equivalent(scalar, vector):
    assert scalar.status == vector.status
    assert scalar.generated == vector.generated
    assert scalar.solution == vector.solution
    assert scalar.solution_cost == vector.solution_cost
    assert len(scalar.cache) == len(vector.cache)
    unpacked = [
        lanes_to_int(vector.cache.matrix[i]) for i in range(len(vector.cache))
    ]
    assert scalar.cache.cs_list == unpacked
    assert scalar.cache.provenance == vector.cache.provenance
    assert scalar.cache.levels.costs() == vector.cache.levels.costs()


class TestFixedExamples:
    def test_intro_example(self, intro_spec):
        assert_equivalent(*run_both(intro_spec))

    def test_example36(self, example36_spec):
        assert_equivalent(*run_both(example36_spec))

    def test_nonuniform_cost(self, intro_spec):
        cost_fn = CostFunction.from_tuple((1, 1, 10, 1, 1))
        assert_equivalent(*run_both(intro_spec, cost_fn, max_cost=40))

    def test_not_found_status(self):
        spec = Spec(["0101"], ["01"])
        scalar, vector = run_both(spec, max_cost=3)
        assert scalar.status == vector.status == "not_found"
        assert_equivalent(scalar, vector)

    def test_with_cache_capacity(self, intro_spec):
        scalar, vector = run_both(intro_spec, max_cache_size=50)
        assert_equivalent(scalar, vector)

    def test_error_tolerant(self, intro_spec):
        scalar, vector = run_both(intro_spec, allowed_error=0.3)
        assert_equivalent(scalar, vector)

    def test_ternary_alphabet(self):
        spec = Spec(["ab", "abc", "abcc"], ["", "a", "ba", "cab"])
        assert_equivalent(*run_both(spec))


class TestRandomSpecs:
    @given(small_specs(max_len=3, max_each=4))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_on_random_specs(self, spec):
        assert_equivalent(*run_both(spec, max_cost=12))

    @given(small_specs(max_len=3, max_each=3))
    @settings(max_examples=12, deadline=None)
    def test_equivalence_under_nonuniform_costs(self, spec):
        cost_fn = CostFunction.from_tuple((2, 1, 3, 2, 4))
        assert_equivalent(*run_both(spec, cost_fn, max_cost=26))

    @given(small_specs(max_len=3, max_each=3))
    @settings(max_examples=12, deadline=None)
    def test_equivalence_with_tiny_cache(self, spec):
        assert_equivalent(*run_both(spec, max_cost=12, max_cache_size=25))
