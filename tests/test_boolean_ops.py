"""Boolean CS/IPS operations (Def. 3.5's negation/conjunction remark),
verified against DFA products and complements."""

import pytest
from hypothesis import given, settings

from _fixtures import regexes
from repro.core.bitops import intersect_cs, negate_cs
from repro.language.universe import Universe
from repro.regex.derivatives import matches
from repro.semiring.ips import IPSSpace
from repro.semiring.semiring import BOOLEAN, NATURAL


@pytest.fixture(scope="module")
def universe():
    return Universe(["0110", "1001", "111"])


class TestCSOps:
    @given(regexes(max_leaves=5), regexes(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_intersection_matches_dfa_product(self, r, s):
        universe = Universe(["0110", "1001", "111"])
        cs = intersect_cs(universe.cs_of_regex(r), universe.cs_of_regex(s))
        expected = universe.cs_of_predicate(
            lambda w: matches(r, w) and matches(s, w)
        )
        assert cs == expected

    @given(regexes(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_negation_matches_complement(self, r):
        universe = Universe(["0110", "1001", "111"])
        cs = negate_cs(universe.cs_of_regex(r), universe)
        expected = universe.cs_of_predicate(lambda w: not matches(r, w))
        assert cs == expected

    def test_double_negation(self, universe):
        cs = universe.cs_of(["0", "11", "0110"])
        assert negate_cs(negate_cs(cs, universe), universe) == cs

    def test_de_morgan(self, universe):
        a = universe.cs_of(["0", "01"])
        b = universe.cs_of(["01", "111"])
        lhs = negate_cs(intersect_cs(a, b), universe)
        rhs = negate_cs(a, universe) | negate_cs(b, universe)
        assert lhs == rhs


class TestIPSOps:
    def test_conjunction(self, universe):
        space = IPSSpace(universe, BOOLEAN)
        a = space.of_words(["0", "01", "111"])
        b = space.of_words(["01", "111", "10"])
        assert set((a.conjunction(b)).support) == {"01", "111"}

    def test_negation(self, universe):
        space = IPSSpace(universe, BOOLEAN)
        a = space.of_words(["0"])
        negated = a.negation()
        assert "0" not in negated.support
        assert "" in negated.support
        assert a.negation().negation() == a

    def test_negation_requires_boolean(self, universe):
        space = IPSSpace(universe, NATURAL)
        with pytest.raises(ValueError):
            space.one().negation()

    def test_conjunction_distributes_over_sum(self, universe):
        space = IPSSpace(universe, BOOLEAN)
        a = space.of_words(["0", "01"])
        b = space.of_words(["01", "111"])
        c = space.of_words(["0", "111"])
        assert a.conjunction(b + c) == a.conjunction(b) + a.conjunction(c)
