"""Formal-power-series tests (Def. 2.9): semantics and semiring laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from _fixtures import words
from repro.semiring.fps import FPS
from repro.semiring.semiring import BOOLEAN, NATURAL


def _bool_series(max_words: int = 4):
    return st.builds(
        lambda ws: FPS.of_language(ws, BOOLEAN),
        st.lists(words(max_size=3), max_size=max_words),
    )


class TestBasics:
    def test_zero_and_one(self):
        zero = FPS.zero(BOOLEAN)
        one = FPS.one(BOOLEAN)
        assert zero("") is False
        assert one("") is True
        assert one("0") is False
        assert zero.support == frozenset()
        assert one.support == frozenset({""})

    def test_zero_coefficients_dropped(self):
        series = FPS(NATURAL, {"a": 0, "b": 2})
        assert series.support == frozenset({"b"})

    def test_call_outside_support(self):
        series = FPS.of_word(BOOLEAN, "01")
        assert series("01") is True
        assert series("0") is False

    def test_mixing_semirings_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FPS.one(BOOLEAN) + FPS.one(NATURAL)


class TestProduct:
    def test_product_is_concatenation(self):
        a = FPS.of_language(["0", "1"], BOOLEAN)
        b = FPS.of_language(["0"], BOOLEAN)
        assert (a * b).support == frozenset({"00", "10"})

    def test_product_counts_derivations_in_nat(self):
        # "aa"·"a" + "a"·"aa" gives coefficient 2 for "aaa".
        a = FPS(NATURAL, {"a": 1, "aa": 1})
        b = FPS(NATURAL, {"a": 1, "aa": 1})
        assert (a * b)("aaa") == 2

    def test_one_is_multiplicative_identity(self):
        series = FPS.of_language(["01", "1"], BOOLEAN)
        assert series * FPS.one(BOOLEAN) == series
        assert FPS.one(BOOLEAN) * series == series

    @given(_bool_series(), _bool_series(), _bool_series())
    @settings(max_examples=40, deadline=None)
    def test_semiring_laws_on_series(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c
        assert (a + b) * c == a * c + b * c
        assert a + FPS.zero(BOOLEAN) == a
        assert a * FPS.zero(BOOLEAN) == FPS.zero(BOOLEAN)


class TestStar:
    def test_star_of_single_char(self):
        series = FPS.of_word(BOOLEAN, "a")
        star = series.star_truncated(3)
        assert star.support == frozenset({"", "a", "aa", "aaa"})

    def test_star_ignores_epsilon_coefficient(self):
        series = FPS.of_language(["", "a"], BOOLEAN)
        assert series.star_truncated(2).support == frozenset({"", "a", "aa"})

    def test_star_of_zero_is_one(self):
        assert FPS.zero(BOOLEAN).star_truncated(4) == FPS.one(BOOLEAN)

    def test_star_truncation_bound(self):
        series = FPS.of_word(BOOLEAN, "ab")
        star = series.star_truncated(5)
        assert star.support == frozenset({"", "ab", "abab"})
