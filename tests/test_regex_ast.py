"""Unit tests for the regex AST module."""

import pytest

from repro.regex.ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    HOLE,
    Empty,
    Epsilon,
    Question,
    Star,
    Union,
    alphabet_of,
    concat_all,
    count_holes,
    depth,
    has_hole,
    literal,
    size,
    subterms,
    union_all,
)


class TestNodes:
    def test_char_requires_single_character(self):
        with pytest.raises(ValueError):
            Char("ab")
        with pytest.raises(ValueError):
            Char("")

    def test_structural_equality(self):
        assert Char("0") == Char("0")
        assert Char("0") != Char("1")
        assert Concat(Char("0"), Char("1")) == Concat(Char("0"), Char("1"))
        assert Union(Char("0"), Char("1")) != Union(Char("1"), Char("0"))

    def test_nodes_are_hashable(self):
        seen = {EMPTY, EPSILON, Char("0"), Star(Char("0"))}
        assert Star(Char("0")) in seen
        assert Question(Char("0")) not in seen

    def test_singletons(self):
        assert EMPTY == Empty()
        assert EPSILON == Epsilon()

    def test_operator_sugar(self):
        regex = Char("0") + Char("1")
        assert regex == Union(Char("0"), Char("1"))
        regex = Char("0") * Char("1")
        assert regex == Concat(Char("0"), Char("1"))
        assert Char("0").star() == Star(Char("0"))
        assert Char("0").opt() == Question(Char("0"))


class TestLiteral:
    def test_empty_word_is_epsilon(self):
        assert literal("") == EPSILON

    def test_single_char(self):
        assert literal("0") == Char("0")

    def test_word(self):
        assert literal("011") == Concat(Concat(Char("0"), Char("1")), Char("1"))


class TestCombinators:
    def test_union_all_empty(self):
        assert union_all([]) == EMPTY

    def test_union_all(self):
        parts = [Char("0"), Char("1"), EPSILON]
        assert union_all(parts) == Union(Union(Char("0"), Char("1")), EPSILON)

    def test_concat_all_empty(self):
        assert concat_all([]) == EPSILON

    def test_concat_all(self):
        parts = [Char("0"), Char("1")]
        assert concat_all(parts) == Concat(Char("0"), Char("1"))


class TestMeasures:
    def test_size(self):
        assert size(Char("0")) == 1
        assert size(Star(Union(Char("0"), Char("1")))) == 4

    def test_depth(self):
        assert depth(Char("0")) == 1
        assert depth(Star(Union(Char("0"), Char("1")))) == 3

    def test_subterms_preorder(self):
        regex = Concat(Char("0"), Star(Char("1")))
        nodes = list(subterms(regex))
        assert nodes[0] == regex
        assert Char("0") in nodes
        assert Star(Char("1")) in nodes
        assert len(nodes) == 4

    def test_alphabet_of(self):
        regex = Union(Concat(Char("a"), Char("b")), Star(Char("a")))
        assert alphabet_of(regex) == frozenset({"a", "b"})

    def test_holes(self):
        assert has_hole(HOLE)
        assert not has_hole(Char("0"))
        assert count_holes(Concat(HOLE, Union(HOLE, Char("0")))) == 2
