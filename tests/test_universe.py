"""Universe tests: ordering, bit indexing, padding, CS translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _fixtures import words
from repro.language.universe import Universe, next_power_of_two
from repro.regex.parser import parse


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (8, 8), (9, 16), (100, 128),
         (1 << 20, 1 << 20), ((1 << 20) + 1, 1 << 21)],
    )
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected


class TestConstruction:
    def test_example36_size_and_order(self):
        universe = Universe(
            ["1", "011", "1011", "11011", "", "10", "101", "0011"]
        )
        assert universe.n_words == 15
        assert universe.words[0] == ""          # shortlex: ε first
        assert universe.words[-1] == "11011"    # longest last
        assert universe.padded_bits == 16       # next power of two ≥ 15
        assert universe.lanes == 1

    def test_min_padding_is_eight(self):
        universe = Universe(["0"])
        assert universe.n_words == 2
        assert universe.padded_bits == 8

    def test_alphabet_inferred_and_sorted(self):
        universe = Universe(["ba"])
        assert universe.alphabet == ("a", "b")

    def test_explicit_alphabet_may_widen(self):
        universe = Universe(["0"], alphabet=("0", "1"))
        assert universe.alphabet == ("0", "1")

    def test_explicit_alphabet_must_cover(self):
        with pytest.raises(ValueError):
            Universe(["2"], alphabet=("0", "1"))

    def test_empty_base(self):
        universe = Universe([])
        assert universe.n_words == 1
        assert universe.words == ("",)
        assert universe.eps_index == 0

    def test_lanes_for_wide_universe(self):
        # 65 distinct one-char words force > 64 bits → 2 lanes (128 padded).
        chars = [chr(ord("a") + i) for i in range(26)]
        chars += [chr(ord("A") + i) for i in range(26)]
        chars += [str(d) for d in range(10)] + ["!", "@", "#"]
        assert len(chars) == 65
        universe = Universe(chars)
        assert universe.n_words == 66  # incl. ε
        assert universe.padded_bits == 128
        assert universe.lanes == 2


class TestBits:
    def test_eps_bit(self):
        universe = Universe(["0", "1"])
        assert universe.eps_index == 0
        assert universe.eps_bit == 1

    def test_word_bit_and_cs_roundtrip(self):
        universe = Universe(["011"])
        cs = universe.cs_of(["0", "01", "011"])
        assert universe.words_of(cs) == ("0", "01", "011")

    def test_word_bit_unknown_word(self):
        universe = Universe(["0"])
        with pytest.raises(KeyError):
            universe.word_bit("00")

    def test_char_cs_for_absent_char_is_zero(self):
        universe = Universe(["0"], alphabet=("0", "1"))
        assert universe.char_cs("1") == 0
        assert universe.char_cs("0") == universe.word_bit("0")

    def test_full_mask(self):
        universe = Universe(["01"])
        assert universe.full_mask == (1 << universe.n_words) - 1

    def test_contains(self):
        universe = Universe(["01"])
        assert "0" in universe
        assert "" in universe
        assert "10" not in universe


class TestCSOfRegex:
    def test_example36_cs(self):
        # The paper: Lang((0?1)*1) ∩ ic = {11011, 1011, 011, 11, 1}.
        universe = Universe(
            ["1", "011", "1011", "11011", "", "10", "101", "0011"]
        )
        cs = universe.cs_of_regex(parse("(0?1)*1"))
        assert set(universe.words_of(cs)) == {"11011", "1011", "011", "11", "1"}

    def test_predicate_equals_regex(self):
        universe = Universe(["0011", "1100"])
        by_predicate = universe.cs_of_predicate(lambda w: w.endswith("0"))
        by_regex = universe.cs_of_regex(parse("(0+1)*0"))
        assert by_predicate == by_regex

    @given(st.lists(words(max_size=4), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_cs_of_words_of_roundtrip(self, base):
        universe = Universe(base, alphabet=("0", "1"))
        subset = tuple(w for i, w in enumerate(universe.words) if i % 2 == 0)
        assert universe.words_of(universe.cs_of(subset)) == subset
