"""Network server tests: scheduler policy, HTTP endpoints, streaming.

The headline acceptance criterion lives in :class:`TestHttpBitIdentity`:
an answer served over HTTP is bit-identical (modulo wall-clock) to the
in-process :class:`~repro.service.client.ServiceClient` answer, on both
backends.  The scheduler classes are tested pure (no sockets, no worker
processes); the HTTP tests share one running server per module.
"""

import json
import socket
import threading
import time

import pytest

from repro import EngineConfig, Spec
from repro.core.result import SynthesisResult
from repro.regex.cost import CostFunction
from repro.server import (
    CLASS_BATCH,
    CLASS_INTERACTIVE,
    AdmissionController,
    HttpServiceClient,
    LatencyTracker,
    OverloadedError,
    ServerError,
    SynthesisServer,
    WorkloadHistory,
    choose_shard_workers,
    classify,
    estimate_cost,
)
from repro.server.client import poll_intervals
from repro.service import ServiceClient, WireRequest

BACKENDS = ["scalar", "vector"]

INTRO_SPEC = Spec(
    positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
    negative=["", "0", "1", "00", "11", "010"],
)

#: Long-running workload (same recipe as test_service): a >64-word
#: universe with an expensive star keeps the sweep busy for seconds,
#: leaving a comfortable window for mid-run joins and cancellations.
SLOW_SPEC = Spec(
    positive=["0110100101", "1010010110"],
    negative=["", "0", "1", "0011001100"],
)


def wire_of(spec, backend="vector", **kwargs):
    return WireRequest(
        spec=spec, config=EngineConfig(backend=backend), **kwargs
    )


def slow_wire(**kwargs):
    kwargs.setdefault("max_generated", 20_000_000)
    return WireRequest(
        spec=SLOW_SPEC,
        cost_fn=CostFunction.from_tuple((1, 1, 10, 1, 1)),
        config=EngineConfig(backend="vector"),
        **kwargs,
    )


def fake_result(elapsed=0.1, widths=(), generated=100, status="success"):
    return SynthesisResult(
        status=status,
        spec=INTRO_SPEC,
        backend="vector",
        cost_function=(1, 1, 1, 1, 1),
        allowed_error=0.0,
        max_cost=40,
        generated=generated,
        elapsed_seconds=elapsed,
        extra={
            "level_stats": [
                {"cost": i + 1, "generated": w, "stored": w, "otf": 0}
                for i, w in enumerate(widths)
            ]
        },
    )


# ----------------------------------------------------------------------
# Scheduler policy (pure, no sockets)
# ----------------------------------------------------------------------
class TestEstimateAndClassify:
    def test_estimate_orders_by_universe_and_ceiling(self):
        small = wire_of(Spec(["0"], ["1"]))
        large = wire_of(Spec(["0" * 30, "1" * 24], ["01" * 12]), max_cost=500)
        assert estimate_cost(small) < estimate_cost(large)

    def test_estimate_capped_by_candidate_budget(self):
        unbounded = wire_of(Spec(["0" * 30], ["1" * 30]), max_cost=500)
        budgeted = WireRequest(
            spec=Spec(["0" * 30], ["1" * 30]),
            max_cost=500,
            max_generated=1_000,
            config=EngineConfig(backend="vector"),
        )
        assert estimate_cost(budgeted) < estimate_cost(unbounded)

    def test_classify_heuristic_small_is_interactive(self):
        assert classify(wire_of(Spec(["0"], ["1"])), None) == CLASS_INTERACTIVE

    def test_classify_heuristic_huge_is_batch(self):
        huge = wire_of(Spec(["0" * 30, "1" * 24], ["01" * 12]), max_cost=500)
        assert classify(huge, None) == CLASS_BATCH

    def test_measured_latency_overrides_the_estimate(self):
        huge = wire_of(Spec(["0" * 30, "1" * 24], ["01" * 12]), max_cost=500)
        history = WorkloadHistory()
        history.record(huge.staging_fingerprint(), fake_result(elapsed=0.01))
        assert classify(huge, history) == CLASS_INTERACTIVE
        slow_history = WorkloadHistory()
        tiny = wire_of(Spec(["0"], ["1"]))
        slow_history.record(
            tiny.staging_fingerprint(), fake_result(elapsed=30.0)
        )
        assert classify(tiny, slow_history) == CLASS_BATCH


class TestChooseShardWorkers:
    def test_explicit_fanout_is_respected(self):
        wire = WireRequest(
            spec=INTRO_SPEC,
            config=EngineConfig(backend="vector", shard_workers=3),
        )
        assert choose_shard_workers(wire, WorkloadHistory(), 8) == 3

    def test_unseen_fingerprint_stays_serial(self):
        assert choose_shard_workers(wire_of(INTRO_SPEC), WorkloadHistory(), 8) == 1
        assert choose_shard_workers(wire_of(INTRO_SPEC), None, 8) == 1

    def test_narrow_history_stays_serial(self):
        wire = wire_of(INTRO_SPEC)
        history = WorkloadHistory()
        history.record(wire.staging_fingerprint(), fake_result(widths=(10, 50)))
        assert choose_shard_workers(wire, history, 8) == 1

    def test_wide_history_fans_out_bounded_by_machine(self):
        wire = wire_of(INTRO_SPEC)
        history = WorkloadHistory()
        history.record(
            wire.staging_fingerprint(), fake_result(widths=(100, 5_000_000))
        )
        assert choose_shard_workers(wire, history, cpu_count=8) == 4
        assert choose_shard_workers(wire, history, cpu_count=2) == 2
        assert choose_shard_workers(wire, history, cpu_count=1) == 1


class TestWorkloadHistory:
    def test_record_folds_running_average_and_width(self):
        history = WorkloadHistory()
        profile = history.record("fp", fake_result(elapsed=1.0, widths=(5,)))
        profile = history.record("fp", fake_result(elapsed=3.0, widths=(9,)))
        assert profile.runs == 2
        assert profile.avg_elapsed_s == pytest.approx(2.0)
        assert profile.max_level_width == 9

    def test_lru_bound(self):
        history = WorkloadHistory(max_entries=2)
        for name in ("a", "b", "c"):
            history.record(name, fake_result())
        assert len(history) == 2
        assert history.profile("a") is None
        assert history.profile("c") is not None

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "history.json"
        history = WorkloadHistory(path=path)
        history.record("fp", fake_result(elapsed=2.0, widths=(7,)))
        history.save()
        reloaded = WorkloadHistory(path=path)
        profile = reloaded.profile("fp")
        assert profile is not None
        assert profile.avg_elapsed_s == pytest.approx(2.0)
        assert profile.max_level_width == 7

    def test_corrupt_file_is_an_empty_history(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text("not json", encoding="utf-8")
        assert len(WorkloadHistory(path=path)) == 0


class TestAdmission:
    def test_bounded_admission_and_release(self):
        controller = AdmissionController(
            slots={CLASS_INTERACTIVE: 1, CLASS_BATCH: 1},
            max_queue={CLASS_INTERACTIVE: 1, CLASS_BATCH: 0},
        )
        assert controller.try_admit(CLASS_INTERACTIVE).admitted
        assert controller.try_admit(CLASS_INTERACTIVE).admitted
        rejected = controller.try_admit(CLASS_INTERACTIVE)
        assert not rejected.admitted
        assert rejected.retry_after_s >= 1.0
        assert "queue full" in rejected.reason
        # The other class has its own budget.
        assert controller.try_admit(CLASS_BATCH).admitted
        controller.release(CLASS_INTERACTIVE)
        assert controller.try_admit(CLASS_INTERACTIVE).admitted
        snapshot = controller.depth_snapshot()
        assert snapshot[CLASS_INTERACTIVE]["rejected"] == 1
        assert snapshot[CLASS_INTERACTIVE]["live"] == 2

    def test_retry_after_scales_with_backlog_and_p50(self):
        latency = LatencyTracker()
        for _ in range(10):
            latency.record(CLASS_BATCH, 2.0)
        controller = AdmissionController(
            slots={CLASS_INTERACTIVE: 1, CLASS_BATCH: 2},
            max_queue={CLASS_INTERACTIVE: 0, CLASS_BATCH: 0},
            latency=latency,
        )
        assert controller.retry_after(CLASS_BATCH, queued=4) == 4.0
        assert controller.retry_after(CLASS_BATCH, queued=0) == 1.0  # floor


class TestLatencyTracker:
    def test_percentiles_and_snapshot(self):
        tracker = LatencyTracker()
        assert tracker.percentile(CLASS_INTERACTIVE, 0.5) is None
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            tracker.record(CLASS_INTERACTIVE, value)
        assert tracker.percentile(CLASS_INTERACTIVE, 0.5) == pytest.approx(0.3)
        assert tracker.percentile(CLASS_INTERACTIVE, 0.99) == pytest.approx(1.0)
        snapshot = tracker.snapshot()
        assert snapshot[CLASS_INTERACTIVE]["count"] == 5
        assert snapshot[CLASS_BATCH]["count"] == 0


class TestPollBackoff:
    def test_intervals_double_to_a_cap(self):
        schedule = poll_intervals(base=0.05, cap=1.0)
        values = [next(schedule) for _ in range(8)]
        assert values[0] == pytest.approx(0.05)
        assert values[1] == pytest.approx(0.10)
        assert values == sorted(values)  # monotone
        assert values[-1] == pytest.approx(1.0)
        assert next(schedule) == pytest.approx(1.0)  # stays capped


# ----------------------------------------------------------------------
# The running HTTP server (one per module; lanes of one worker each)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("server-store")
    with SynthesisServer(
        store_dir=str(store),
        interactive_workers=1,
        batch_workers=1,
        per_worker_depth=2,
    ) as running:
        yield running


@pytest.fixture()
def client(server):
    return HttpServiceClient(server.address)


def _wait(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in %.0fs" % timeout)
        time.sleep(interval)


class TestHttpBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_http_answers_match_in_process_service(self, backend, client):
        wire = wire_of(INTRO_SPEC, backend=backend)
        job = client.submit(wire)
        over_http = client.result(job["job_id"], timeout=120)["result"]
        with ServiceClient(workers=1, config=EngineConfig(backend=backend)) as sc:
            in_process = sc.synthesize(wire).to_dict()
        # The job document additionally forwards the scheduling
        # counters from ``result.extra`` (attempts, preemptions, ...)
        # that a bare ``to_dict`` does not carry.
        extra = over_http.pop("extra")
        assert extra["attempts"] == 1
        assert extra["preemptions"] == 0
        # Wall-clock is the only remaining field allowed to differ.
        for key in set(in_process) | set(over_http):
            if key == "elapsed_seconds":
                continue
            assert over_http.get(key) == in_process.get(key), key

    def test_synthesize_helper_round_trips(self, client):
        result = client.synthesize(wire_of(Spec(["0", "00"], ["1"])),
                                   timeout=120)
        assert result["status"] == "success"


class TestEventStream:
    def test_stream_replays_and_preserves_engine_clock(self, client):
        wire = wire_of(Spec(["10", "100"], ["", "0", "1"]))
        job = client.submit(wire)
        done = client.result(job["job_id"], timeout=120)
        events = list(client.events(job["job_id"]))
        assert events, "finished job must replay its event history"
        assert events[-1].done
        # The engine-side monotonic clock survived the HTTP trip.
        clocks = [event.elapsed_s for event in events]
        assert clocks == sorted(clocks)
        assert events[-1].elapsed_s > 0.0
        incumbent = events[-1].incumbent
        assert incumbent["regex"] == done["result"]["regex"]

    def test_duplicate_submit_joins_live_job(self, client, server):
        wire = slow_wire()
        first = client.submit(wire)
        assert not first.get("deduplicated")
        try:
            _wait(lambda: client.status(first["job_id"])["state"]
                  in ("queued", "running"))
            second = client.submit(wire)
            assert second["job_id"] == first["job_id"]
            assert second["deduplicated"] is True
            assert server._records[first["job_id"]].joined == 1
        finally:
            client.cancel(first["job_id"])
            client.result(first["job_id"], timeout=120)

    def test_cancel_mid_run(self, client):
        wire = slow_wire(allowed_error=0.01)
        job = client.submit(wire)
        # Wait for the first progress event so the job is on a worker.
        _wait(lambda: client.status(job["job_id"])["events"] > 0, timeout=60)
        answer = client.cancel(job["job_id"])
        assert answer["cancelled"] is True
        done = client.result(job["job_id"], timeout=120)
        assert done["state"] == "cancelled"
        assert done["result"]["status"] == "cancelled"

    def test_cancel_after_complete_returns_the_result(self, client):
        wire = wire_of(Spec(["01", "0101"], ["10", "1"]))
        job = client.submit(wire)
        client.result(job["job_id"], timeout=120)
        answer = client.cancel(job["job_id"])
        assert answer["cancelled"] is False
        assert answer["state"] == "done"
        assert answer["result"]["status"] == "success"

    def test_client_disconnect_releases_subscription(self, client, server):
        wire = slow_wire(max_cost=60)
        job = client.submit(wire)
        job_id = job["job_id"]
        try:
            _wait(lambda: client.status(job_id)["events"] > 0, timeout=60)
            record = server._records[job_id]
            stream = client.events(job_id)
            next(stream)  # subscribed (replay delivers instantly)
            _wait(lambda: len(record.subscribers) == 1, timeout=10)
            stream.close()  # closes the connection mid-stream
            _wait(lambda: len(record.subscribers) == 0, timeout=10)
        finally:
            client.cancel(job_id)
            client.result(job_id, timeout=120)

    def test_events_for_unknown_job_is_404(self, client):
        with pytest.raises(ServerError) as err:
            list(client.events("no-such-job"))
        assert err.value.status == 404


class TestEndpoints:
    def test_unknown_job_status_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client.status("deadbeef")
        assert err.value.status == 404

    def test_unknown_path_is_404_and_bad_json_is_400(self, server):
        connection_status = []
        for raw in (
            b"GET /nope HTTP/1.1\r\n\r\n",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 7\r\n\r\nnot llo",
            b"GET /jobs HTTP/1.1\r\n\r\n",
        ):
            with socket.create_connection(("127.0.0.1", server.port)) as sock:
                sock.sendall(raw)
                head = sock.recv(4096).decode("latin-1", "replace")
                connection_status.append(int(head.split()[1]))
        assert connection_status == [404, 400, 405]

    def test_healthz_reports_lanes_and_quarantine(self, client, server):
        quarantine_dir = (
            __import__("pathlib").Path(server.store_dir) / "quarantine"
        )
        quarantine_dir.mkdir(exist_ok=True)
        record_path = quarantine_dir / "feedface.json"
        record_path.write_text(
            json.dumps({"fingerprint": "feedface", "job_id": "j1",
                        "attempts": 3, "error": "poison",
                        "request": {}}),
            encoding="utf-8",
        )
        try:
            health = client.healthz()
            assert health["status"] == "ok"
            for klass in (CLASS_INTERACTIVE, CLASS_BATCH):
                assert health["lanes"][klass]["alive"] >= 1
            for counter in ("retries", "respawns", "quarantined"):
                assert counter in health["counters"]
            fingerprints = [q["fingerprint"] for q in health["quarantine"]]
            assert "feedface" in fingerprints
            entry = next(q for q in health["quarantine"]
                         if q["fingerprint"] == "feedface")
            assert entry["attempts"] == 3
        finally:
            record_path.unlink()

    def test_metrics_exposition_format(self, client):
        text = client.metrics()
        for line in (
            "# TYPE repro_queue_depth gauge",
            "# TYPE repro_jobs_rejected_total counter",
            'repro_queue_depth{class="interactive"}',
            'repro_latency_seconds{class="batch",quantile="0.99"}',
            "# TYPE repro_workers_alive gauge",
        ):
            assert line in text, line

    def test_class_override_is_honoured(self, client):
        job = client.submit(
            wire_of(Spec(["111", "11"], ["1", ""])), klass=CLASS_BATCH
        )
        assert job["class"] == CLASS_BATCH
        client.result(job["job_id"], timeout=120)


# ----------------------------------------------------------------------
# Overload: a bounded queue answers 429, never hangs
# ----------------------------------------------------------------------
class TestOverload:
    def test_admission_rejects_with_retry_after(self, tmp_path):
        with SynthesisServer(
            store_dir=str(tmp_path / "store"),
            interactive_workers=1,
            batch_workers=1,
            per_worker_depth=1,
            max_queue={CLASS_INTERACTIVE: 0, CLASS_BATCH: 0},
        ) as running:
            client = HttpServiceClient(running.address)
            filler = slow_wire()
            job = client.submit(filler, klass=CLASS_INTERACTIVE)
            try:
                overflow = slow_wire(allowed_error=0.125)
                assert overflow.fingerprint() != filler.fingerprint()
                with pytest.raises(OverloadedError) as err:
                    client.submit(overflow, klass=CLASS_INTERACTIVE)
                assert err.value.retry_after_s >= 1.0
                # A duplicate of the LIVE job still joins (no new slot).
                joined = client.submit(filler, klass=CLASS_INTERACTIVE)
                assert joined["deduplicated"] is True
                # The batch lane is unaffected by interactive overload.
                batch_job = client.submit(
                    wire_of(Spec(["0"], ["1"])), klass=CLASS_BATCH
                )
                client.result(batch_job["job_id"], timeout=120)
                metrics = client.metrics()
                assert 'repro_jobs_rejected_total{class="interactive"} 1' \
                    in metrics
            finally:
                client.cancel(job["job_id"])
                client.result(job["job_id"], timeout=120)


# ----------------------------------------------------------------------
# Server-side maintenance
# ----------------------------------------------------------------------
class TestServerMaintenance:
    def test_history_recorded_and_persisted(self, client, server):
        wire = wire_of(Spec(["001", "0011"], ["1", "0"]))
        job = client.submit(wire)
        client.result(job["job_id"], timeout=120)
        profile = server.history.profile(wire.staging_fingerprint())
        assert profile is not None and profile.runs >= 1

    def test_resubmit_after_cancel_starts_fresh(self, client):
        wire = slow_wire(max_generated=10_000_000)
        job = client.submit(wire)
        client.cancel(job["job_id"])
        client.result(job["job_id"], timeout=120)
        again = client.submit(wire)
        assert not again.get("deduplicated")
        client.cancel(again["job_id"])
        client.result(again["job_id"], timeout=120)
