"""Bit-parallel (Glushkov/Shift-And) contains-check tests, cross-checked
against the derivative matcher — the third independent matcher."""

from hypothesis import given, settings

from _fixtures import regexes, words
from repro.regex.bitparallel import (
    bitparallel_matches,
    compile_pattern,
    find_all,
)
from repro.regex.derivatives import matches
from repro.regex.parser import parse


class TestGlushkovStructure:
    def test_positions_count_char_occurrences(self):
        automaton = compile_pattern(parse("0(0+1)*0"))
        assert automaton.n_positions == 4

    def test_nullable(self):
        assert compile_pattern(parse("0*")).nullable
        assert compile_pattern(parse("0?1?")).nullable
        assert not compile_pattern(parse("0")).nullable

    def test_empty_regex(self):
        automaton = compile_pattern(parse("∅"))
        assert automaton.n_positions == 0
        assert not automaton.accepts("")
        assert not automaton.accepts("0")

    def test_epsilon_regex(self):
        automaton = compile_pattern(parse("ε"))
        assert automaton.accepts("")
        assert not automaton.accepts("0")

    def test_transition_memoisation(self):
        automaton = compile_pattern(parse("(01)*"))
        automaton.accepts("010101")
        visited = automaton.count_states_visited()
        automaton.accepts("010101")
        assert automaton.count_states_visited() == visited


class TestAcceptance:
    def test_intro_regex(self):
        automaton = compile_pattern(parse("10(0+1)*"))
        for word in ("10", "101", "1011", "1000"):
            assert automaton.accepts(word)
        for word in ("", "0", "1", "01", "010"):
            assert not automaton.accepts(word)

    def test_unknown_symbol(self):
        assert not compile_pattern(parse("0*")).accepts("x")

    @given(regexes(max_leaves=7), words(max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_derivative_matcher(self, regex, word):
        assert bitparallel_matches(regex, word) == matches(regex, word)

    def test_wide_pattern_beyond_64_positions(self):
        # 70 literal positions: masks exceed one machine word; Python
        # ints keep the construction exact.
        pattern = parse("0" * 70)
        automaton = compile_pattern(pattern)
        assert automaton.n_positions == 70
        assert automaton.accepts("0" * 70)
        assert not automaton.accepts("0" * 69)


class TestFindAll:
    def test_extraction(self):
        spans = find_all(parse("10"), "110100")
        assert spans == [(1, 3), (3, 5)]

    def test_nullable_pattern_matches_everywhere(self):
        spans = find_all(parse("1*"), "011")
        assert (0, 0) in spans
        assert (1, 3) in spans

    def test_no_matches(self):
        assert find_all(parse("11"), "000") == []

    @given(regexes(max_leaves=5), words(max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_spans_are_sound_and_complete(self, regex, text):
        spans = set(find_all(regex, text))
        for start in range(len(text) + 1):
            for end in range(start, len(text) + 1):
                expected = matches(regex, text[start:end])
                assert ((start, end) in spans) == expected
