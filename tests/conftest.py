"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.regex.ast import (
    Char,
    Concat,
    EMPTY,
    EPSILON,
    Question,
    Star,
    Union,
)
from repro.spec import Spec


@pytest.fixture
def intro_spec() -> Spec:
    """The paper's introduction example (target ``10(0+1)*``)."""
    return Spec(
        positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
        negative=["", "0", "1", "00", "11", "010"],
    )


@pytest.fixture
def example36_spec() -> Spec:
    """The paper's Example 3.6 specification (target ``(0?1)*1``-ish)."""
    return Spec(
        positive=["1", "011", "1011", "11011"],
        negative=["", "10", "101", "0011"],
    )


@pytest.fixture
def tiny_spec() -> Spec:
    """A very small spec every backend solves instantly."""
    return Spec(positive=["0", "00"], negative=["", "1"])


def regexes(alphabet: str = "01", max_leaves: int = 6):
    """Hypothesis strategy for hole-free regular expressions."""
    leaves = st.one_of(
        st.sampled_from([EMPTY, EPSILON]),
        st.sampled_from([Char(ch) for ch in alphabet]),
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.builds(Star, inner),
            st.builds(Question, inner),
            st.builds(Concat, inner, inner),
            st.builds(Union, inner, inner),
        ),
        max_leaves=max_leaves,
    )


def words(alphabet: str = "01", max_size: int = 6):
    """Hypothesis strategy for words over ``alphabet``."""
    return st.text(alphabet=alphabet, max_size=max_size)


def small_specs(alphabet: str = "01", max_len: int = 4, max_each: int = 5):
    """Hypothesis strategy for small valid specifications."""

    def build(pos, neg):
        neg = [w for w in neg if w not in set(pos)]
        return Spec(pos, neg, alphabet=tuple(alphabet))

    word = words(alphabet, max_len)
    return st.builds(
        build,
        st.lists(word, min_size=1, max_size=max_each),
        st.lists(word, min_size=0, max_size=max_each),
    )
