"""Shared pytest fixtures for the test-suite.

Fixture-only by design: hypothesis strategies and other plain helpers
live in ``tests/_fixtures.py`` and are imported explicitly by the test
modules that use them.  (Importing helpers from ``conftest`` breaks
root-level collection, because ``benchmarks/conftest.py`` is loaded
under the same ``conftest`` module name.)
"""

from __future__ import annotations

import pytest

from repro.spec import Spec


@pytest.fixture
def intro_spec() -> Spec:
    """The paper's introduction example (target ``10(0+1)*``)."""
    return Spec(
        positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
        negative=["", "0", "1", "00", "11", "010"],
    )


@pytest.fixture
def example36_spec() -> Spec:
    """The paper's Example 3.6 specification (target ``(0?1)*1``-ish)."""
    return Spec(
        positive=["1", "011", "1011", "11011"],
        negative=["", "10", "101", "0011"],
    )


@pytest.fixture
def tiny_spec() -> Spec:
    """A very small spec every backend solves instantly."""
    return Spec(positive=["0", "00"], negative=["", "1"])
