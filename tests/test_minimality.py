"""Minimality: Paresy's optimum must match the independent brute-force
syntactic enumerator on small instances, under several cost functions."""

import pytest
from hypothesis import given, settings

from _fixtures import small_specs
from repro import CostFunction, Spec, synthesize
from repro.baselines.bruteforce import bruteforce_synthesize


FIXED_SPECS = [
    Spec(["0"], ["", "1"]),
    Spec(["01", "0101"], ["", "0", "1"]),
    Spec(["", "0", "00"], ["1", "01"]),
    Spec(["1", "11", "111"], ["", "0"]),
    Spec(["10", "100"], ["", "0", "01"]),
    Spec(["a", "ab"], ["", "b"]),
]


@pytest.mark.parametrize("spec", FIXED_SPECS, ids=[str(s) for s in FIXED_SPECS])
@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_fixed_specs_match_bruteforce(spec, backend):
    brute = bruteforce_synthesize(spec, max_cost=8)
    assert brute.found, "brute force must solve these within cost 8"
    result = synthesize(spec, backend=backend)
    assert result.found
    assert result.cost == brute.cost
    assert spec.is_satisfied_by(result.regex)


@pytest.mark.parametrize(
    "cost_tuple",
    [(1, 1, 1, 1, 1), (2, 1, 1, 1, 1), (1, 2, 3, 1, 2), (1, 1, 5, 1, 1)],
)
def test_nonuniform_costs_match_bruteforce(cost_tuple):
    cost_fn = CostFunction.from_tuple(cost_tuple)
    spec = Spec(["0", "00"], ["", "1", "10"])
    brute = bruteforce_synthesize(spec, cost_fn=cost_fn, max_cost=14)
    result = synthesize(spec, cost_fn=cost_fn)
    assert brute.found and result.found
    assert result.cost == brute.cost


@given(small_specs(max_len=3, max_each=3))
@settings(max_examples=20, deadline=None)
def test_random_specs_match_bruteforce(spec):
    brute = bruteforce_synthesize(spec, max_cost=7)
    result = synthesize(spec)
    assert result.found
    if brute.found:
        assert result.cost == brute.cost
    else:
        # brute force gave up at cost 7, so the optimum must be above it
        assert result.cost > 7
