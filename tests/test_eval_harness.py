"""Evaluation-harness tests (small, fast configurations)."""

from repro.eval.harness import (
    run_suite,
    staging_for,
    time_alpharegex,
    time_paresy,
)
from repro.regex.cost import ALPHAREGEX_COST, CostFunction
from repro.service import ServiceClient


class TestTimeParesy:
    def test_record_fields(self, tiny_spec):
        record = time_paresy("t", tiny_spec, CostFunction.uniform(), "vector")
        assert record.system == "paresy-vector"
        assert record.status == "success"
        assert record.regex == "00?"
        assert record.generated > 0
        assert record.elapsed_seconds > 0

    def test_repeats_average(self, tiny_spec):
        record = time_paresy("t", tiny_spec, CostFunction.uniform(),
                             "scalar", repeats=3)
        assert record.repeats == 3

    def test_staging_reuse(self, intro_spec):
        staging = staging_for(intro_spec)
        a = time_paresy("a", intro_spec, CostFunction.uniform(), "vector",
                        staging=staging)
        b = time_paresy("b", intro_spec,
                        CostFunction.from_tuple((1, 1, 10, 1, 1)), "vector",
                        staging=staging)
        assert a.status == b.status == "success"

    def test_budget_surfaces_in_status(self, intro_spec):
        record = time_paresy("t", intro_spec, CostFunction.uniform(),
                             "vector", max_generated=5)
        assert record.status == "budget"


class TestRunSuite:
    def test_solo_suite_records(self, tiny_spec, intro_spec):
        records = run_suite([("tiny", tiny_spec), ("intro", intro_spec)])
        assert [r.name for r in records] == ["tiny", "intro"]
        assert all(r.system == "paresy-vector" for r in records)
        assert all(r.status == "success" for r in records)

    def test_pooled_suite_is_bit_identical_to_solo(self, tiny_spec,
                                                   intro_spec):
        named = [("tiny", tiny_spec), ("intro", intro_spec)]
        solo = run_suite(named)
        with ServiceClient(workers=2) as client:
            pooled = run_suite(named, client=client)
        assert [(r.name, r.status, r.regex, r.cost) for r in solo] == [
            (r.name, r.status, r.regex, r.cost) for r in pooled
        ]
        assert all(r.system == "paresy-vector-pool2" for r in pooled)


class TestTimeAlphaRegex:
    def test_record_fields(self, tiny_spec):
        record = time_alpharegex("t", tiny_spec)
        assert record.system == "alpharegex"
        assert record.status == "success"
        assert record.cost_function == ALPHAREGEX_COST.as_tuple()
        assert "expanded" in record.extra

    def test_budget(self, intro_spec):
        record = time_alpharegex("t", intro_spec, max_expanded=3)
        assert record.status == "budget"
