"""Guide-table tests: completeness and correctness of precomputed splits."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from _fixtures import words
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe


class TestSplits:
    def test_epsilon_has_single_split(self):
        universe = Universe(["0"])
        guide = GuideTable(universe)
        eps = universe.eps_index
        assert guide[eps] == ((eps, eps),)

    def test_split_count_is_length_plus_one(self):
        universe = Universe(["0101"])
        guide = GuideTable(universe)
        for index, word in enumerate(universe.words):
            assert len(guide[index]) == len(word) + 1

    def test_paper_110_example(self):
        # §3: the guide-table row for "110" includes the split (11, 0).
        universe = Universe(["110"])
        guide = GuideTable(universe)
        row = guide[universe.index["110"]]
        pairs = {(universe.words[i], universe.words[j]) for i, j in row}
        assert pairs == {("", "110"), ("1", "10"), ("11", "0"), ("110", "")}

    def test_all_split_halves_are_universe_words(self):
        universe = Universe(["0110", "101"])
        guide = GuideTable(universe)
        for index, word in enumerate(universe.words):
            for i, j in guide[index]:
                assert universe.words[i] + universe.words[j] == word

    @given(st.lists(words(max_size=5), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_splits_complete_and_sound(self, base):
        universe = Universe(base, alphabet=("0", "1"))
        guide = GuideTable(universe)
        for index, word in enumerate(universe.words):
            expected = {
                (word[:cut], word[cut:]) for cut in range(len(word) + 1)
            }
            actual = {
                (universe.words[i], universe.words[j])
                for i, j in guide[index]
            }
            assert actual == expected


class TestFlatView:
    def test_flat_matches_nested(self):
        universe = Universe(["0101", "11"])
        guide = GuideTable(universe)
        flat = guide.flat
        assert flat.offsets[0] == 0
        assert flat.offsets[-1] == guide.n_splits
        for w, pairs in enumerate(guide.splits):
            lo, hi = flat.offsets[w], flat.offsets[w + 1]
            rebuilt = list(zip(flat.left_index[lo:hi], flat.right_index[lo:hi]))
            assert [(int(i), int(j)) for i, j in rebuilt] == list(pairs)

    def test_flat_is_cached(self):
        guide = GuideTable(Universe(["01"]))
        assert guide.flat is guide.flat

    def test_dtypes(self):
        flat = GuideTable(Universe(["0011"])).flat
        assert flat.offsets.dtype == np.int64
        assert flat.left_index.dtype == np.int64
