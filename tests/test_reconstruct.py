"""Provenance-reconstruction tests."""

import pytest

from repro.core.engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_EMPTY,
    OP_EPSILON,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
)
from repro.core.reconstruct import reconstruct
from repro.regex.ast import EMPTY, EPSILON
from repro.regex.printer import to_string


ALPHABET = ("0", "1")


class TestLeaves:
    def test_empty(self):
        assert reconstruct((OP_EMPTY, -1, -1), [], ALPHABET) == EMPTY

    def test_epsilon(self):
        assert reconstruct((OP_EPSILON, -1, -1), [], ALPHABET) == EPSILON

    def test_char(self):
        regex = reconstruct((OP_CHAR, 1, -1), [], ALPHABET)
        assert to_string(regex) == "1"

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            reconstruct((99, 0, 0), [], ALPHABET)


class TestComposite:
    def test_shared_subterms(self):
        # cache: [0] = '0', [1] = '1', [2] = 0·1, [3] = (0·1)*
        provenance = [
            (OP_CHAR, 0, -1),
            (OP_CHAR, 1, -1),
            (OP_CONCAT, 0, 1),
            (OP_STAR, 2, -1),
        ]
        # solution: (0·1)* + 0·1  — both operands share the cache.
        regex = reconstruct((OP_UNION, 3, 2), provenance, ALPHABET)
        assert to_string(regex) == "(01)*+01"

    def test_question(self):
        provenance = [(OP_CHAR, 0, -1)]
        regex = reconstruct((OP_QUESTION, 0, -1), provenance, ALPHABET)
        assert to_string(regex) == "0?"

    def test_deep_chain(self):
        # a left-leaning concat chain of 40 characters
        provenance = [(OP_CHAR, 0, -1)]
        for i in range(40):
            provenance.append((OP_CONCAT, len(provenance) - 1, 0))
        regex = reconstruct((OP_STAR, len(provenance) - 1, -1),
                            provenance, ALPHABET)
        assert to_string(regex) == "(" + "0" * 41 + ")*"

    def test_paper_intro_provenance_shape(self, intro_spec):
        """End-to-end: the engine's own provenance reconstructs to the
        solution it reports."""
        from repro.core.synthesizer import make_engine
        from repro.regex.cost import CostFunction

        engine = make_engine(intro_spec, CostFunction.uniform(),
                             backend="scalar")
        assert engine.run(20) == "success"
        regex = reconstruct(engine.solution, engine.cache.provenance,
                            engine.universe.alphabet)
        assert to_string(regex) == "10(0+1)*"
