"""Observability tests: tracer units, exporters, metrics — and the
end-to-end contract over the HTTP server.

The headline acceptance criterion lives in
:class:`TestEndToEndTracing`: one server round trip yields a Chrome
trace with **one** trace id whose spans come from at least three
processes (server, pool, pool worker) and cover ≥ 90% of the job's
wall-clock; with tracing off, the answer is bit-identical and zero
spans are recorded.
"""

import json
import socket

import pytest

from repro import EngineConfig, Spec
from repro.api import Session, SynthesisRequest
from repro.obs.export import (
    SPAN_STAGES,
    chrome_trace,
    coverage_fraction,
    stage_summary,
    waterfall,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext, Tracer
from repro.obs.validate import (
    ValidationError,
    parse_prometheus,
    validate_chrome_trace,
)
from repro.regex.cost import CostFunction
from repro.server import (
    CLASS_INTERACTIVE,
    HttpServiceClient,
    ServerError,
    SynthesisServer,
)
from repro.service import ServiceClient, WireRequest

INTRO_SPEC = Spec(
    positive=["10", "101", "100", "1010", "1011", "1000", "1001"],
    negative=["", "0", "1", "00", "11", "010"],
)

#: A deep 4-lane alternation task (~1.1M candidates): long enough that
#: fixed per-job overheads (submit hop, store write) are a small
#: fraction of wall-clock, which is what the ≥ 90% coverage criterion
#: actually measures.
DEEP_SPEC = Spec(
    positive=["01101001011", "10100101101", "01011010011", "10010110101"],
    negative=["", "0", "1", "11", "10", "00110011001", "11100011101",
              "00000111110", "10110100101", "01100110100"],
)


def span_dict(name, trace_id, span_id, parent_id, start_s, end_s,
              process="test", **args):
    return {
        "name": name, "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "start_s": start_s, "end_s": end_s,
        "process": process, "args": args,
    }


# ----------------------------------------------------------------------
# Tracer and TraceContext (pure units)
# ----------------------------------------------------------------------
class TestTracer:
    def test_implicit_parenting_nests_spans(self):
        tracer = Tracer("cafe", process="p")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.drain()
        assert outer["name"] == "outer" and outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert all(s["trace_id"] == "cafe" for s in (outer, inner))
        assert len(tracer) == 0  # drain clears the buffer

    def test_remote_parent_seeds_the_stack(self):
        tracer = Tracer("cafe", parent_span_id="feed")
        tracer.finish(tracer.start("local"))
        (span,) = tracer.drain()
        assert span["parent_id"] == "feed"

    def test_finish_merges_late_args(self):
        tracer = Tracer("cafe")
        span = tracer.start("work", kind="level")
        tracer.finish(span, generated=42)
        (wire,) = tracer.drain()
        assert wire["args"] == {"kind": "level", "generated": 42}
        assert wire["end_s"] >= wire["start_s"]

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer("cafe", capacity=2)
        for index in range(3):
            tracer.finish(tracer.start("s%d" % index))
        spans = tracer.drain()
        assert [s["name"] for s in spans] == ["s1", "s2"]
        assert tracer.dropped == 1

    def test_adopt_passes_wire_spans_through(self):
        tracer = Tracer("cafe")
        foreign = span_dict("shard", "cafe", "aa", None, 1.0, 2.0,
                            process="shard-0")
        tracer.adopt([foreign])
        assert tracer.snapshot() == [foreign]


class TestTraceContext:
    def test_mint_child_round_trip(self):
        ctx = TraceContext.mint()
        child = ctx.child("beef")
        assert child.trace_id == ctx.trace_id
        assert child.parent_span_id == "beef"
        parsed = TraceContext.from_json_dict(child.to_json_dict())
        assert parsed == child

    @pytest.mark.parametrize("junk", [None, 7, [], {}, {"trace_id": ""}])
    def test_from_json_tolerates_junk(self, junk):
        assert TraceContext.from_json_dict(junk) is None


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExport:
    def spans(self):
        return [
            span_dict("job", "t1", "root", None, 10.0, 10.5, "server"),
            span_dict("level", "t1", "aa", "root", 10.1, 10.3, "worker"),
        ]

    def test_chrome_trace_is_valid_and_rebased(self):
        doc = chrome_trace(self.spans())
        summary = validate_chrome_trace(doc)
        assert summary["processes"] == 2
        assert summary["trace_ids"] == ["t1"]
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == 0  # rebased to the earliest span
        assert complete[1]["args"]["parent_id"] == "root"

    def test_waterfall_mentions_every_span(self):
        text = waterfall(self.spans())
        assert "2 spans" in text
        assert "level" in text and "job" in text
        assert waterfall([]) == "(no spans recorded)"

    def test_stage_summary_maps_known_names_only(self):
        stages = stage_summary(
            self.spans()
            + [span_dict("queue-wait", "t1", "bb", "root", 10.0, 10.1, "pool")]
        )
        assert stages["level_build"]["count"] == 1
        assert stages["queue_wait"]["seconds"] == pytest.approx(0.1)
        assert "job" not in SPAN_STAGES  # roots stay out of histograms

    def test_coverage_fraction_is_union_of_children(self):
        spans = [
            span_dict("job", "t1", "root", None, 0.0, 10.0),
            span_dict("a", "t1", "a", "root", 0.0, 4.0),
            span_dict("b", "t1", "b", "root", 2.0, 6.0),
            span_dict("c", "t1", "c", "root", 8.0, 9.0),
        ]
        assert coverage_fraction(spans, "root") == pytest.approx(0.7)
        assert coverage_fraction([], None) == 0.0


# ----------------------------------------------------------------------
# Metrics: render → strict parse round trip
# ----------------------------------------------------------------------
class TestMetrics:
    def test_round_trip_through_strict_parser(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "Jobs accepted.")
        depth = registry.gauge("queue_depth", "Queued jobs.")
        lat = registry.histogram("stage_seconds", "Per-stage seconds.")
        jobs.inc(klass="interactive")
        depth.set(3, klass="batch")
        lat.observe(0.003, stage="staging")
        lat.observe(0.2, stage="staging")
        families = parse_prometheus(registry.render())
        assert families["jobs_total"]["type"] == "counter"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["stage_seconds"]["samples"]
        }
        count_key = ("stage_seconds_count", (("stage", "staging"),))
        assert samples[count_key] == 2
        inf_key = (
            "stage_seconds_bucket",
            (("le", "+Inf"), ("stage", "staging")),
        )
        assert samples[inf_key] == 2  # +Inf bucket == _count

    def test_empty_instruments_render_zero_samples(self):
        registry = MetricsRegistry()
        registry.counter("nothing_total", "Never incremented.")
        registry.histogram("quiet_seconds", "Never observed.")
        families = parse_prometheus(registry.render())
        assert families["nothing_total"]["samples"] == [
            ("nothing_total", {}, 0.0)
        ]

    @pytest.mark.parametrize("bad", [
        "",
        "jobs_total 1\n",                      # sample without HELP/TYPE
        "# HELP a b\n# TYPE a counter\na 1",   # missing trailing newline
        "# HELP a b\n# TYPE a counter\n\na 1\n",  # blank line
        "# HELP a b\n# TYPE a counter\n",      # family with no samples
    ])
    def test_parser_rejects_malformed_expositions(self, bad):
        with pytest.raises(ValidationError):
            parse_prometheus(bad)

    def test_chrome_validator_rejects_empty_documents(self):
        with pytest.raises(ValidationError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValidationError):
            validate_chrome_trace([1, 2])


# ----------------------------------------------------------------------
# In-process purity: tracing must not change the answer
# ----------------------------------------------------------------------
class TestInProcessTracing:
    def run_once(self, trace):
        config = EngineConfig(backend="vector", trace=trace)
        request = SynthesisRequest(
            spec=INTRO_SPEC, cost_fn=CostFunction.uniform(), config=config
        )
        return Session(config).synthesize(request)

    def test_trace_off_is_bit_identical_with_zero_spans(self):
        traced = self.run_once(True)
        plain = self.run_once(False)
        assert "trace" not in plain.extra
        assert traced.extra["trace"]["spans"]
        a, b = traced.to_dict(), plain.to_dict()
        for doc in (a, b):
            doc.pop("elapsed_seconds", None)
            doc.pop("extra", None)
        assert a == b

    def test_pool_worker_joins_the_session_trace(self):
        wire = WireRequest(
            spec=INTRO_SPEC,
            config=EngineConfig(backend="vector", trace=True),
        )
        with ServiceClient(workers=1) as client:
            result = client.synthesize(wire)
        trace = result.extra["trace"]
        processes = {span["process"] for span in trace["spans"]}
        assert any(p.startswith("pool-worker-") for p in processes)
        assert "pool" in processes
        assert len({span["trace_id"] for span in trace["spans"]}) == 1
        names = {span["name"] for span in trace["spans"]}
        assert "worker-job" in names and "queue-wait" in names


# ----------------------------------------------------------------------
# End to end over HTTP (one server per module, one worker per lane)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = tmp_path_factory.mktemp("obs-server-store")
    with SynthesisServer(
        store_dir=str(store),
        interactive_workers=1,
        batch_workers=1,
        per_worker_depth=2,
    ) as running:
        yield running


@pytest.fixture()
def client(server):
    with HttpServiceClient(server.address) as http:
        yield http


class TestEndToEndTracing:
    def test_one_trace_id_three_processes_high_coverage(self, client):
        wire = WireRequest(spec=DEEP_SPEC, config=EngineConfig())
        job = client.submit(wire)
        done = client.result(job["job_id"], timeout=300)
        assert done["trace_id"]

        doc = client.trace(job["job_id"])
        spans = doc["spans"]
        assert doc["trace_id"] == done["trace_id"]
        # One trace id, across at least three OS processes.
        assert {s["trace_id"] for s in spans} == {doc["trace_id"]}
        processes = {s["process"] for s in spans}
        assert "server" in processes and "pool" in processes
        assert any(p.startswith("pool-worker-") for p in processes)
        assert len(processes) >= 3

        # Spans are well-formed: monotonic, and nested inside their
        # parents (epoch stamps from one machine; small slack for the
        # parent-side bookkeeping done on other threads).
        by_id = {s["span_id"]: s for s in spans}
        for span in spans:
            assert span["end_s"] >= span["start_s"]
            parent = by_id.get(span["parent_id"])
            if parent is not None:
                assert span["start_s"] >= parent["start_s"] - 0.05
                assert span["end_s"] <= parent["end_s"] + 0.05

        # The root job span is covered ≥ 90% by its children.
        root = by_id[doc["root_span_id"]]
        assert root["name"] == "job" and root["parent_id"] is None
        assert coverage_fraction(spans, doc["root_span_id"]) >= 0.90

        # The exported document loads as Chrome trace JSON.
        summary = validate_chrome_trace(doc["chrome_trace"])
        assert summary["trace_ids"] == [doc["trace_id"]]
        assert summary["processes"] >= 3

        # Deep metrics came out the other side: stage histograms with
        # real observations, on a page the strict parser accepts.
        families = parse_prometheus(client.metrics())
        stage_counts = {
            labels["stage"]: value
            for name, labels, value in
            families["repro_stage_seconds"]["samples"]
            if name == "repro_stage_seconds_count"
        }
        for stage in ("queue_wait", "staging", "level_build", "store_write"):
            assert stage_counts.get(stage, 0) >= 1, stage
        assert "repro_plane_cache_hit_rate" in families
        assert "repro_checkpoint_store_bytes" in families

    def test_trace_opt_out_yields_no_trace(self, client):
        wire = WireRequest(
            spec=Spec(["111", "11"], ["1", ""]), config=EngineConfig()
        )
        payload = wire.to_json_dict()
        payload["trace"] = False
        job = client._json_call("POST", "/jobs", payload)
        done = client.result(job["job_id"], timeout=120)
        assert "trace_id" not in done
        result = done["result"]
        assert "trace" not in (result.get("extra") or {})
        with pytest.raises(ServerError) as err:
            client.trace(job["job_id"])
        assert err.value.status == 404

    def test_keep_alive_reuses_one_connection(self, client, server):
        assert client._connection is None
        client.healthz()
        first = client._connection
        assert first is not None
        job = client.submit(
            WireRequest(spec=Spec(["0", "00"], ["1"]), config=EngineConfig())
        )
        client.result(job["job_id"], timeout=120)
        client.metrics()
        # Submit, every status poll, and the metrics scrape all rode the
        # same TCP connection.
        assert client._connection is first

        # A peer that asks for Connection: close gets one.
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            head = sock.recv(65536).decode("latin-1", "replace")
        assert head.split()[1] == "200"
        assert "connection: close" in head.lower()

    def test_healthz_degrades_on_dead_lane(self, client, server,
                                           monkeypatch):
        lane = server.lanes[CLASS_INTERACTIVE]
        real = lane.liveness()
        assert real["alive"] >= 1  # healthy baseline

        dead = dict(real)
        dead["alive"] = 0
        dead["last_quarantine_at"] = 1700000000.0
        monkeypatch.setattr(lane, "liveness", lambda: dead)
        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["lanes"][CLASS_INTERACTIVE]["degraded"] is True
        assert health["lanes"]["batch"]["degraded"] is False
        assert health["last_quarantine_at"] == 1700000000.0

    def test_trace_cli_writes_loadable_chrome_json(self, client, server,
                                                   tmp_path, capsys):
        from repro.cli import main

        job = client.submit(
            WireRequest(spec=Spec(["00", "000"], ["", "0", "1"]),
                        config=EngineConfig())
        )
        client.result(job["job_id"], timeout=120)
        out = tmp_path / "trace.json"
        code = main(["trace", job["job_id"],
                     "--server", server.address, "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "trace %s" % job["trace_id"] in printed  # the waterfall
        assert "perfetto" in printed.lower()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(doc)["trace_ids"] == [job["trace_id"]]

    def test_job_document_exposes_trace_id_while_running(self, client):
        job = client.submit(
            WireRequest(spec=Spec(["01", "011"], ["", "1"]),
                        config=EngineConfig())
        )
        assert job["trace_id"]
        done = client.result(job["job_id"], timeout=120)
        assert done["trace_id"] == job["trace_id"]
