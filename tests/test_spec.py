"""Specification (Def. 3.1) tests."""

import pytest

from repro.errors import InvalidSpecError
from repro.regex.parser import parse
from repro.spec import Spec


class TestConstruction:
    def test_dedup_and_sort(self):
        spec = Spec(["10", "0", "10"], ["1"])
        assert spec.positive == ("0", "10")
        assert spec.negative == ("1",)

    def test_overlap_rejected(self):
        with pytest.raises(InvalidSpecError):
            Spec(["0"], ["0", "1"])

    def test_alphabet_inferred(self):
        spec = Spec(["ab"], ["c"])
        assert spec.alphabet == ("a", "b", "c")

    def test_alphabet_explicit_widening(self):
        spec = Spec(["0"], [], alphabet=("0", "1"))
        assert spec.alphabet == ("0", "1")

    def test_alphabet_must_cover_examples(self):
        with pytest.raises(InvalidSpecError):
            Spec(["2"], [], alphabet=("0", "1"))

    def test_alphabet_duplicates_rejected(self):
        with pytest.raises(InvalidSpecError):
            Spec(["0"], [], alphabet=("0", "0"))

    def test_empty_spec(self):
        spec = Spec([], [])
        assert spec.n_examples == 0
        assert spec.alphabet == ()

    def test_value_equality(self):
        assert Spec(["0", "1"], []) == Spec(["1", "0"], [])


class TestObservations:
    def test_n_examples_and_all_words(self):
        spec = Spec(["0"], ["1", "11"])
        assert spec.n_examples == 3
        assert spec.all_words == ("0", "1", "11")

    def test_is_satisfied_by(self):
        spec = Spec(["0", "00"], ["1", ""])
        assert spec.is_satisfied_by(parse("00*"))
        assert not spec.is_satisfied_by(parse("0*"))   # accepts ε ∈ N
        assert not spec.is_satisfied_by(parse("0"))    # misses 00 ∈ P

    def test_errors_of(self):
        spec = Spec(["0", "00"], ["1", ""])
        assert spec.errors_of(parse("00*")) == 0
        assert spec.errors_of(parse("0*")) == 1   # wrongly accepts ε
        assert spec.errors_of(parse("∅")) == 2    # misses both positives


class TestSerialisation:
    def test_json_roundtrip(self):
        spec = Spec(["10", ""], ["0"], alphabet=("0", "1"))
        assert Spec.from_json(spec.to_json()) == spec

    def test_dict_roundtrip(self):
        spec = Spec(["a"], ["b"])
        assert Spec.from_dict(spec.to_dict()) == spec

    def test_str_shows_epsilon(self):
        text = str(Spec([""], ["0"]))
        assert "ε" in text
