"""OnTheFly-mode tests (§3): capacity limits, graceful degradation,
preserved minimality, and the out-of-memory verdict."""

import pytest

from repro import CostFunction, Spec, synthesize


@pytest.fixture
def medium_spec():
    return Spec(
        positive=["10", "101", "100", "1010", "1011"],
        negative=["", "0", "1", "00", "11", "010"],
    )


@pytest.mark.parametrize("backend", ["scalar", "vector"])
class TestCapacitySweep:
    def test_unbounded_reference(self, medium_spec, backend):
        result = synthesize(medium_spec, backend=backend)
        assert result.found
        self.reference_cost = result.cost

    def test_generous_capacity_still_succeeds(self, medium_spec, backend):
        reference = synthesize(medium_spec, backend=backend)
        capped = synthesize(medium_spec, backend=backend,
                            max_cache_size=reference.unique_cs)
        assert capped.found
        assert capped.cost == reference.cost

    def test_moderate_capacity_preserves_minimality(self, medium_spec, backend):
        """If a capped run still succeeds, its cost must equal the
        unbounded optimum — OnTheFly never compromises minimality."""
        reference = synthesize(medium_spec, backend=backend)
        for capacity in (400, 150, 60, 25):
            capped = synthesize(medium_spec, backend=backend,
                                max_cache_size=capacity)
            assert capped.status in ("success", "oom")
            if capped.found:
                assert capped.cost == reference.cost
                assert medium_spec.is_satisfied_by(capped.regex)

    def test_tiny_capacity_reports_oom(self, medium_spec, backend):
        result = synthesize(medium_spec, backend=backend, max_cache_size=5)
        assert result.status == "oom"
        assert result.regex is None

    def test_cache_never_exceeds_capacity(self, medium_spec, backend):
        for capacity in (10, 50, 200):
            result = synthesize(medium_spec, backend=backend,
                                max_cache_size=capacity)
            assert result.unique_cs <= capacity


class TestOnTheFlyWindow:
    def test_expensive_constructors_extend_the_window(self):
        """§3: 'if the cost of all regular constructors is > 55, then the
        algorithm needs only CSs of target cost minus 55' — with
        expensive constructors OnTheFly survives more levels past the
        point where the cache froze, so an expensive-constructor run can
        succeed at a capacity where a cheap-constructor run cannot."""
        spec = Spec(["10", "101", "100"], ["", "0", "1", "11"])
        cheap = CostFunction.uniform()
        pricey = CostFunction.from_tuple((1, 9, 9, 9, 9))
        reference = synthesize(spec, cost_fn=pricey)
        assert reference.found
        capped = synthesize(spec, cost_fn=pricey,
                            max_cache_size=reference.unique_cs // 2)
        # min_constructor_cost = 9 gives a 9-level OnTheFly window.
        assert capped.status in ("success", "oom")
        assert pricey.min_constructor_cost == 9
        assert cheap.min_constructor_cost == 1

    def test_statistics_in_oom_runs(self):
        spec = Spec(["0110", "1001"], ["", "0", "1", "01", "10", "11"])
        result = synthesize(spec, max_cache_size=6)
        assert result.status == "oom"
        # It still did work before giving up, and the cache respected
        # its bound.
        assert result.generated > 0
        assert result.unique_cs <= 6
