"""Reconstructed AlphaRegex-suite tests."""

import pytest

from repro.regex.derivatives import matches
from repro.regex.parser import parse
from repro.suites.alpharegex_suite import (
    ALPHAREGEX_TASKS,
    easy_tasks,
    task_by_name,
)


class TestSuiteShape:
    def test_twenty_five_tasks(self):
        assert len(ALPHAREGEX_TASKS) == 25
        assert [t.number for t in ALPHAREGEX_TASKS] == list(range(1, 26))

    def test_lookup(self):
        assert task_by_name("no9").description.startswith("even number")
        with pytest.raises(KeyError):
            task_by_name("no99")

    def test_easy_subset_excludes_hard(self):
        easy = easy_tasks()
        assert all(not t.hard for t in easy)
        assert len(easy) == 25 - 7


class TestTargetsMatchPredicates:
    """Every task's documented target regex agrees with its predicate on
    all binary words up to length 7 — the suite is internally coherent."""

    @pytest.mark.parametrize("task", ALPHAREGEX_TASKS,
                             ids=[t.name for t in ALPHAREGEX_TASKS])
    def test_target_agrees(self, task):
        import itertools

        target = parse(task.target)
        for length in range(0, 8):
            for letters in itertools.product("01", repeat=length):
                word = "".join(letters)
                assert matches(target, word) == task.predicate(word), word


class TestBuildSpec:
    def test_counts_and_exclusion_of_epsilon(self):
        spec = task_by_name("no1").build_spec(n_pos=8, n_neg=8)
        assert len(spec.positive) == 8
        assert len(spec.negative) == 8
        assert "" not in spec.all_words

    def test_epsilon_opt_in(self):
        spec = task_by_name("no5").build_spec(include_epsilon=True)
        assert "" in spec.positive  # even length includes ε

    def test_labels_respect_predicate(self):
        task = task_by_name("no11")
        spec = task.build_spec()
        assert all(task.predicate(w) for w in spec.positive)
        assert not any(task.predicate(w) for w in spec.negative)

    def test_deterministic(self):
        task = task_by_name("no2")
        assert task.build_spec() == task.build_spec()

    def test_infeasible_counts_raise(self):
        with pytest.raises(ValueError):
            task_by_name("no1").build_spec(n_pos=10_000, max_len=3)

    def test_all_tasks_build(self):
        for task in ALPHAREGEX_TASKS:
            spec = task.build_spec(n_pos=6, n_neg=6, max_len=7)
            assert spec.n_examples == 12
