"""Intra-query sharded level construction (repro.core.shard).

Three layers of evidence:

* the partition plan is a pure function — unit tests pin its
  determinism, balance, contiguity and the degenerate cases (one
  shard, more shards than units, zero-weight groups);
* the layout/ordinal bookkeeping agrees with a brute-force enumeration
  of the pairings in serial candidate order;
* sharded engines (``shard_workers >= 2``) produce **bit-identical**
  enumeration-visible state — cache rows, provenance, ``generated``
  counters, per-level stats, solution, status — versus
  ``shard_workers=1`` on both backends, across success, not-found,
  budget-truncated and error-tolerant runs, and through the session
  API's ``EngineConfig.shard_workers``.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro import EngineConfig, Session, Spec, SynthesisRequest
from repro.core.cache import IntCache
from repro.core.engine import cs_solves
from repro.core.bitops import int_to_lanes, ints_to_matrix, lanes_to_int
from repro.core.scalar_engine import ScalarEngine
from repro.core.shard import (
    LaneMatcher,
    PairGroupLayout,
    plan_shards,
    total_pair_candidates,
)
from repro.core.vector_engine import VectorEngine
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe
from repro.regex.cost import CostFunction

ENGINES = {"scalar": ScalarEngine, "vector": VectorEngine}

#: The wide multi-lane task also used by the kernel benchmarks.
WIDE_SPEC = Spec(
    positive=["0110100101", "1010010110", "01"],
    negative=["", "0", "1", "11", "10", "0011001100"],
)

SMALL_SPEC = Spec(positive=["10", "1010", "101010"], negative=["", "1", "0"])


# ----------------------------------------------------------------------
# The partition planner (pure function)
# ----------------------------------------------------------------------
class TestPlanShards:
    def test_one_shard_covers_everything(self):
        plan = plan_shards([3, 1, 4, 1, 5], 1)
        assert len(plan) == 1
        assert (plan[0].unit_lo, plan[0].unit_hi) == (0, 5)
        assert plan[0].ordinal_lo == 0
        assert plan[0].candidates == 14

    def test_more_shards_than_units(self):
        plan = plan_shards([2, 3], 5)
        assert len(plan) == 5
        # Contiguous cover with empty trailing ranges.
        assert plan[0].unit_lo == 0
        assert plan[-1].unit_hi == 2
        for before, after in zip(plan, plan[1:]):
            assert before.unit_hi == after.unit_lo
        assert sum(r.candidates for r in plan) == 5
        assert sum(1 for r in plan if r.unit_lo == r.unit_hi) >= 3

    def test_empty_weights(self):
        plan = plan_shards([], 3)
        assert [(r.unit_lo, r.unit_hi, r.candidates) for r in plan] == [
            (0, 0, 0),
            (0, 0, 0),
            (0, 0, 0),
        ]

    def test_zero_total_weight(self):
        plan = plan_shards([0, 0, 0], 2)
        assert len(plan) == 2
        assert plan[0].unit_hi == 3
        assert all(r.candidates == 0 for r in plan)

    def test_contiguity_offsets_and_balance(self):
        rng = np.random.RandomState(7)
        for _ in range(25):
            weights = rng.randint(0, 50, size=rng.randint(1, 40))
            n_shards = int(rng.randint(1, 9))
            plan = plan_shards(weights, n_shards)
            assert len(plan) == n_shards
            total = int(weights.sum())
            cum = np.concatenate([[0], np.cumsum(weights)])
            assert plan[0].unit_lo == 0
            assert plan[-1].unit_hi == len(weights)
            position = 0
            for shard in plan:
                assert shard.unit_lo == position
                position = shard.unit_hi
                assert shard.ordinal_lo == cum[shard.unit_lo]
                assert shard.candidates == cum[shard.unit_hi] - cum[shard.unit_lo]
            assert sum(r.candidates for r in plan) == total
            if total and len(weights) >= n_shards:
                ideal = total / n_shards
                w_max = int(weights.max())
                for shard in plan:
                    assert shard.candidates <= ideal + w_max

    def test_deterministic(self):
        weights = [5, 1, 7, 3, 3, 9, 2]
        assert plan_shards(weights, 3) == plan_shards(weights, 3)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards([1, 2], 0)


def brute_force_pairs(pairings):
    """Every (left, right) operand pair in serial enumeration order."""
    out = []
    for (l0, l1), (r0, r1), triangular in pairings:
        for i in range(l0, l1):
            j_start = i + 1 if triangular else r0
            for j in range(j_start, r1):
                out.append((i, j))
    return out


class TestPairGroupLayout:
    PAIRINGS = [
        ([((2, 6), (9, 14), False)]),
        ([((3, 9), (3, 9), True)]),
        ([((0, 4), (7, 9), False), ((4, 7), (4, 7), True), ((7, 8), (0, 4), False)]),
        ([((5, 5), (0, 3), False), ((0, 2), (2, 9), False)]),
    ]

    @pytest.mark.parametrize("pairings", PAIRINGS)
    def test_total_matches_brute_force(self, pairings):
        layout = PairGroupLayout(pairings)
        pairs = brute_force_pairs(pairings)
        assert layout.total == len(pairs)
        assert total_pair_candidates(pairings) == len(pairs)

    @pytest.mark.parametrize("pairings", PAIRINGS)
    def test_slices_cover_ordinals_exactly(self, pairings):
        layout = PairGroupLayout(pairings)
        pairs = brute_force_pairs(pairings)
        for n_shards in (1, 2, 3, 5):
            plan = plan_shards(layout.weights, n_shards)
            seen = []
            for shard in plan:
                ordinal = shard.ordinal_lo
                for index, row_lo, row_hi, slice_ord in layout.slices(
                    shard.unit_lo, shard.unit_hi
                ):
                    assert slice_ord == ordinal
                    left, right, triangular = layout.pairings[index]
                    for i in range(row_lo, row_hi):
                        j_start = i + 1 if triangular else right[0]
                        for j in range(j_start, right[1]):
                            assert pairs[ordinal] == (i, j)
                            seen.append(ordinal)
                            ordinal += 1
                assert ordinal == shard.ordinal_lo + shard.candidates
            assert seen == list(range(len(pairs)))


class TestLaneMatcher:
    def test_matches_scalar_predicate(self):
        rng = np.random.RandomState(3)
        lanes = 3
        pos = int_to_lanes(rng.randint(0, 1 << 30), lanes)
        neg = int_to_lanes(rng.randint(0, 1 << 30) << 60, lanes)
        pos_int = lanes_to_int(pos)
        neg_int = lanes_to_int(neg) & ~pos_int
        neg = int_to_lanes(neg_int, lanes)
        cs_ints = [int(x) for x in rng.randint(0, 1 << 62, size=64)]
        rows = ints_to_matrix(cs_ints, lanes)
        for max_errors in (0, 1, 3):
            matcher = LaneMatcher(pos, neg, max_errors)
            flags = matcher.flags(rows)
            for cs, flag in zip(cs_ints, flags):
                assert bool(flag) == cs_solves(cs, pos_int, neg_int, max_errors)

    def test_all_zero_masks_accept_everything(self):
        lanes = 2
        matcher = LaneMatcher(
            np.zeros(lanes, dtype=np.uint64),
            np.zeros(lanes, dtype=np.uint64),
            0,
        )
        rows = ints_to_matrix([0, 5, 1 << 100], lanes)
        assert matcher.flags(rows).all()


# ----------------------------------------------------------------------
# End-to-end bit-identity
# ----------------------------------------------------------------------
def run_engine(backend, spec, shard_workers, max_cost=40, **kwargs):
    universe = Universe(spec.all_words, alphabet=spec.alphabet)
    guide = GuideTable(universe)
    engine = ENGINES[backend](
        spec,
        CostFunction.uniform(),
        universe,
        guide,
        shard_workers=shard_workers,
        **kwargs,
    )
    engine.shard_min_candidates = 0  # shard even tiny levels in tests
    status = engine.run(max_cost)
    return engine, status


def engine_state(engine, status):
    """Everything enumeration-visible, as comparable plain data."""
    cache = engine.cache
    if isinstance(cache, IntCache):
        rows = list(cache.cs_list)
    else:
        rows = [lanes_to_int(row) for row in cache.matrix[: len(cache)]]
    return {
        "status": status,
        "generated": engine.generated,
        "levels_built": engine.levels_built,
        "level_stats": engine.level_stats,
        "solution": engine.solution,
        "solution_cost": engine.solution_cost,
        "rows": rows,
        "provenance": list(cache.provenance),
    }


@pytest.mark.parametrize("backend", ["scalar", "vector"])
@pytest.mark.parametrize("shard_workers", [2, 3])
class TestShardedBitIdentity:
    def test_success_run(self, backend, shard_workers):
        serial, s_status = run_engine(backend, WIDE_SPEC, 1)
        sharded, p_status = run_engine(backend, WIDE_SPEC, shard_workers)
        assert s_status == "success"
        assert engine_state(serial, s_status) == engine_state(sharded, p_status)

    def test_not_found_run(self, backend, shard_workers):
        serial, s_status = run_engine(backend, WIDE_SPEC, 1, max_cost=8)
        sharded, p_status = run_engine(backend, WIDE_SPEC, shard_workers, max_cost=8)
        assert s_status == "not_found"
        assert engine_state(serial, s_status) == engine_state(sharded, p_status)

    def test_budget_truncated_run(self, backend, shard_workers):
        # The budget lands inside a sharded pair group, so the exact
        # stop ordinal (not just the group boundary) must match.
        serial, s_status = run_engine(backend, WIDE_SPEC, 1, max_generated=15000)
        sharded, p_status = run_engine(
            backend, WIDE_SPEC, shard_workers, max_generated=15000
        )
        assert s_status == "budget"
        assert engine_state(serial, s_status) == engine_state(sharded, p_status)

    def test_error_tolerant_run(self, backend, shard_workers):
        serial, s_status = run_engine(backend, WIDE_SPEC, 1, allowed_error=0.2)
        sharded, p_status = run_engine(
            backend, WIDE_SPEC, shard_workers, allowed_error=0.2
        )
        assert s_status == "success"
        assert engine_state(serial, s_status) == engine_state(sharded, p_status)

    def test_small_spec_run(self, backend, shard_workers):
        serial, s_status = run_engine(backend, SMALL_SPEC, 1)
        sharded, p_status = run_engine(backend, SMALL_SPEC, shard_workers)
        assert engine_state(serial, s_status) == engine_state(sharded, p_status)


class TestShardingGates:
    def test_serial_engine_never_spawns(self):
        engine, _ = run_engine("vector", SMALL_SPEC, 1)
        assert engine._shard_coordinator is None

    def test_workers_closed_after_run(self):
        engine, status = run_engine("vector", WIDE_SPEC, 2)
        assert status == "success"
        assert engine._shard_coordinator is None
        assert not [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("repro-shard")
        ]

    def test_bounded_cache_falls_back_to_serial(self):
        serial, s_status = run_engine("vector", WIDE_SPEC, 1, max_cache_size=4000)
        gated, g_status = run_engine("vector", WIDE_SPEC, 2, max_cache_size=4000)
        assert gated._shard_coordinator is None  # OnTheFly stays serial
        assert engine_state(serial, s_status) == engine_state(gated, g_status)

    def test_no_dedupe_ablation_falls_back_to_serial(self):
        gated, _ = run_engine("vector", SMALL_SPEC, 2, check_uniqueness=False)
        assert gated._shard_coordinator is None

    def test_min_candidates_threshold(self):
        universe = Universe(SMALL_SPEC.all_words)
        engine = VectorEngine(
            SMALL_SPEC,
            CostFunction.uniform(),
            universe,
            GuideTable(universe),
            shard_workers=2,
        )
        # Default threshold: the tiny spec's levels never reach it.
        engine.run(12)
        assert engine._shard_coordinator is None

    def test_invalid_shard_workers(self):
        universe = Universe(SMALL_SPEC.all_words)
        with pytest.raises(ValueError, match="shard_workers"):
            VectorEngine(
                SMALL_SPEC,
                CostFunction.uniform(),
                universe,
                GuideTable(universe),
                shard_workers=0,
            )


class TestSessionPlumbing:
    def test_config_shard_workers_bit_identical(self, monkeypatch):
        import repro.core.engine as engine_mod

        request = SynthesisRequest.of(WIDE_SPEC)
        serial = Session(EngineConfig(backend="vector")).synthesize(request)
        # Force even the small wide-spec levels through the shard pool.
        monkeypatch.setattr(engine_mod, "DEFAULT_SHARD_MIN_CANDIDATES", 0)
        session = Session(EngineConfig(backend="vector", shard_workers=2))
        engine = session.make_engine(request)
        assert engine.shard_workers == 2
        assert engine.shard_min_candidates == 0
        sharded = session.synthesize(request)
        assert (serial.status, serial.regex_str, serial.cost) == (
            sharded.status,
            sharded.regex_str,
            sharded.cost,
        )
        assert serial.generated == sharded.generated
        assert serial.unique_cs == sharded.unique_cs

    def test_batched_sweep_shards_bit_identically(self, monkeypatch):
        # A shared multi-spec sweep runs an enumeration-only engine
        # (unsatisfiable masks); sharding it must not change any
        # per-request answer.
        import repro.core.engine as engine_mod

        words = sorted(WIDE_SPEC.all_words)
        requests = [
            SynthesisRequest(spec=Spec(words[k::2], words[1 - k :: 2]))
            for k in range(2)
        ]
        serial = Session(EngineConfig(backend="vector")).synthesize_many(requests)
        monkeypatch.setattr(engine_mod, "DEFAULT_SHARD_MIN_CANDIDATES", 0)
        session = Session(EngineConfig(backend="vector", shard_workers=2))
        sharded = session.synthesize_many(requests)
        assert session.stats.batch_groups == 1
        assert sharded[0].extra["sharded_emits"] > 0
        for a, b in zip(serial, sharded):
            assert (a.status, a.regex_str, a.cost, a.generated) == (
                b.status,
                b.regex_str,
                b.cost,
                b.generated,
            )

    def test_pool_job_shards_inside_its_worker(self, monkeypatch):
        # The service pool's workers are non-daemonic so a pooled job
        # with shard_workers >= 2 really fans out inside its worker;
        # Job.slots reserves the matching scheduler capacity.
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("threshold monkeypatch needs fork inheritance")
        import repro.core.engine as engine_mod
        from repro.service import ServiceClient

        serial = Session(EngineConfig(backend="vector")).synthesize(WIDE_SPEC)
        monkeypatch.setattr(engine_mod, "DEFAULT_SHARD_MIN_CANDIDATES", 0)
        config = EngineConfig(backend="vector", shard_workers=2)
        with ServiceClient(workers=1, config=config,
                           per_worker_depth=2) as client:
            handle = client.submit(SynthesisRequest.of(WIDE_SPEC))
            assert handle._job.slots == 2
            result = handle.result(timeout=120)
        assert result.extra["sharded_emits"] > 0
        assert (result.status, result.regex_str, result.cost,
                result.generated) == (serial.status, serial.regex_str,
                                      serial.cost, serial.generated)
