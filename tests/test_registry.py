"""Backend-registry tests: name resolution, aliases, duplicate
rejection, capabilities, and the legacy ``BACKENDS`` views."""

import pytest

from repro.api import BackendRegistry, default_registry
from repro.core.scalar_engine import ScalarEngine
from repro.core.synthesizer import BACKENDS, BACKEND_ALIASES, make_engine
from repro.core.vector_engine import VectorEngine
from repro.regex.cost import CostFunction
from repro.spec import Spec


class TestResolution:
    def test_canonical_names_resolve(self):
        registry = default_registry()
        assert registry.resolve("scalar").factory is ScalarEngine
        assert registry.resolve("vector").factory is VectorEngine

    def test_every_alias_resolves(self):
        registry = default_registry()
        assert BACKEND_ALIASES, "legacy alias view must not be empty"
        for alias, canonical in BACKEND_ALIASES.items():
            info = registry.resolve(alias)
            assert info.name == canonical
            assert registry.canonical(alias) == canonical

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            default_registry().resolve("quantum")

    def test_unknown_name_lists_accepted_spellings(self):
        with pytest.raises(ValueError) as excinfo:
            default_registry().resolve("nope")
        message = str(excinfo.value)
        for name in ("scalar", "vector", "cpu", "gpu"):
            assert name in message

    def test_contains_and_names(self):
        registry = default_registry()
        assert "scalar" in registry and "gpu" in registry
        assert "nope" not in registry
        assert registry.names() == ("scalar", "vector")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = BackendRegistry()
        registry.register("engine", ScalarEngine)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("engine", VectorEngine)

    def test_duplicate_alias_rejected(self):
        registry = BackendRegistry()
        registry.register("one", ScalarEngine, aliases=("fast",))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("two", VectorEngine, aliases=("fast",))

    def test_name_colliding_with_alias_rejected(self):
        registry = BackendRegistry()
        registry.register("one", ScalarEngine, aliases=("fast",))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("fast", VectorEngine)

    def test_replace_overrides(self):
        registry = BackendRegistry()
        registry.register("engine", ScalarEngine)
        registry.register("engine", VectorEngine, replace=True)
        assert registry.resolve("engine").factory is VectorEngine

    def test_registered_backend_is_usable(self):
        registry = BackendRegistry()
        registry.register("mine", ScalarEngine, capabilities=("batch-serving",))
        info = registry.resolve("mine")
        assert info.supports("batch-serving")
        assert not info.supports("vectorised")


class TestCapabilities:
    def test_vector_is_vectorised(self):
        assert default_registry().resolve("vector").supports("vectorised")
        assert not default_registry().resolve("scalar").supports("vectorised")

    def test_both_engines_support_batch_serving(self):
        for name in ("scalar", "vector"):
            assert default_registry().resolve(name).supports("batch-serving")

    def test_guide_table_ablation_is_scalar_only(self):
        assert default_registry().resolve("scalar").supports(
            "guide-table-ablation"
        )
        assert not default_registry().resolve("vector").supports(
            "guide-table-ablation"
        )


class TestLegacyViews:
    def test_backends_view_matches_registry(self):
        assert BACKENDS == default_registry().backends()
        assert set(BACKENDS) == {"scalar", "vector"}

    def test_aliases_view_matches_registry(self):
        assert BACKEND_ALIASES == default_registry().aliases()
        assert BACKEND_ALIASES["cpu"] == "scalar"
        assert BACKEND_ALIASES["gpu"] == "vector"

    def test_make_engine_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_engine(Spec(["0"], ["1"]), CostFunction.uniform(),
                        backend="tpu")
