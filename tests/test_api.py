"""Public-API surface tests: exports, version, and the documentation
quality gate (every public item carries a docstring)."""

import importlib
import inspect
import pkgutil


import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points(self):
        assert callable(repro.synthesize)
        assert callable(repro.parse)
        assert callable(repro.to_string)
        result = repro.synthesize(repro.Spec(["0"], ["1"]))
        assert result.found

    def test_subpackage_all_resolve(self):
        for module_name in ("repro.regex", "repro.semiring", "repro.language",
                            "repro.core", "repro.baselines", "repro.suites",
                            "repro.eval"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), "%s.%s" % (module_name, name)


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in _public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_is_documented(self):
        undocumented = []
        for module in _public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-exports are documented at their source
                if not (obj.__doc__ or "").strip():
                    undocumented.append("%s.%s" % (module.__name__, name))
        assert undocumented == []

    def test_public_methods_are_documented(self):
        undocumented = []
        for module in _public_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if getattr(cls, "__module__", None) != module.__name__:
                    continue
                for meth_name, meth in vars(cls).items():
                    if meth_name.startswith("_"):
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if (meth.__doc__ or "").strip():
                        continue
                    # Overrides inherit the documentation of the method
                    # they implement (e.g. concrete semirings implement
                    # the documented Semiring.add/mul contract).
                    inherited = any(
                        (getattr(base, meth_name, None) is not None
                         and (getattr(base, meth_name).__doc__ or "").strip())
                        for base in cls.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(
                            "%s.%s.%s" % (module.__name__, cls_name, meth_name)
                        )
        assert undocumented == []
