"""Multi-lane coverage: universes wider than 64 bits.

The paper's Table 2 notes that tasks no6/no9 need 128/256-bit CSs, which
the WarpCore build could not handle.  This reproduction supports
arbitrary widths: the scalar engine through Python ints, the vectorised
engine through multiple uint64 lanes.  These tests pin that down.
"""

import pytest

from repro import Spec, synthesize
from repro.core.bitops import lanes_to_int
from repro.core.synthesizer import make_engine
from repro.language.universe import Universe
from repro.regex.cost import CostFunction

# Two long heterogeneous strings: ic(P ∪ N) has > 64 words.
WIDE_SPEC = Spec(
    positive=["0110100101", "1010010110"],
    negative=["", "0", "1", "0011001100"],
)


@pytest.fixture(scope="module")
def wide_universe():
    return Universe(WIDE_SPEC.all_words)


class TestWideUniverse:
    def test_universe_needs_multiple_lanes(self, wide_universe):
        assert wide_universe.n_words > 64
        assert wide_universe.lanes >= 2
        assert wide_universe.padded_bits in (128, 256)

    def test_engines_agree_on_wide_universe(self):
        cost_fn = CostFunction.uniform()
        scalar = make_engine(WIDE_SPEC, cost_fn, backend="scalar",
                             max_generated=30_000)
        vector = make_engine(WIDE_SPEC, cost_fn, backend="vector",
                             max_generated=30_000)
        scalar.run(40)
        vector.run(40)
        assert scalar.status == vector.status
        assert scalar.generated == vector.generated
        unpacked = [
            lanes_to_int(vector.cache.matrix[i])
            for i in range(len(vector.cache))
        ]
        assert scalar.cache.cs_list == unpacked

    def test_synthesis_succeeds_beyond_64_bits(self):
        # An easy target over a wide universe: "contains 00"-ish spec
        # whose solution is found quickly despite 2-lane CSs.
        spec = Spec(
            positive=["0110100101", "1010010110", "01"],
            negative=["", "0", "1", "11", "10", "0011001100"],
        )
        for backend in ("scalar", "vector"):
            result = synthesize(spec, backend=backend,
                                max_generated=300_000)
            assert result.found, backend
            assert spec.is_satisfied_by(result.regex)
            assert result.padded_bits >= 128

    def test_wide_masks_roundtrip(self, wide_universe):
        from repro.core.bitops import int_to_lanes

        cs = wide_universe.cs_of_predicate(lambda w: len(w) % 2 == 0)
        assert cs >> 64 != 0  # genuinely uses high lanes
        assert lanes_to_int(int_to_lanes(cs, wide_universe.lanes)) == cs
