"""Language-cache introspection tests."""

import pytest

from repro.core.synthesizer import make_engine
from repro.core.trace import cache_rows, level_growth_table, render_cache
from repro.regex.cost import CostFunction
from repro.regex.derivatives import matches
from repro.regex.parser import parse
from repro.spec import Spec


@pytest.fixture(params=["scalar", "vector"])
def engine(request, example36_spec):
    engine = make_engine(example36_spec, CostFunction.uniform(),
                         backend=request.param)
    engine.run(20)
    return engine


class TestCacheRows:
    def test_annotated_regex_denotes_row_language(self, engine):
        """The paper's figure property: each row's annotation accepts
        exactly the row's language, restricted to the universe."""
        for row in cache_rows(engine, limit=60):
            regex = parse(row["regex"])
            expected = set(row["words"])
            actual = {
                w for w in engine.universe.words if matches(regex, w)
            }
            assert actual == expected, row["regex"]

    def test_annotation_cost_matches_level(self, engine):
        cost_fn = CostFunction.uniform()
        for row in cache_rows(engine, limit=60):
            assert cost_fn.cost(parse(row["regex"])) == row["cost"]

    def test_costs_non_decreasing(self, engine):
        costs = [row["cost"] for row in cache_rows(engine)]
        assert costs == sorted(costs)

    def test_limit(self, engine):
        assert len(cache_rows(engine, limit=3)) == 3


class TestRenderCache:
    def test_render_contains_universe_and_rows(self, engine):
        text = render_cache(engine, limit=10)
        assert "universe (shortlex)" in text
        assert "ε" in text
        assert "cost" in text
        assert "more rows" in text

    def test_bit_columns_width(self, engine):
        text = render_cache(engine, limit=5)
        data_lines = [l for l in text.splitlines()[2:] if l and "more" not in l]
        for line in data_lines:
            bits = line.split()[0]
            assert len(bits) == engine.universe.n_words


class TestLevelGrowth:
    def test_growth_table_consistency(self, engine):
        table = level_growth_table(engine)
        assert table, "at least one level was built"
        for entry in table:
            assert entry["generated"] >= entry["stored"]
            assert entry["duplicates"] == entry["generated"] - entry["stored"]
            assert 0.0 <= entry["keep_ratio"] <= 1.0

    def test_duplicates_appear_quickly(self):
        """Uniqueness checking must be doing real work by mid-search."""
        spec = Spec(["10", "101", "100"], ["", "0", "1", "11"])
        engine = make_engine(spec, CostFunction.uniform(), backend="vector")
        engine.run(20)
        total_dupes = sum(
            e["duplicates"] for e in level_growth_table(engine)
        )
        assert total_dupes > 0
