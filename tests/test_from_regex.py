"""Tests for deriving specifications from a target regex."""

import pytest
from hypothesis import given, settings

from _fixtures import regexes
from repro import synthesize
from repro.regex.cost import CostFunction
from repro.regex.derivatives import matches
from repro.regex.parser import parse
from repro.suites.from_regex import spec_from_regex


class TestConstruction:
    def test_labels_respect_target(self):
        target = parse("10(0+1)*")
        spec = spec_from_regex(target, "01", n_pos=6, n_neg=6)
        assert all(matches(target, w) for w in spec.positive)
        assert not any(matches(target, w) for w in spec.negative)

    def test_shortlex_prefix_when_unseeded(self):
        spec = spec_from_regex(parse("0*"), "01", n_pos=3, n_neg=3)
        assert spec.positive == ("", "0", "00")
        assert spec.negative == ("1", "01", "10")

    def test_seeded_sampling_is_deterministic(self):
        a = spec_from_regex(parse("(0+1)*1"), "01", seed=4)
        b = spec_from_regex(parse("(0+1)*1"), "01", seed=4)
        assert a == b
        c = spec_from_regex(parse("(0+1)*1"), "01", seed=5)
        assert a != c

    def test_epsilon_exclusion(self):
        spec = spec_from_regex(parse("0*"), "01", n_pos=3, n_neg=3,
                               include_epsilon=False)
        assert "" not in spec.all_words

    def test_unfillable_class_raises(self):
        with pytest.raises(ValueError):
            spec_from_regex(parse("(0+1)*"), "01", n_neg=1)

    def test_ternary_alphabet(self):
        spec = spec_from_regex(parse("a(b+c)*"), "abc", n_pos=5, n_neg=5)
        assert set(spec.alphabet) == {"a", "b", "c"}


class TestRoundTripThroughSynthesis:
    def test_synthesis_recovers_a_consistent_regex(self):
        target = parse("10(0+1)*")
        spec = spec_from_regex(target, "01", n_pos=8, n_neg=8)
        result = synthesize(spec)
        assert result.found
        assert spec.is_satisfied_by(result.regex)

    @given(regexes(max_leaves=4))
    @settings(max_examples=10, deadline=None)
    def test_random_targets_yield_solvable_specs(self, target):
        try:
            spec = spec_from_regex(target, "01", n_pos=3, n_neg=3, max_len=4)
        except ValueError:
            return  # target too universal/empty to label both classes
        result = synthesize(spec, cost_fn=CostFunction.uniform())
        assert result.found
        assert spec.is_satisfied_by(result.regex)
        # the optimum never costs more than the (simplified) target
        from repro.regex.simplify import simplify

        target_cost = CostFunction.uniform().cost(simplify(target))
        assert result.cost <= max(target_cost, 1)
