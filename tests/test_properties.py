"""Cross-cutting property tests: the whole pipeline on random inputs.

These are the "grand" invariants of the reproduction:

1. Precision — every synthesised regex satisfies its specification
   (verified through the independent derivative matcher *and* the
   independent DFA pipeline).
2. Minimality (semantic) — no regex of strictly smaller cost satisfies
   the spec; cross-checked against the syntactic brute-force oracle in
   test_minimality.py; here we check cost-monotonicity invariants.
3. Engine agreement on arbitrary inputs — see test_engine_equivalence.
"""

from hypothesis import given, settings

from _fixtures import small_specs
from repro import CostFunction, Spec, synthesize
from repro.regex import dfa


@given(small_specs(max_len=3, max_each=4))
@settings(max_examples=25, deadline=None)
def test_precision_via_two_independent_matchers(spec):
    result = synthesize(spec)
    assert result.found
    assert spec.is_satisfied_by(result.regex)  # derivative matcher
    automaton = dfa.from_regex(result.regex, spec.alphabet or ("0", "1"))
    for word in spec.positive:
        assert automaton.accepts(word)
    for word in spec.negative:
        assert not automaton.accepts(word)


@given(small_specs(max_len=3, max_each=4))
@settings(max_examples=20, deadline=None)
def test_reported_cost_is_consistent(spec):
    cost_fn = CostFunction.uniform()
    result = synthesize(spec, cost_fn=cost_fn)
    assert result.found
    assert cost_fn.cost(result.regex) == result.cost
    assert result.cost <= cost_fn.overfit_cost(spec.positive)


@given(small_specs(max_len=3, max_each=3))
@settings(max_examples=15, deadline=None)
def test_scaling_cost_function_scales_optimum(spec):
    """Doubling every constructor cost must exactly double the optimal
    cost — optima are invariant under uniform scaling."""
    base = synthesize(spec, cost_fn=CostFunction.uniform())
    doubled = synthesize(spec, cost_fn=CostFunction.from_tuple((2, 2, 2, 2, 2)))
    assert base.found and doubled.found
    assert doubled.cost == 2 * base.cost


@given(small_specs(max_len=3, max_each=3))
@settings(max_examples=15, deadline=None)
def test_adding_negative_examples_never_cheapens(spec):
    """Shrinking the feasible set can only keep or raise the optimum."""
    result = synthesize(spec)
    assert result.found
    # find a word misclassified by nothing: add a fresh negative that the
    # current optimum accepts, if any exists among short words
    from repro.regex.derivatives import matches

    candidates = [
        w
        for w in ("0", "1", "00", "01", "10", "11", "000", "111")
        if w not in spec.positive and w not in spec.negative
        and matches(result.regex, w)
    ]
    if not candidates:
        return
    harder = Spec(spec.positive, spec.negative + (candidates[0],),
                  alphabet=spec.alphabet)
    harder_result = synthesize(harder)
    assert harder_result.found
    assert harder_result.cost >= result.cost


@given(small_specs(max_len=3, max_each=4))
@settings(max_examples=15, deadline=None)
def test_universe_independence_of_backend(spec):
    scalar = synthesize(spec, backend="scalar")
    vector = synthesize(spec, backend="vector")
    assert scalar.universe_size == vector.universe_size
    assert scalar.padded_bits == vector.padded_bits
    assert scalar.regex == vector.regex
