"""Stress and property tests for ``PackedKeySet`` under service-like
lifetimes.

The one-shot synthesis path fills a set and throws it away; the service
keeps worker sessions (and their engines' dedupe sets) alive for hours,
so the set must stay correct at high load factors, across many resize
generations, and under duplicate-heavy, multi-lane batches.  Every test
checks the one contract the engines rely on: ``insert_batch`` returns
the *first-occurrence* novelty mask — exactly what sequential inserts
into a Python ``set`` would report — regardless of table pressure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashset import _LANE_MIX, FingerprintHashSet, PackedKeySet


def reference_mask(rows):
    """First-occurrence novelty of each row, via a Python set."""
    seen = set()
    mask = []
    for row in rows:
        key = tuple(int(v) for v in row)
        mask.append(key not in seen)
        seen.add(key)
    return np.array(mask, dtype=bool)


def insert_all(key_set, rows, batch_size):
    """Feed ``rows`` through ``insert_batch`` in ``batch_size`` chunks."""
    masks = []
    for start in range(0, rows.shape[0], batch_size):
        masks.append(key_set.insert_batch(rows[start:start + batch_size]))
    return np.concatenate(masks) if masks else np.zeros(0, dtype=bool)


class TestHighLoadFactor:
    @pytest.mark.parametrize("max_load", [0.5, 0.75, 0.9, 0.99])
    def test_novelty_mask_correct_near_the_load_limit(self, max_load):
        rng = np.random.default_rng(int(max_load * 100))
        key_set = PackedKeySet(lanes=1, initial_capacity=2,
                               max_load=max_load)
        # Heavy duplication: keys drawn from a small universe, so the
        # table sits at its load limit while batches keep probing.
        rows = rng.integers(0, 500, size=(4000, 1), dtype=np.uint64)
        mask = insert_all(key_set, rows, batch_size=256)
        assert (mask == reference_mask(rows)).all()
        assert len(key_set) == len({int(v) for v in rows[:, 0]})
        assert len(key_set) <= max_load * key_set.capacity

    def test_sustained_growth_over_many_resize_generations(self):
        rng = np.random.default_rng(11)
        key_set = PackedKeySet(lanes=2, initial_capacity=2, max_load=0.6)
        seen = set()
        generations = 0
        for round_index in range(40):
            capacity_before = key_set.capacity
            rows = rng.integers(0, 1 << 62, size=(257, 2), dtype=np.uint64)
            # Re-insert some already-present keys alongside fresh ones.
            if seen:
                old = np.array(list(seen)[: len(seen) // 2],
                               dtype=np.uint64).reshape(-1, 2)
                rows = np.concatenate([rows, old])
            mask = key_set.insert_batch(rows)
            expected = []
            for row in rows:
                key = (int(row[0]), int(row[1]))
                expected.append(key not in seen)
                seen.add(key)
            assert (mask == np.array(expected)).all()
            if key_set.capacity != capacity_before:
                generations += 1
        assert generations >= 5, "the test must actually cross resizes"
        assert len(key_set) == len(seen)

    def test_resize_preserves_membership(self):
        key_set = PackedKeySet(lanes=1, initial_capacity=2, max_load=0.6)
        first = np.arange(100, dtype=np.uint64).reshape(-1, 1)
        assert key_set.insert_batch(first).all()
        # A large batch forces an immediate multi-doubling reserve; all
        # old keys must survive the rehash (re-inserting reports them
        # as duplicates).
        big = np.arange(5000, dtype=np.uint64).reshape(-1, 1)
        mask = key_set.insert_batch(big)
        assert not mask[:100].any()
        assert mask[100:].all()
        assert len(key_set) == 5000


def colliding_rows(count, constant=0xDEADBEEF):
    """``count`` *distinct* 2-lane keys engineered to share one
    fingerprint (and hence one home slot and probe step).

    The two-tier set folds lanes as ``acc = l0 ^ l1 * M1`` before the
    splitmix64 finaliser, so every row ``(C ^ y * M1, y)`` hashes to the
    fingerprint of ``C`` — the worst case for fingerprint-first probing:
    tier 1 reports a hit for every pair, and only the full-key fallback
    can tell the keys apart.
    """
    y = np.arange(1, count + 1, dtype=np.uint64)
    l0 = np.uint64(constant) ^ (y * _LANE_MIX[0])
    return np.stack([l0, y], axis=1)


class TestEngineeredFingerprintCollisions:
    def test_all_rows_share_a_fingerprint(self):
        key_set = PackedKeySet(lanes=2)
        rows = colliding_rows(50)
        fps = key_set._fingerprints(rows)
        assert len(set(fps.tolist())) == 1
        assert len(set(map(tuple, rows.tolist()))) == 50

    def test_full_key_fallback_keeps_the_novelty_mask_exact(self):
        key_set = PackedKeySet(lanes=2, initial_capacity=4)
        distinct = colliding_rows(120)
        # Interleave duplicates between fresh colliding keys, in one
        # batch and across batches.
        rows = np.concatenate([
            distinct[:40],
            distinct[10:50],   # 30 duplicates + 10 fresh
            distinct[:120],    # 50 duplicates + 70 fresh
        ])
        mask = insert_all(key_set, rows, batch_size=64)
        assert (mask == reference_mask(rows)).all()
        assert len(key_set) == 120

    def test_collisions_survive_rehash(self):
        """Growing the table re-homes every colliding key through the
        no-novelty rehash; membership answers must be unchanged."""
        key_set = PackedKeySet(lanes=2, initial_capacity=2, max_load=0.5)
        distinct = colliding_rows(300)
        assert key_set.insert_batch(distinct[:20]).all()
        capacity_before = key_set.capacity
        assert key_set.insert_batch(distinct).sum() == 280
        assert key_set.capacity > capacity_before
        assert not key_set.insert_batch(distinct).any()
        assert len(key_set) == 300

    def test_collisions_mixed_with_random_keys(self):
        rng = np.random.default_rng(7)
        key_set = PackedKeySet(lanes=2, initial_capacity=4)
        rows = np.concatenate([
            colliding_rows(100),
            rng.integers(0, 1 << 60, size=(400, 2), dtype=np.uint64),
            colliding_rows(100),  # all duplicates
        ])
        mask = insert_all(key_set, rows, batch_size=128)
        assert (mask == reference_mask(rows)).all()


class TestAdversarialBatches:
    def test_single_batch_entirely_duplicates(self):
        key_set = PackedKeySet(lanes=1, initial_capacity=4)
        rows = np.zeros((64, 1), dtype=np.uint64)
        mask = key_set.insert_batch(rows)
        assert mask[0] and not mask[1:].any()
        assert len(key_set) == 1

    def test_contended_slots_resolve_in_batch_order(self):
        # Keys engineered to collide modulo the tiny table: every probe
        # round contends for the same slots, exercising the
        # lowest-batch-index-wins arbitration.
        key_set = PackedKeySet(lanes=1, initial_capacity=4, max_load=0.9)
        rows = np.array([[v] for v in (0, 0, 1, 1, 2, 2, 0, 3)],
                        dtype=np.uint64)
        mask = key_set.insert_batch(rows)
        assert (mask == reference_mask(rows)).all()

    def test_empty_batch_is_a_no_op(self):
        key_set = PackedKeySet(lanes=3)
        mask = key_set.insert_batch(np.zeros((0, 3), dtype=np.uint64))
        assert mask.shape == (0,)
        assert len(key_set) == 0

    def test_wrong_shape_rejected(self):
        key_set = PackedKeySet(lanes=2)
        with pytest.raises(ValueError):
            key_set.insert_batch(np.zeros((4, 3), dtype=np.uint64))


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=30), min_size=0, max_size=300
    ),
    lanes=st.integers(min_value=1, max_value=4),
    batch_size=st.integers(min_value=1, max_value=64),
    max_load=st.floats(min_value=0.3, max_value=0.95),
)
def test_property_matches_python_set(values, lanes, batch_size, max_load):
    """insert_batch ≡ sequential Python-set inserts, for any chunking,
    lane width, and load limit (duplicate-heavy by construction)."""
    rows = np.zeros((len(values), lanes), dtype=np.uint64)
    for i, value in enumerate(values):
        # Spread the small value across lanes so every lane matters.
        for lane in range(lanes):
            rows[i, lane] = (value * (lane + 7) + lane) & ((1 << 64) - 1)
    key_set = PackedKeySet(lanes=lanes, initial_capacity=2,
                           max_load=max_load)
    mask = insert_all(key_set, rows, batch_size)
    assert (mask == reference_mask(rows)).all()
    assert len(key_set) == len(set(values))


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=(1 << 200)),
        min_size=0, max_size=200,
    )
)
def test_property_fingerprint_set_matches_python_set(keys):
    """The scalar set stays correct for arbitrary-width (wide) keys —
    the long-lived scalar-engine counterpart."""
    hash_set = FingerprintHashSet(initial_capacity=2, max_load=0.6)
    seen = set()
    for key in keys:
        assert hash_set.insert(key) == (key not in seen)
        seen.add(key)
    assert len(hash_set) == len(seen)
    for key in seen:
        assert key in hash_set


class TestContainsBatch:
    """The shard workers' read-only membership probe."""

    def test_never_mutates(self):
        rng = np.random.RandomState(11)
        stored = rng.randint(0, 1 << 16, size=(400, 2)).astype(np.uint64)
        probes = rng.randint(0, 1 << 16, size=(300, 2)).astype(np.uint64)
        key_set = PackedKeySet(2, initial_capacity=4)
        key_set.insert_batch(stored)
        size_before = len(key_set)
        present = key_set.contains_batch(probes)
        assert len(key_set) == size_before
        model = {tuple(int(v) for v in row) for row in stored}
        for row, flag in zip(probes, present):
            assert bool(flag) == (tuple(int(v) for v in row) in model)

    def test_within_batch_duplicates_stay_absent(self):
        key_set = PackedKeySet(1)
        rows = np.array([[7], [7], [7]], dtype=np.uint64)
        assert not key_set.contains_batch(rows).any()

    def test_empty_set_and_empty_batch(self):
        key_set = PackedKeySet(2)
        rows = np.zeros((0, 2), dtype=np.uint64)
        assert key_set.contains_batch(rows).shape == (0,)
        probe = np.arange(8, dtype=np.uint64).reshape(4, 2)
        assert not key_set.contains_batch(probe).any()

    def test_engineered_fingerprint_collisions(self):
        # Two lanes whose mixed fingerprints collide must still compare
        # as distinct full keys in tier 2.
        key_set = PackedKeySet(2, initial_capacity=4)
        mix = int(_LANE_MIX[0])
        base = np.array([[5, 9]], dtype=np.uint64)
        twin_first = (5 ^ (9 * mix) ^ (11 * mix)) & ((1 << 64) - 1)
        twin = np.array([[twin_first, 11]], dtype=np.uint64)
        key_set.insert_batch(base)
        assert key_set.contains_batch(base).all()
        assert not key_set.contains_batch(twin).any()

    def test_wrong_shape_rejected(self):
        key_set = PackedKeySet(3)
        with pytest.raises(ValueError):
            key_set.contains_batch(np.zeros((4, 2), dtype=np.uint64))


class TestInsertNovelBatch:
    """Bulk adoption of pre-filtered novel keys (the shard workers'
    confirmed-set sync path)."""

    def test_equivalent_to_insert_batch(self):
        rng = np.random.RandomState(5)
        rows = np.unique(
            rng.randint(0, 1 << 20, size=(600, 2)).astype(np.uint64), axis=0
        )
        rng.shuffle(rows)
        reference = PackedKeySet(2, initial_capacity=4)
        reference.insert_batch(rows)
        bulk = PackedKeySet(2, initial_capacity=4)
        for start in range(0, rows.shape[0], 97):
            bulk.insert_novel_batch(rows[start:start + 97])
        assert len(bulk) == len(reference) == rows.shape[0]
        # The dense logs may order contended keys differently (bulk
        # adoption appends in batch order; insert_batch appends in
        # claim-resolution order) — membership must agree exactly.
        assert np.array_equal(
            np.sort(bulk.keys(), axis=0), np.sort(reference.keys(), axis=0)
        )
        probes = np.concatenate(
            [rows, rng.randint(1 << 21, 1 << 22, size=(50, 2)).astype(np.uint64)]
        )
        assert np.array_equal(
            bulk.contains_batch(probes), reference.contains_batch(probes)
        )
        # The adopted keys also dedupe exactly through insert_batch.
        assert not bulk.insert_batch(rows[:100]).any()

    def test_triggers_growth(self):
        rows = np.arange(4096, dtype=np.uint64).reshape(-1, 1)
        key_set = PackedKeySet(1, initial_capacity=4)
        key_set.insert_novel_batch(rows)
        assert len(key_set) == 4096
        assert key_set.contains_batch(rows).all()
        assert key_set.capacity >= 4096 / 0.6

    def test_empty_and_wrong_shape(self):
        key_set = PackedKeySet(2)
        key_set.insert_novel_batch(np.zeros((0, 2), dtype=np.uint64))
        assert len(key_set) == 0
        with pytest.raises(ValueError):
            key_set.insert_novel_batch(np.zeros((1, 3), dtype=np.uint64))
