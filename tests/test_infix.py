"""Infix-closure and shortlex tests (Defs. 2.2/2.5), incl. properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from _fixtures import words
from repro.language.infix import (
    all_infixes,
    infix_closure,
    is_infix_closed,
    shortlex_key,
    sort_shortlex,
)


class TestAllInfixes:
    def test_empty_word(self):
        assert all_infixes("") == {""}

    def test_single_char(self):
        assert all_infixes("a") == {"", "a"}

    def test_paper_example_heterogeneity(self):
        # ic({aaa, aa}) is smaller than ic({abc, de}) (§4.3).
        assert infix_closure(["aaa", "aa"]) == {"aaa", "aa", "a", ""}
        assert infix_closure(["abc", "de"]) == {
            "abc", "ab", "bc", "de", "a", "b", "c", "d", "e", "",
        }

    def test_count_for_distinct_characters(self):
        # A word with n distinct characters has n(n+1)/2 + 1 infixes.
        assert len(all_infixes("abcd")) == 4 * 5 // 2 + 1


class TestInfixClosure:
    def test_empty_set(self):
        assert infix_closure([]) == {""}

    def test_always_contains_epsilon(self):
        assert "" in infix_closure(["01"])

    def test_example36(self):
        # The paper's Example 3.6: ic(P ∪ N) has exactly 15 elements.
        words_ = ["1", "011", "1011", "11011", "", "10", "101", "0011"]
        closure = infix_closure(words_)
        expected = {
            "11011", "1101", "110", "11", "1011", "101", "10", "1",
            "011", "01", "0011", "001", "00", "0", "",
        }
        assert closure == expected

    def test_is_infix_closed(self):
        assert is_infix_closed({"", "a", "aa"})
        assert not is_infix_closed({"aa"})
        assert is_infix_closed(infix_closure(["0101", "11"]))

    @given(st.lists(words(max_size=5), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_closure_is_a_closure_operator(self, word_list):
        closure = infix_closure(word_list)
        # extensive
        assert set(word_list) <= closure
        # closed
        assert is_infix_closed(closure)
        # idempotent
        assert infix_closure(closure) == closure

    @given(st.lists(words(max_size=4), max_size=4),
           st.lists(words(max_size=4), max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, smaller, extra):
        assert infix_closure(smaller) <= infix_closure(smaller + extra)


class TestShortlex:
    def test_sorts_by_length_first(self):
        out = sort_shortlex(["11", "0", "", "1", "00"], "01")
        assert out == ["", "0", "1", "00", "11"]

    def test_respects_alphabet_order(self):
        assert sort_shortlex(["a", "b"], "ba") == ["b", "a"]

    def test_deduplicates(self):
        assert sort_shortlex(["0", "0", "1"], "01") == ["0", "1"]

    @given(st.lists(words(max_size=5), min_size=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_total_order(self, word_list):
        rank = {"0": 0, "1": 1}
        out = sort_shortlex(word_list, "01")
        keys = [shortlex_key(w, rank) for w in out]
        assert keys == sorted(keys)
        # strictly increasing (duplicates removed)
        assert all(a < b for a, b in zip(keys, keys[1:]))
