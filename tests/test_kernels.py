"""Kernel-equivalence property tests.

The vectorised engine's array-level kernels (flat-gather concat, masked
star, batched dedupe) must agree bit-for-bit with the scalar oracles
``concat_cs`` / ``star_cs`` / Python's ``set`` on arbitrary CS batches —
including multi-lane universes, where the packed representation spans
several uint64 words per row.  See ``docs/ARCHITECTURE.md`` for the
kernel design these tests pin down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _fixtures import words
from repro.core.bitops import (
    bitslice_rows,
    concat_cs,
    int_to_lanes,
    ints_to_matrix,
    lanes_to_int,
    star_cs,
    unbitslice_rows,
)
from repro.core.hashset import PackedKeySet, splitmix64, splitmix64_array
from repro.core.vector_engine import _Kernels
from repro.language.guide_table import GuideTable
from repro.language.universe import Universe

# A single-lane and a multi-lane setting (the latter mirrors
# tests/test_wide_universe.py: long heterogeneous words make
# ic(P ∪ N) exceed 64 words, so CSs span several uint64 lanes).
NARROW_WORDS = ["1101", "0010", "111"]
WIDE_WORDS = ["0110100101", "1010010110", "0011001100"]


@pytest.fixture(scope="module", params=["narrow", "wide"])
def setting(request):
    base = NARROW_WORDS if request.param == "narrow" else WIDE_WORDS
    universe = Universe(base)
    guide = GuideTable(universe)
    return universe, guide, _Kernels(universe, guide)


def cs_batches(universe, max_rows=24):
    """Strategy: batches of random CSs over ``universe``."""
    cs = st.integers(min_value=0, max_value=(1 << universe.n_words) - 1)
    return st.lists(cs, min_size=1, max_size=max_rows)


class TestFlatConcat:
    def test_wide_setting_is_multilane(self):
        universe = Universe(WIDE_WORDS)
        assert universe.lanes >= 2

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_oracle(self, setting, data):
        universe, guide, kernels = setting
        lefts = data.draw(cs_batches(universe))
        rights = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << universe.n_words) - 1),
                min_size=len(lefts),
                max_size=len(lefts),
            )
        )
        left_m = ints_to_matrix(lefts, universe.lanes)
        right_m = ints_to_matrix(rights, universe.lanes)
        out = kernels.concat(left_m, right_m)
        for k in range(len(lefts)):
            assert lanes_to_int(out[k]) == concat_cs(lefts[k], rights[k], guide)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_split_blocking_is_transparent(self, setting, data):
        """A tiny split-block budget (maximal blocking) must not change
        the result of the concat kernel."""
        universe, guide, kernels = setting
        blocked = _Kernels(universe, guide, split_block_bytes=1)
        lefts = data.draw(cs_batches(universe, max_rows=8))
        left_m = ints_to_matrix(lefts, universe.lanes)
        assert np.array_equal(
            kernels.concat(left_m, left_m), blocked.concat(left_m, left_m)
        )

    def test_empty_batch(self, setting):
        universe, _, kernels = setting
        empty = np.zeros((0, universe.lanes), dtype=np.uint64)
        assert kernels.concat(empty, empty).shape == (0, universe.lanes)


class TestPlanePairConcat:
    """The plane-resident pair kernel: level planes in, pair planes out."""

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_oracle_over_all_pairs(self, setting, data):
        universe, guide, kernels = setting
        lefts = data.draw(cs_batches(universe, max_rows=10))
        rights = data.draw(cs_batches(universe, max_rows=13))
        left_planes = bitslice_rows(
            ints_to_matrix(lefts, universe.lanes), universe.n_words
        )
        right_planes = bitslice_rows(
            ints_to_matrix(rights, universe.lanes), universe.n_words
        )
        n_a, n_b = len(lefts), len(rights)
        b8 = right_planes.shape[1]
        planes = kernels.concat_pair_planes(left_planes, right_planes, 0, n_a)
        padded = unbitslice_rows(planes, n_a * b8 * 8, universe.lanes)
        rows = padded.reshape(n_a, b8 * 8, universe.lanes)[:, :n_b]
        for i in range(n_a):
            for j in range(n_b):
                assert lanes_to_int(rows[i, j]) == concat_cs(
                    lefts[i], rights[j], guide
                ), (i, j)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_left_blocks_agree_with_the_full_pairing(self, setting, data):
        universe, _, kernels = setting
        lefts = data.draw(cs_batches(universe, max_rows=9))
        rights = data.draw(cs_batches(universe, max_rows=6))
        left_planes = bitslice_rows(
            ints_to_matrix(lefts, universe.lanes), universe.n_words
        )
        right_planes = bitslice_rows(
            ints_to_matrix(rights, universe.lanes), universe.n_words
        )
        n_a = len(lefts)
        full = kernels.concat_pair_planes(left_planes, right_planes, 0, n_a)
        split = data.draw(st.integers(min_value=0, max_value=n_a))
        parts = [
            kernels.concat_pair_planes(left_planes, right_planes, 0, split),
            kernels.concat_pair_planes(left_planes, right_planes, split, n_a),
        ]
        assert np.array_equal(full, np.concatenate(parts, axis=1))


class TestMaskedStar:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_oracle(self, setting, data):
        universe, guide, kernels = setting
        batch = data.draw(cs_batches(universe))
        packed = ints_to_matrix(batch, universe.lanes)
        out = kernels.star(packed)
        for k, cs in enumerate(batch):
            assert lanes_to_int(out[k]) == star_cs(cs, guide, universe)

    def test_mixed_convergence_speeds(self, setting):
        """Rows converging at different iterations (ε converges at once,
        single-char languages keep growing) must not disturb each other
        once the fast rows are masked out."""
        universe, guide, kernels = setting
        batch = [universe.eps_bit, 0]
        for symbol in universe.alphabet:
            batch.append(universe.char_cs(symbol))
        batch.append(universe.full_mask)
        packed = ints_to_matrix(batch, universe.lanes)
        out = kernels.star(packed)
        for k, cs in enumerate(batch):
            assert lanes_to_int(out[k]) == star_cs(cs, guide, universe)


class TestVectorisedDedupe:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_set_oracle(self, data):
        lanes = data.draw(st.integers(min_value=1, max_value=3))
        seen = PackedKeySet(lanes, initial_capacity=4)
        model = set()
        for _ in range(data.draw(st.integers(min_value=1, max_value=4))):
            # A small value pool forces duplicates within and across batches.
            rows = np.asarray(
                data.draw(
                    st.lists(
                        st.lists(
                            st.integers(min_value=0, max_value=6),
                            min_size=lanes,
                            max_size=lanes,
                        ),
                        min_size=0,
                        max_size=40,
                    )
                ),
                dtype=np.uint64,
            ).reshape(-1, lanes)
            novelty = seen.insert_batch(rows)
            for i in range(rows.shape[0]):
                key = rows[i].tobytes()
                assert bool(novelty[i]) == (key not in model)
                model.add(key)
        assert len(seen) == len(model)

    def test_first_occurrence_wins_within_batch(self):
        seen = PackedKeySet(2, initial_capacity=4)
        rows = np.array(
            [[1, 2], [3, 4], [1, 2], [3, 4], [5, 6]], dtype=np.uint64
        )
        assert list(seen.insert_batch(rows)) == [True, True, False, False, True]

    def test_growth_keeps_membership(self):
        seen = PackedKeySet(1, initial_capacity=2)
        first = np.arange(500, dtype=np.uint64).reshape(-1, 1)
        assert seen.insert_batch(first).all()
        assert not seen.insert_batch(first).any()
        assert len(seen) == 500
        assert seen.capacity >= 500 / 0.6


class TestBitSlicing:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_and_planes_match_unpackbits(self, data):
        lanes = data.draw(st.integers(min_value=1, max_value=3))
        n_bits = data.draw(st.integers(min_value=1, max_value=64 * lanes))
        m = data.draw(st.integers(min_value=1, max_value=70))
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << n_bits) - 1),
                min_size=m,
                max_size=m,
            )
        )
        rows = ints_to_matrix(values, lanes)
        planes = bitslice_rows(rows, n_bits)
        assert planes.shape == (8 * ((n_bits + 7) // 8), (m + 7) // 8)
        # Reference: plane w, candidate k == bit w of row k.
        reference = np.unpackbits(
            rows.view(np.uint8), axis=1, count=n_bits, bitorder="little"
        ).T
        unpacked = np.unpackbits(
            planes, axis=1, count=m, bitorder="little"
        )[:n_bits]
        assert np.array_equal(unpacked, reference)
        # Roundtrip (plane rows beyond n_bits zeroed, as the kernel does).
        cleaned = planes.copy()
        cleaned[n_bits:] = 0
        back = unbitslice_rows(cleaned, m, lanes)
        for k, cs in enumerate(values):
            assert lanes_to_int(back[k]) == cs


class TestSplitmixArray:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar(self, values):
        array = np.asarray(values, dtype=np.uint64)
        hashed = splitmix64_array(array)
        assert [int(h) for h in hashed] == [splitmix64(v) for v in values]


class TestPackingHelpers:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_ints_to_matrix_matches_int_to_lanes(self, data):
        lanes = data.draw(st.integers(min_value=1, max_value=4))
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << (64 * lanes)) - 1),
                max_size=16,
            )
        )
        matrix = ints_to_matrix(values, lanes)
        assert matrix.shape == (len(values), lanes)
        assert matrix.dtype == np.uint64
        for k, cs in enumerate(values):
            assert np.array_equal(matrix[k], int_to_lanes(cs, lanes))
            assert lanes_to_int(matrix[k]) == cs


@given(base=st.lists(words(max_size=5), min_size=1, max_size=3))
@settings(max_examples=15, deadline=None)
def test_concat_oracle_on_random_universes(base):
    """End-to-end property over random universes: pack, concat, unpack,
    compare against the scalar oracle row by row."""
    universe = Universe(base, alphabet=("0", "1"))
    guide = GuideTable(universe)
    kernels = _Kernels(universe, guide)
    rng = np.random.default_rng(universe.n_words)
    n = 12
    as_ints = [
        int(v) & universe.full_mask
        for v in rng.integers(0, 1 << 30, size=2 * n)
    ]
    lefts, rights = as_ints[:n], as_ints[n:]
    out = kernels.concat(
        ints_to_matrix(lefts, universe.lanes),
        ints_to_matrix(rights, universe.lanes),
    )
    for k in range(n):
        assert lanes_to_int(out[k]) == concat_cs(lefts[k], rights[k], guide)
