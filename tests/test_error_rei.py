"""Error-tolerant REI tests (paper §5.2), reproducing the published
allowed-error table on the paper's exact specification."""

import pytest

from repro import Spec, synthesize
from repro.eval.tables import ERROR_TABLE_SPEC


class TestPaperErrorTable:
    """The paper's §5.2 table rows that are feasible at Python scale.

    Paper values (cost function (1,1,1,1,1)):

        50%: ∅ (cost 1) · 45%: 1 (cost 1) · 40%: 10? (cost 4)
        35%: 1+(0+1)0 (cost 7) · 30%/25%: (0+11)*1 (cost 8)
        20%: (0+11)*(1+00) (cost 12)
    """

    @pytest.mark.parametrize(
        "error,expected_regex,expected_cost",
        [
            (0.50, "∅", 1),
            (0.45, "1", 1),
            (0.40, "10?", 4),
            (0.35, "1+(0+1)0", 7),
            (0.30, "(0+11)*1", 8),
            (0.25, "(0+11)*1", 8),
            (0.20, "(0+11)*(1+00)", 12),
        ],
    )
    def test_rows(self, error, expected_regex, expected_cost):
        result = synthesize(ERROR_TABLE_SPEC, allowed_error=error)
        assert result.found
        assert result.cost == expected_cost
        assert result.regex_str == expected_regex

    def test_candidate_count_decreases_with_error(self):
        """The paper's headline: synthesis cost drops (roughly
        exponentially) as the allowed error grows."""
        generated = []
        for error in (0.20, 0.30, 0.40, 0.50):
            result = synthesize(ERROR_TABLE_SPEC, allowed_error=error)
            assert result.found
            generated.append(result.generated)
        assert generated == sorted(generated, reverse=True)
        assert generated[0] > 30 * generated[-1]


class TestErrorSemantics:
    def test_zero_error_is_precise(self, intro_spec):
        result = synthesize(intro_spec, allowed_error=0.0)
        assert result.errors() == 0

    def test_error_budget_respected(self):
        spec = Spec(["0", "00", "000"], ["1", "11", "111"])
        for error in (0.0, 1 / 6, 2 / 6, 3 / 6):
            result = synthesize(spec, allowed_error=error)
            assert result.found
            allowed = int(error * spec.n_examples)
            assert result.errors() <= allowed

    def test_relaxation_never_increases_cost(self, intro_spec):
        costs = []
        for error in (0.0, 0.15, 0.30, 0.45):
            result = synthesize(intro_spec, allowed_error=error)
            assert result.found
            costs.append(result.cost)
        assert costs == sorted(costs, reverse=True)

    def test_error_mode_on_scalar_backend(self):
        result = synthesize(ERROR_TABLE_SPEC, allowed_error=0.4,
                            backend="scalar")
        assert result.regex_str == "10?"

    def test_error_with_multibit_threshold(self):
        # 50% of 4 examples: up to 2 misclassifications allowed.
        spec = Spec(["01", "10"], ["0", "1"])
        result = synthesize(spec, allowed_error=0.5)
        assert result.found
        assert spec.errors_of(result.regex) <= 2
