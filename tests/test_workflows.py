"""Workflow lint: every GitHub Actions file must dry-parse and keep the
jobs the repo's CI contract promises.

This is the in-repo half of the CI-of-the-CI: the YAML is parsed with a
plain ``yaml.safe_load`` (an ``act``-style dry parse — a syntax error
or a mis-indented key fails here, before a push ever reaches GitHub),
and the structural assertions pin the contract the docs describe: a
Python-version matrix for the tests, a lint job, a coverage job with a
checked-in floor, benchmark artifact uploads, and a scheduled nightly
full-scale run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOWS_DIR = Path(__file__).parent.parent / ".github" / "workflows"


def load(name: str) -> dict:
    data = yaml.safe_load((WORKFLOWS_DIR / name).read_text(encoding="utf-8"))
    assert isinstance(data, dict), "%s did not parse to a mapping" % name
    return data


def triggers(data: dict):
    # YAML 1.1 parses the bare key ``on`` as boolean True.
    return data.get("on", data.get(True))


def all_steps(job: dict):
    steps = job.get("steps")
    assert isinstance(steps, list) and steps, "job has no steps"
    for step in steps:
        assert isinstance(step, dict)
        assert "run" in step or "uses" in step, "step is neither run nor uses"
    return steps


class TestEveryWorkflowParses:
    def test_directory_is_not_empty(self):
        assert sorted(p.name for p in WORKFLOWS_DIR.glob("*.yml")) == [
            "ci.yml",
            "nightly.yml",
        ]

    @pytest.mark.parametrize(
        "name", [p.name for p in sorted(WORKFLOWS_DIR.glob("*.yml"))]
    )
    def test_dry_parse(self, name):
        data = load(name)
        assert triggers(data), "%s has no trigger" % name
        jobs = data.get("jobs")
        assert isinstance(jobs, dict) and jobs
        for job_name, job in jobs.items():
            assert "runs-on" in job, "%s.%s has no runs-on" % (name, job_name)
            all_steps(job)


class TestCiContract:
    def test_expected_jobs(self):
        jobs = load("ci.yml")["jobs"]
        assert set(jobs) == {
            "lint",
            "tests",
            "coverage",
            "bench-smoke",
            "service-smoke",
            "load-smoke",
            "recovery-smoke",
            "preempt-smoke",
            "obs-smoke",
            "examples-smoke",
        }

    def test_tests_job_is_a_python_matrix(self):
        tests = load("ci.yml")["jobs"]["tests"]
        versions = tests["strategy"]["matrix"]["python-version"]
        assert versions == ["3.10", "3.11", "3.12"]
        assert tests["strategy"]["fail-fast"] is False

    def test_setup_python_uses_pip_caching(self):
        jobs = load("ci.yml")["jobs"]
        for job_name, job in jobs.items():
            setup = [
                s
                for s in job["steps"]
                if str(s.get("uses", "")).startswith("actions/setup-python")
            ]
            assert setup, "%s does not set up python" % job_name
            for step in setup:
                assert step["with"].get("cache") == "pip", (
                    "%s: setup-python without pip caching" % job_name
                )

    def test_bench_jobs_stay_on_the_pinned_interpreter(self):
        jobs = load("ci.yml")["jobs"]
        for job_name in (
            "bench-smoke",
            "service-smoke",
            "load-smoke",
            "recovery-smoke",
            "preempt-smoke",
            "obs-smoke",
        ):
            setup = next(
                s
                for s in jobs[job_name]["steps"]
                if str(s.get("uses", "")).startswith("actions/setup-python")
            )
            assert setup["with"]["python-version"] == "3.11", (
                "%s must pin one interpreter so timings stay comparable"
                % job_name
            )

    def test_lint_job_runs_ruff_and_workflow_lint(self):
        runs = " && ".join(
            str(s.get("run", "")) for s in load("ci.yml")["jobs"]["lint"]["steps"]
        )
        assert "ruff check" in runs
        assert "ruff format --check" in runs
        assert "test_workflows" in runs

    def test_coverage_job_runs_pytest_cov(self):
        runs = " && ".join(
            str(s.get("run", ""))
            for s in load("ci.yml")["jobs"]["coverage"]["steps"]
        )
        assert "--cov=repro" in runs

    def test_bench_smoke_uploads_all_artifacts(self):
        steps = load("ci.yml")["jobs"]["bench-smoke"]["steps"]
        uploaded = {
            s["with"]["path"]
            for s in steps
            if str(s.get("uses", "")).startswith("actions/upload-artifact")
        }
        assert uploaded == {
            "BENCH_kernels.json",
            "BENCH_session.json",
            "BENCH_shard.json",
        }


class TestNightlyContract:
    def test_scheduled_and_dispatchable(self):
        trigger = triggers(load("nightly.yml"))
        assert "workflow_dispatch" in trigger
        crons = [entry["cron"] for entry in trigger["schedule"]]
        assert crons, "nightly workflow has no cron schedule"
        for cron in crons:
            assert len(cron.split()) == 5, "malformed cron %r" % cron

    def test_runs_every_bench_suite_at_full_scale(self):
        steps = load("nightly.yml")["jobs"]["full-bench"]["steps"]
        full_scale_targets = set()
        for step in steps:
            env = step.get("env") or {}
            if env.get("REPRO_BENCH_SCALE") == "full":
                full_scale_targets.add(str(step["run"]))
        joined = " && ".join(full_scale_targets)
        for suite in ("bench_kernels", "bench_session", "bench_shard",
                      "bench_service", "bench_recovery", "bench_load",
                      "bench_obs", "bench_preempt"):
            assert suite in joined, "nightly misses %s" % suite
        runs = " && ".join(str(s.get("run", "")) for s in steps)
        assert "check_perf_ceilings" in runs

    def test_uploads_every_bench_artifact(self):
        steps = load("nightly.yml")["jobs"]["full-bench"]["steps"]
        upload = next(
            s
            for s in steps
            if str(s.get("uses", "")).startswith("actions/upload-artifact")
        )
        assert upload["with"]["path"] == "BENCH_*.json"
        assert upload["with"]["if-no-files-found"] == "error"
        assert upload.get("if") == "always()"

    def test_renders_and_uploads_the_markdown_report(self):
        steps = load("nightly.yml")["jobs"]["full-bench"]["steps"]
        runs = " && ".join(str(s.get("run", "")) for s in steps)
        assert "repro report" in runs
        uploads = [
            s
            for s in steps
            if str(s.get("uses", "")).startswith("actions/upload-artifact")
        ]
        # The report upload comes after the raw-JSON upload, so the raw
        # artifacts survive even when report rendering breaks.
        report = uploads[-1]
        assert report["with"]["path"] == "BENCH-report.md"
        assert report.get("if") == "always()"


class TestObsSmokeContract:
    def test_validates_both_export_formats(self):
        steps = load("ci.yml")["jobs"]["obs-smoke"]["steps"]
        runs = " && ".join(str(s.get("run", "")) for s in steps)
        assert "repro.obs.validate trace" in runs
        assert "repro.obs.validate metrics" in runs
        assert "repro trace" in runs
        assert "test_obs" in runs
        upload = next(
            s
            for s in steps
            if str(s.get("uses", "")).startswith("actions/upload-artifact")
        )
        assert "trace.json" in upload["with"]["path"]
        assert "metrics.txt" in upload["with"]["path"]
        assert "BENCH_obs.json" in upload["with"]["path"]
