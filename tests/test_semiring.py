"""Semiring-law property tests (Def. 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring.semiring import (
    BOOLEAN,
    NATURAL,
    TROPICAL,
)

_ELEMENTS = {
    id(BOOLEAN): st.booleans(),
    id(NATURAL): st.integers(min_value=0, max_value=1000),
    # Integer-valued floats: float addition is not associative in general,
    # but the tropical laws hold exactly on ℤ∪{∞}.
    id(TROPICAL): st.one_of(
        st.just(float("inf")),
        st.integers(min_value=0, max_value=1000).map(float),
    ),
}

_SEMIRINGS = [BOOLEAN, NATURAL, TROPICAL]


@pytest.mark.parametrize("semiring", _SEMIRINGS, ids=["bool", "nat", "trop"])
class TestLaws:
    def _triples(self, semiring):
        return st.tuples(*[_ELEMENTS[id(semiring)]] * 3)

    def test_laws(self, semiring):
        @given(self._triples(semiring))
        @settings(max_examples=80, deadline=None)
        def laws(triple):
            a, b, c = triple
            add, mul = semiring.add, semiring.mul
            zero, one = semiring.zero, semiring.one
            # (S, +, 0) commutative monoid
            assert add(a, add(b, c)) == add(add(a, b), c)
            assert add(a, b) == add(b, a)
            assert add(a, zero) == a
            # (S, ·, 1) monoid
            assert mul(a, mul(b, c)) == mul(mul(a, b), c)
            assert mul(a, one) == a
            assert mul(one, a) == a
            # distributivity
            assert mul(a, add(b, c)) == add(mul(a, b), mul(a, c))
            assert mul(add(a, b), c) == add(mul(a, c), mul(b, c))
            # annihilation
            assert mul(zero, a) == zero
            assert mul(a, zero) == zero

        laws()


class TestSpecifics:
    def test_boolean_identities(self):
        assert BOOLEAN.zero is False
        assert BOOLEAN.one is True
        assert BOOLEAN.is_idempotent_add()

    def test_boolean_closure_total(self):
        assert BOOLEAN.closure(False) is True
        assert BOOLEAN.closure(True) is True

    def test_natural_not_idempotent(self):
        assert not NATURAL.is_idempotent_add()

    def test_natural_closure_only_at_zero(self):
        assert NATURAL.closure(0) == 1
        assert NATURAL.closure(2) is None

    def test_tropical(self):
        assert TROPICAL.add(3.0, 5.0) == 3.0
        assert TROPICAL.mul(3.0, 5.0) == 8.0
        assert TROPICAL.zero == float("inf")
        assert TROPICAL.closure(4.0) == 0.0

    def test_add_all(self):
        assert NATURAL.add_all([1, 2, 3]) == 6
        assert NATURAL.add_all([]) == 0
        assert BOOLEAN.add_all([False, True]) is True
