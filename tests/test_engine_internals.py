"""White-box tests of the search engines' internal invariants."""

import pytest

from repro.core.engine import (
    OP_CHAR,
    OP_CONCAT,
    OP_QUESTION,
    OP_STAR,
    OP_UNION,
)
from repro.core.synthesizer import make_engine
from repro.regex.cost import CostFunction
from repro.spec import Spec


@pytest.fixture(params=["scalar", "vector"])
def finished_engine(request, intro_spec):
    engine = make_engine(intro_spec, CostFunction.uniform(),
                         backend=request.param)
    engine.run(30)
    return engine


class TestCacheInvariants:
    def test_write_once_levels_are_contiguous(self, finished_engine):
        levels = finished_engine.cache.levels
        previous_end = 0
        for cost in levels.costs():
            start, end = levels.bounds(cost)
            assert start == previous_end
            assert end >= start
            previous_end = end

    def test_provenance_operands_precede_their_row(self, finished_engine):
        provenance = finished_engine.cache.provenance
        for index, (op, a, b) in enumerate(provenance):
            if op in (OP_QUESTION, OP_STAR):
                assert 0 <= a < index
            elif op in (OP_CONCAT, OP_UNION):
                assert 0 <= a < index
                assert 0 <= b < index
            elif op == OP_CHAR:
                assert 0 <= a < len(finished_engine.universe.alphabet)

    def test_all_cached_cs_unique(self, finished_engine):
        from repro.core.trace import _cs_at

        seen = set()
        for index in range(len(finished_engine.cache)):
            cs = _cs_at(finished_engine, index)
            assert cs not in seen
            seen.add(cs)

    def test_level_costs_match_provenance_costs(self, finished_engine):
        """Rebuilding each row's regex must yield exactly the row's
        level cost — the dynamic program's core invariant."""
        from repro.core.reconstruct import reconstruct

        cost_fn = CostFunction.uniform()
        levels = finished_engine.cache.levels
        provenance = finished_engine.cache.provenance
        for cost in levels.costs():
            start, end = levels.bounds(cost)
            for index in range(start, end):
                regex = reconstruct(provenance[index], provenance,
                                    finished_engine.universe.alphabet)
                assert cost_fn.cost(regex) == cost

    def test_cs_semantics_match_provenance(self, finished_engine):
        """Every cached CS is exactly its reconstructed regex's language
        restricted to the universe — end-to-end kernel soundness."""
        from repro.core.reconstruct import reconstruct
        from repro.core.trace import _cs_at

        provenance = finished_engine.cache.provenance
        universe = finished_engine.universe
        for index in range(len(finished_engine.cache)):
            regex = reconstruct(provenance[index], provenance,
                                universe.alphabet)
            assert _cs_at(finished_engine, index) == universe.cs_of_regex(regex)


class TestSolutionInvariants:
    def test_solution_is_first_at_its_level(self, finished_engine):
        """No cached CS at the solution's cost level may solve the spec
        — the solution terminated the level immediately."""
        from repro.core.trace import _cs_at

        cost = finished_engine.solution_cost
        # rows stored at the (unfinished) solution level sit past the
        # last complete level's end
        last = finished_engine.cache.levels.last_complete_cost
        assert last is not None and last < cost
        for index in range(len(finished_engine.cache)):
            assert not finished_engine.solves_int(_cs_at(finished_engine, index))

    def test_level_stats_sum_to_generated(self, finished_engine):
        seeded = len(finished_engine.universe.alphabet) + 2  # + ∅, ε
        total = seeded + sum(
            s["generated"] for s in finished_engine.level_stats
        )
        assert total == finished_engine.generated


class TestConstructorOrderWithinLevel:
    def test_questions_precede_stars_precede_concats_precede_unions(self):
        """Algorithm 1 line 12: ``questions ++ stars ++ concats ++
        unions`` — opcode runs within a level must be ordered."""
        order = {OP_QUESTION: 0, OP_STAR: 1, OP_CONCAT: 2, OP_UNION: 3}
        spec = Spec(["10", "101", "100"], ["", "0", "1", "11"])
        engine = make_engine(spec, CostFunction.uniform(), backend="scalar")
        engine.run(30)
        levels = engine.cache.levels
        for cost in levels.costs():
            start, end = levels.bounds(cost)
            ops = [engine.cache.provenance[i][0] for i in range(start, end)]
            ops = [op for op in ops if op in order]
            ranks = [order[op] for op in ops]
            assert ranks == sorted(ranks), "cost level %d" % cost
