"""Thompson-construction NFA unit tests."""

from repro.regex import nfa
from repro.regex.ast import Char, Concat, EMPTY, EPSILON, Question, Star, Union
from repro.regex.parser import parse


class TestConstruction:
    def test_empty_accepts_nothing(self):
        automaton = nfa.from_regex(EMPTY)
        assert not automaton.accepts("")
        assert not automaton.accepts("0")

    def test_epsilon_accepts_only_empty(self):
        automaton = nfa.from_regex(EPSILON)
        assert automaton.accepts("")
        assert not automaton.accepts("0")

    def test_char(self):
        automaton = nfa.from_regex(Char("0"))
        assert automaton.accepts("0")
        assert not automaton.accepts("")
        assert not automaton.accepts("1")
        assert not automaton.accepts("00")

    def test_concat(self):
        automaton = nfa.from_regex(Concat(Char("0"), Char("1")))
        assert automaton.accepts("01")
        assert not automaton.accepts("0")
        assert not automaton.accepts("10")

    def test_union(self):
        automaton = nfa.from_regex(Union(Char("0"), Char("1")))
        assert automaton.accepts("0")
        assert automaton.accepts("1")
        assert not automaton.accepts("01")

    def test_star(self):
        automaton = nfa.from_regex(Star(Char("0")))
        for word in ("", "0", "00", "000"):
            assert automaton.accepts(word)
        assert not automaton.accepts("01")

    def test_question(self):
        automaton = nfa.from_regex(Question(Char("0")))
        assert automaton.accepts("")
        assert automaton.accepts("0")
        assert not automaton.accepts("00")

    def test_nontrivial(self):
        automaton = nfa.from_regex(parse("10(0+1)*"))
        assert automaton.accepts("10")
        assert automaton.accepts("1001")
        assert not automaton.accepts("01")


class TestStructure:
    def test_alphabet(self):
        automaton = nfa.from_regex(parse("0+1a"))
        assert automaton.alphabet == frozenset({"0", "1", "a"})

    def test_epsilon_closure_is_reflexive(self):
        automaton = nfa.from_regex(parse("0"))
        closure = automaton.epsilon_closure({automaton.start})
        assert automaton.start in closure

    def test_step_on_missing_symbol_is_empty(self):
        automaton = nfa.from_regex(parse("0"))
        start = automaton.epsilon_closure({automaton.start})
        assert automaton.step(start, "x") == frozenset()
