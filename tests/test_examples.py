"""Smoke-tests: every example script must run to completion.

The examples are part of the public deliverable; running them in-process
(via runpy) keeps them from rotting as the API evolves.  The slowest
example (the full AlphaRegex head-to-head) is exercised with a reduced
task list instead of end-to-end.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "log_pattern_inference.py",
    "cost_functions.py",
    "error_tolerant.py",
    "interactive_refinement.py",
    "cache_visualization.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example %s printed nothing" % script


def test_quickstart_output_matches_paper(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "10(0+1)*" in out
    assert "precision verified" in out


def test_alpharegex_comparison_one_task(capsys):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "alpharegex_comparison", EXAMPLES_DIR / "alpharegex_comparison.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.TASKS = ["no1"]
    module.main()
    out = capsys.readouterr().out
    assert "no1" in out
