"""Infix-power-series tests (Def. 3.5).

The decisive property: over the Boolean semiring, IPS operations agree
with regex semantics restricted to the universe — `cs_of_regex` is the
oracle.  The optimised engines are tested against IPS in turn (see
test_bitops.py), closing the verification chain.
"""

import pytest
from hypothesis import given, settings

from _fixtures import regexes
from repro.language.universe import Universe
from repro.regex.ast import Concat, Question, Star, Union
from repro.semiring.ips import IPS, IPSSpace
from repro.semiring.semiring import BOOLEAN, NATURAL


@pytest.fixture
def space():
    universe = Universe(["1", "011", "1011", "11011", "", "10", "101", "0011"])
    return IPSSpace(universe, BOOLEAN)


class TestBasics:
    def test_zero_and_one(self, space):
        assert space.zero().support == ()
        assert space.one().support == ("",)

    def test_of_char_absent_from_universe(self):
        universe = Universe(["0"], alphabet=("0", "1"))
        space = IPSSpace(universe, BOOLEAN)
        assert space.of_char("1") == space.zero()

    def test_wrong_length_rejected(self, space):
        with pytest.raises(ValueError):
            IPS(space, (True,))

    def test_cs_roundtrip(self, space):
        series = space.of_words(["1", "11", "011"])
        assert space.from_cs(series.to_cs()) == series

    def test_mixing_spaces_rejected(self, space):
        other = IPSSpace(Universe(["0"]), BOOLEAN)
        with pytest.raises(ValueError):
            space.one() + other.one()


class TestAgainstRegexSemantics:
    @given(regexes(max_leaves=5), regexes(max_leaves=5))
    @settings(max_examples=50, deadline=None)
    def test_sum_is_union(self, r, s):
        universe = Universe(["0110", "1001", "111"])
        space = IPSSpace(universe, BOOLEAN)
        lhs = (space.from_cs(universe.cs_of_regex(r))
               + space.from_cs(universe.cs_of_regex(s)))
        assert lhs.to_cs() == universe.cs_of_regex(Union(r, s))

    @given(regexes(max_leaves=4), regexes(max_leaves=4))
    @settings(max_examples=50, deadline=None)
    def test_product_is_concatenation(self, r, s):
        universe = Universe(["0110", "1001", "111"])
        space = IPSSpace(universe, BOOLEAN)
        lhs = (space.from_cs(universe.cs_of_regex(r))
               * space.from_cs(universe.cs_of_regex(s)))
        assert lhs.to_cs() == universe.cs_of_regex(Concat(r, s))

    @given(regexes(max_leaves=4))
    @settings(max_examples=50, deadline=None)
    def test_star_is_kleene_star(self, r):
        universe = Universe(["0110", "1001", "111"])
        space = IPSSpace(universe, BOOLEAN)
        lhs = space.from_cs(universe.cs_of_regex(r)).star()
        assert lhs.to_cs() == universe.cs_of_regex(Star(r))

    @given(regexes(max_leaves=4))
    @settings(max_examples=30, deadline=None)
    def test_question_is_option(self, r):
        universe = Universe(["0110", "111"])
        space = IPSSpace(universe, BOOLEAN)
        lhs = space.from_cs(universe.cs_of_regex(r)).question()
        assert lhs.to_cs() == universe.cs_of_regex(Question(r))


class TestAlgebraicLaws:
    def test_product_distributes_over_sum(self, space):
        a = space.of_words(["1", "01"])
        b = space.of_words(["0", "10"])
        c = space.of_words(["", "11"])
        assert a * (b + c) == a * b + a * c

    def test_one_is_identity(self, space):
        a = space.of_words(["101", "0"])
        assert a * space.one() == a
        assert space.one() * a == a

    def test_zero_annihilates(self, space):
        a = space.of_words(["101", "0"])
        assert a * space.zero() == space.zero()

    def test_star_fixpoint_equation(self, space):
        # r* = ε + r·r*  (restricted to the universe)
        r = space.of_words(["1", "10"])
        star = r.star()
        assert star == space.one() + r * star


class TestNaturalSemiringIPS:
    def test_counts_split_ambiguity(self):
        universe = Universe(["aa"])
        space = IPSSpace(universe, NATURAL)
        # ({a} ∪ {aa})·({a} ∪ {aa}): "aa" = a·a, so coefficient 1;
        # with r = {ε,a}: "a" has two derivations ε·a and a·ε.
        r = IPS(space, [1 if w in ("", "a") else 0 for w in universe.words])
        product = r * r
        assert product("a") == 2
        assert product("") == 1
