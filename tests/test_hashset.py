"""WarpCore-substitute hash set tests, incl. model-based properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashset import FingerprintHashSet, fingerprint, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_stays_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(value) < 2**64

    def test_avalanche_on_nearby_inputs(self):
        a, b = splitmix64(1), splitmix64(2)
        assert bin(a ^ b).count("1") > 16


class TestFingerprint:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fingerprint(-1)

    def test_wide_keys_fold_lanes(self):
        narrow = fingerprint(123)
        wide = fingerprint(123 + (1 << 200))
        assert narrow != wide

    @given(st.integers(min_value=0, max_value=1 << 300))
    @settings(max_examples=80, deadline=None)
    def test_in_range(self, key):
        assert 0 <= fingerprint(key) < 2**64


class TestHashSet:
    def test_insert_reports_new(self):
        hs = FingerprintHashSet()
        assert hs.insert(7) is True
        assert hs.insert(7) is False
        assert hs.insert(8) is True
        assert len(hs) == 2

    def test_contains(self):
        hs = FingerprintHashSet()
        hs.insert(5)
        assert 5 in hs
        assert 6 not in hs

    def test_capacity_is_power_of_two(self):
        hs = FingerprintHashSet(initial_capacity=1000)
        assert hs.capacity == 1024

    def test_growth(self):
        hs = FingerprintHashSet(initial_capacity=4)
        for key in range(100):
            hs.insert(key)
        assert len(hs) == 100
        assert all(key in hs for key in range(100))
        assert hs.capacity >= 100 / 0.6

    def test_bad_load_factor(self):
        with pytest.raises(ValueError):
            FingerprintHashSet(max_load=1.5)

    def test_iteration(self):
        hs = FingerprintHashSet()
        for key in (3, 1, 4, 1, 5):
            hs.insert(key)
        assert sorted(hs) == [1, 3, 4, 5]

    def test_wide_keys(self):
        hs = FingerprintHashSet()
        big = (1 << 500) | 3
        assert hs.insert(big)
        assert not hs.insert(big)
        assert big in hs

    @given(st.lists(st.integers(min_value=0, max_value=1 << 150), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_model_matches_builtin_set(self, keys):
        hs = FingerprintHashSet(initial_capacity=4)
        model = set()
        for key in keys:
            assert hs.insert(key) == (key not in model)
            model.add(key)
        assert len(hs) == len(model)
        assert sorted(hs) == sorted(model)
