"""Incremental-synthesis tests (the paper's future-work extension)."""

import pytest

from repro.core.incremental import IncrementalSynthesizer
from repro.errors import InvalidSpecError
from repro.spec import Spec


@pytest.fixture
def inc():
    return IncrementalSynthesizer(Spec(["10", "100"], ["", "0", "1"]))


class TestInitial:
    def test_initial_solution(self, inc):
        assert inc.result.found
        assert inc.spec.is_satisfied_by(inc.result.regex)
        assert inc.stats.searches_run == 1
        assert inc.stats.staging_rebuilds == 1


class TestSolutionReuse:
    def test_consistent_positive_skips_search(self, inc):
        regex_before = inc.result.regex
        # "1000" is accepted by any "10·0*-ish" optimum; if the current
        # regex accepts it, no new search may run.
        from repro.regex.derivatives import matches

        word = "1000"
        expected_skip = matches(regex_before, word)
        inc.add_positive(word)
        if expected_skip:
            assert inc.stats.searches_skipped == 1
            assert inc.result.regex == regex_before
        assert inc.spec.is_satisfied_by(inc.result.regex)

    def test_consistent_negative_skips_search(self, inc):
        from repro.regex.derivatives import matches

        regex_before = inc.result.regex
        word = "0110"
        assert not matches(regex_before, word)
        searches_before = inc.stats.searches_run
        inc.add_negative(word)
        assert inc.stats.searches_run == searches_before
        assert inc.stats.searches_skipped == 1
        assert inc.result.regex == regex_before

    def test_skip_preserves_minimality(self, inc):
        """A skipped search must still leave a globally minimal result."""
        from repro import synthesize

        inc.add_negative("0110")  # consistent → skipped
        fresh = synthesize(inc.spec)
        assert fresh.cost == inc.result.cost


class TestStagingReuse:
    def test_covered_word_reuses_staging(self, inc):
        # "00" is an infix of "100": adding it as a *negative* that the
        # current regex misclassifies... it doesn't match, so it skips.
        # Use a covered word that breaks the current regex instead:
        from repro.regex.derivatives import matches

        rebuilds_before = inc.stats.staging_rebuilds
        word = "10"  # already positive; pick a covered breaking word
        candidates = [w for w in ("0", "00", "10", "100", "1")
                      if w not in inc.spec.all_words]
        # fall back: add positive "0" (an infix, currently rejected)
        inc.add_positive("00")
        assert inc.stats.staging_rebuilds == rebuilds_before
        assert inc.spec.is_satisfied_by(inc.result.regex)

    def test_uncovered_word_rebuilds_staging(self, inc):
        rebuilds_before = inc.stats.staging_rebuilds
        inc.add_positive("1111")  # "1111" is not an infix of any example
        assert inc.stats.staging_rebuilds == rebuilds_before + 1
        assert inc.spec.is_satisfied_by(inc.result.regex)

    def test_new_character_rebuilds(self, inc):
        inc.add_negative("2")
        assert "2" in inc.spec.alphabet
        assert inc.spec.is_satisfied_by(inc.result.regex)


class TestRemoval:
    def test_remove_reruns_search(self, inc):
        runs_before = inc.stats.searches_run
        inc.remove_example("100")
        assert inc.stats.searches_run == runs_before + 1
        assert "100" not in inc.spec.all_words
        assert inc.spec.is_satisfied_by(inc.result.regex)

    def test_removing_constraint_never_raises_cost(self, inc):
        cost_before = inc.result.cost
        inc.remove_example("0")
        assert inc.result.cost <= cost_before

    def test_remove_unknown_raises(self, inc):
        with pytest.raises(KeyError):
            inc.remove_example("0101")


class TestGrowthScenario:
    def test_interactive_session(self):
        """A realistic grow-the-spec session stays consistent throughout."""
        inc = IncrementalSynthesizer(Spec(["10"], [""]))
        script = [
            ("pos", "100"), ("neg", "0"), ("pos", "1000"),
            ("neg", "01"), ("neg", "11"), ("pos", "101"),
        ]
        for kind, word in script:
            if kind == "pos":
                inc.add_positive(word)
            else:
                inc.add_negative(word)
            assert inc.result.found
            assert inc.spec.is_satisfied_by(inc.result.regex)
        # incrementality must have saved at least one search
        assert inc.stats.searches_skipped >= 1

    def test_duplicate_add_is_noop_spec(self):
        inc = IncrementalSynthesizer(Spec(["10"], ["0"]))
        inc.add_positive("10")
        assert inc.spec.positive == ("10",)

    def test_conflicting_add_raises(self):
        inc = IncrementalSynthesizer(Spec(["10"], ["0"]))
        with pytest.raises(InvalidSpecError):
            inc.add_negative("10")
