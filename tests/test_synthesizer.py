"""End-to-end synthesis tests: precision, minimality, trivial cases,
statuses, cost functions, reconstruction."""

import pytest

from repro import CostFunction, Spec, synthesize
from repro.regex.ast import EMPTY, EPSILON


BACKENDS = ("scalar", "vector")


@pytest.mark.parametrize("backend", BACKENDS)
class TestPaperExamples:
    def test_intro_example(self, intro_spec, backend):
        result = synthesize(intro_spec, backend=backend)
        assert result.found
        assert result.regex_str == "10(0+1)*"
        assert result.cost == 8

    def test_example36(self, example36_spec, backend):
        result = synthesize(example36_spec, backend=backend)
        assert result.found
        assert result.cost == 7  # (0?1)*1 has cost 7 under (1,1,1,1,1)
        assert example36_spec.is_satisfied_by(result.regex)


@pytest.mark.parametrize("backend", BACKENDS)
class TestTrivialSpecifications:
    def test_empty_positives_gives_empty_language(self, backend):
        result = synthesize(Spec([], ["0", "1"]), backend=backend)
        assert result.found
        assert result.regex == EMPTY
        assert result.cost == 1

    def test_completely_empty_spec(self, backend):
        result = synthesize(Spec([], []), backend=backend)
        assert result.found
        assert result.regex == EMPTY

    def test_only_epsilon_positive(self, backend):
        result = synthesize(Spec([""], ["0", "11"]), backend=backend)
        assert result.found
        assert result.regex == EPSILON
        assert result.cost == 1

    def test_single_char(self, backend):
        result = synthesize(Spec(["0"], ["", "1", "00"]), backend=backend)
        assert result.found
        assert result.regex_str == "0"


@pytest.mark.parametrize("backend", BACKENDS)
class TestPrecision:
    """Synthesised regexes must always satisfy the specification."""

    @pytest.mark.parametrize(
        "pos,neg",
        [
            (["0", "00", "000"], ["", "1", "01", "10"]),
            (["", "01", "0101"], ["0", "1", "010"]),
            (["1", "11", "111"], [""]),
            (["ab", "aab", "abb"], ["", "a", "b", "ba"]),
            (["0"], ["1"]),
        ],
    )
    def test_result_satisfies_spec(self, pos, neg, backend):
        spec = Spec(pos, neg)
        result = synthesize(spec, backend=backend)
        assert result.found
        assert spec.is_satisfied_by(result.regex)
        assert result.errors() == 0

    def test_cost_matches_reported(self, intro_spec, backend):
        cost_fn = CostFunction.from_tuple((2, 3, 4, 1, 2))
        result = synthesize(intro_spec, cost_fn=cost_fn, backend=backend)
        assert result.found
        assert cost_fn.cost(result.regex) == result.cost


@pytest.mark.parametrize("backend", BACKENDS)
class TestCostFunctionEffects:
    def test_expensive_star_avoids_star(self, backend):
        # P = all strings of 0s up to 3; with cheap star the answer is 0*
        # or 00*; making the star cost 50 forbids it within the overfit
        # bound, forcing a star-free (hence union/option) answer.
        spec = Spec(["0", "00", "000"], ["", "1"])
        cheap = synthesize(spec, backend=backend)
        assert "*" in cheap.regex_str
        expensive = synthesize(
            spec,
            cost_fn=CostFunction.from_tuple((1, 1, 50, 1, 1)),
            backend=backend,
        )
        assert expensive.found
        assert "*" not in expensive.regex_str
        assert spec.is_satisfied_by(expensive.regex)

    def test_star_free_via_high_star_cost_matches_paper_claim(self, backend):
        # §5.1: "We can already search in the star-free fragment, by
        # setting cost(∗) high enough."
        spec = Spec(["01", "0011"], ["", "0", "1", "001"])
        result = synthesize(
            spec,
            cost_fn=CostFunction.from_tuple((1, 1, 40, 1, 1)),
            backend=backend,
        )
        assert result.found
        assert "*" not in result.regex_str


@pytest.mark.parametrize("backend", BACKENDS)
class TestStatuses:
    def test_not_found_when_max_cost_too_small(self, intro_spec, backend):
        result = synthesize(intro_spec, max_cost=4, backend=backend)
        assert result.status == "not_found"
        assert result.regex is None

    def test_budget_status(self, intro_spec, backend):
        result = synthesize(intro_spec, max_generated=10, backend=backend)
        assert result.status == "budget"

    def test_oom_with_tiny_cache(self, backend):
        spec = Spec(
            ["0110", "1001", "010010"], ["", "0", "1", "11", "0101", "1010"]
        )
        result = synthesize(spec, max_cache_size=8, backend=backend)
        assert result.status in ("oom", "success")
        if result.status == "oom":
            assert result.regex is None


class TestArguments:
    def test_pair_spec_accepted(self):
        result = synthesize((["0"], ["1"]))
        assert result.found

    def test_unknown_backend(self, tiny_spec):
        with pytest.raises(ValueError):
            synthesize(tiny_spec, backend="tpu")

    def test_backend_aliases(self, tiny_spec):
        assert synthesize(tiny_spec, backend="cpu").backend == "scalar"
        assert synthesize(tiny_spec, backend="gpu").backend == "vector"

    def test_invalid_error(self, tiny_spec):
        with pytest.raises(ValueError):
            synthesize(tiny_spec, allowed_error=1.5)

    def test_result_to_dict(self, tiny_spec):
        data = synthesize(tiny_spec).to_dict()
        assert data["status"] == "success"
        assert data["regex"] == "00?"
        assert isinstance(data["elapsed_seconds"], float)

    def test_result_str(self, tiny_spec):
        assert "00?" in str(synthesize(tiny_spec))


class TestStatistics:
    def test_universe_and_padding_reported(self, intro_spec):
        result = synthesize(intro_spec)
        assert result.universe_size == len(
            __import__("repro.language.universe", fromlist=["Universe"])
            .Universe(intro_spec.all_words).words
        )
        assert result.padded_bits >= result.universe_size
        assert result.padded_bits & (result.padded_bits - 1) == 0

    def test_generated_counts_grow_with_difficulty(self):
        easy = synthesize(Spec(["0"], ["1"]))
        hard = synthesize(Spec(["0110", "1001"], ["", "0", "1", "01", "10"]))
        assert hard.generated > easy.generated

    def test_res_checked_alias(self, tiny_spec):
        result = synthesize(tiny_spec)
        assert result.res_checked == result.generated
