"""Type 1 / Type 2 benchmark-generator tests (§4.3)."""

import pytest

from repro.errors import InvalidSpecError
from repro.suites.generator import (
    PAPER_TYPE1_PARAMS,
    SCALED_TYPE1_PARAMS,
    SCALED_TYPE2_PARAMS,
    _count_strings,
    _decode_string,
    generate_suite,
    generate_type1,
    generate_type2,
)


class TestDecoding:
    def test_shortlex_enumeration(self):
        words = [_decode_string(i, "01") for i in range(7)]
        assert words == ["", "0", "1", "00", "01", "10", "11"]

    def test_count_strings(self):
        assert _count_strings(2, 0) == 1
        assert _count_strings(2, 3) == 1 + 2 + 4 + 8

    def test_decode_covers_all_lengths(self):
        total = _count_strings(2, 3)
        words = {_decode_string(i, "01") for i in range(total)}
        assert len(words) == total
        assert max(len(w) for w in words) == 3


class TestType1:
    def test_deterministic(self):
        assert generate_type1(7) == generate_type1(7)

    def test_different_seeds_differ(self):
        assert generate_type1(1) != generate_type1(2)

    def test_counts_and_bounds(self):
        spec = generate_type1(3, le=4, n_pos=5, n_neg=6)
        assert len(spec.positive) == 5
        assert len(spec.negative) == 6
        assert all(len(w) <= 4 for w in spec.all_words)

    def test_disjoint(self):
        spec = generate_type1(11, le=3, n_pos=6, n_neg=6)
        assert not set(spec.positive) & set(spec.negative)

    def test_infeasible_counts_rejected(self):
        with pytest.raises(InvalidSpecError):
            generate_type1(0, le=1, n_pos=2, n_neg=2)  # only 3 strings exist

    def test_long_string_bias(self):
        # Type 1 favours long strings: with le=6 most samples have
        # length ≥ 5 (those are 96 of 127 strings).
        spec = generate_type1(5, le=6, n_pos=10, n_neg=10)
        long_share = sum(1 for w in spec.all_words if len(w) >= 5) / 20
        assert long_share > 0.5


class TestType2:
    def test_deterministic(self):
        assert generate_type2(7) == generate_type2(7)

    def test_counts(self):
        spec = generate_type2(3, le=4, n_pos=5, n_neg=6)
        assert len(spec.positive) == 5
        assert len(spec.negative) == 6

    def test_short_string_bias_relative_to_type1(self):
        # Type 2 gives each length equal probability, so short strings
        # appear far more often than under Type 1.
        short_t2 = short_t1 = 0
        for seed in range(20):
            t2 = generate_type2(seed, le=6, n_pos=8, n_neg=8)
            t1 = generate_type1(seed, le=6, n_pos=8, n_neg=8)
            short_t2 += sum(1 for w in t2.all_words if len(w) <= 2)
            short_t1 += sum(1 for w in t1.all_words if len(w) <= 2)
        assert short_t2 > short_t1

    def test_epsilon_often_present(self):
        # The paper: "short strings, like ε, are likely to be in most
        # Type 2 specifications".
        hits = sum(
            1
            for seed in range(20)
            if "" in generate_type2(seed, le=5, n_pos=8, n_neg=8).all_words
        )
        assert hits >= 10


class TestSuite:
    def test_names_and_types(self):
        suite = generate_suite(1, 5, SCALED_TYPE1_PARAMS, base_seed=3)
        assert [b.name for b in suite] == [
            "T1-000", "T1-001", "T1-002", "T1-003", "T1-004"
        ]
        assert all(b.benchmark_type == 1 for b in suite)

    def test_parameters_within_ranges(self):
        suite = generate_suite(2, 10, SCALED_TYPE2_PARAMS, base_seed=1)
        lo, hi = SCALED_TYPE2_PARAMS.le_range
        assert all(lo <= b.le <= hi for b in suite)

    def test_deterministic(self):
        a = generate_suite(1, 4, SCALED_TYPE1_PARAMS, base_seed=9)
        b = generate_suite(1, 4, SCALED_TYPE1_PARAMS, base_seed=9)
        assert [x.spec for x in a] == [x.spec for x in b]

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            generate_suite(3, 1)

    def test_paper_params_exist(self):
        assert PAPER_TYPE1_PARAMS.le_range == (0, 7)
        assert PAPER_TYPE1_PARAMS.p_range == (8, 12)
