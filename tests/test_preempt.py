"""Preemption tests: partial checkpoints, the preempt protocol, brownout.

The headline acceptance criteria live in
:class:`TestPartialCheckpointResume` (a run killed at *any* partial
checkpoint resumes mid-level and answers **bit-identically** to an
uninterrupted run, on both backends, with the rework bounded by the
checkpoint interval) and :class:`TestPoolPreemption` (a running pool
job asked to yield checkpoints at the next safe point, requeues at its
prior priority without burning a retry attempt, and its eventual answer
is bit-identical to an unpreempted run).  The admission-layer pieces —
brownout shedding and the saturation-triggered eviction — are tested
pure in :class:`TestBrownout`, and bearer-token auth end-to-end in
:class:`TestAuth`.
"""

import time

import pytest

from repro import EngineConfig, Session, Spec, SynthesisRequest
from repro.core.engine import STATUS_PREEMPTED
from repro.server import (
    CLASS_BATCH,
    CLASS_INTERACTIVE,
    AdmissionController,
    HttpServiceClient,
    ServerError,
    SynthesisServer,
)
from repro.service import CheckpointStore, ServiceClient, StoreBackedSession
from repro.service.pool import WorkerPool
from repro.testing import faults

#: Small but non-trivial: five full cost levels before the solution.
SPEC = Spec(positive=["00", "010", "0110"], negative=["", "11", "101"])

#: ~1.5 s on the scalar backend — long enough that the parent can
#: deterministically preempt the attempt mid-run.
SLOW_SPEC = Spec(
    positive=["00110100", "11001011"], negative=["0", "11", "1001001"]
)

BACKENDS = ("vector", "scalar")

#: Result fields that must match bit-for-bit between an unpreempted
#: run and one resumed from a partial checkpoint.
IDENTITY_FIELDS = (
    "status", "regex", "cost", "generated", "unique_cs", "levels_built",
)

#: The vector engine's emit accumulator: safe points are at most one
#: flushed batch apart, so a partial interval is honoured within this.
VECTOR_MAX_BATCH = 1 << 17


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Every test starts and ends with no fault armed."""
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    monkeypatch.delenv(faults.ENV_FAULTS_DIR, raising=False)
    faults.reset()
    yield
    faults.reset()


def assert_identical(resumed, reference):
    for field in IDENTITY_FIELDS:
        assert getattr(resumed, field) == getattr(reference, field), field
    assert resumed.extra["level_stats"] == reference.extra["level_stats"]


def run_with_partials(backend, every=7):
    """A solo run that records every level and partial checkpoint."""
    engine = Session(EngineConfig(backend=backend)).make_engine(
        SynthesisRequest(spec=SPEC)
    )
    levels, partials = [], []

    def snap(cost, start, end):
        levels.append((cost, engine.level_checkpoint(cost, start, end)))
        return False

    engine.on_level = snap
    engine.on_partial = partials.append
    engine.partial_every_candidates = every
    status = engine.run(40)
    reference = (
        status, engine.generated, engine.levels_built, engine.level_stats,
        engine.solution, engine.solution_cost, len(engine.cache),
    )
    return engine, levels, partials, reference


# ----------------------------------------------------------------------
# Mid-level resume from partial checkpoints (the tentpole)
# ----------------------------------------------------------------------
class TestPartialCheckpointResume:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_at_every_partial_point_is_bit_identical(self, backend):
        # Simulates a SIGKILL at each partial checkpoint in turn: a
        # fresh engine restores the completed levels plus that partial
        # and must finish exactly as the uninterrupted run did.
        _, levels, partials, reference = run_with_partials(backend)
        assert reference[0] == "success"
        assert partials, "run produced no partial checkpoints"
        for partial in partials:
            engine = Session(EngineConfig(backend=backend)).make_engine(
                SynthesisRequest(spec=SPEC)
            )
            engine.restore_levels(
                [lv for cost, lv in levels if cost < partial.cost]
            )
            engine.restore_partial(partial)
            status = engine.run(40)
            assert engine.partial_resumes == 1
            assert (
                status, engine.generated, engine.levels_built,
                engine.level_stats, engine.solution, engine.solution_cost,
                len(engine.cache),
            ) == reference, (partial.cost, partial.level_progress)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rework_is_bounded_by_the_checkpoint_interval(self, backend):
        # Consecutive partials within one level may be at most the
        # interval plus one emit batch apart — that distance is exactly
        # the work a crash between partials can lose.
        every = 7
        _, _, partials, _ = run_with_partials(backend, every=every)
        slack = VECTOR_MAX_BATCH if backend == "vector" else 1
        previous = {}
        for partial in partials:
            prior = previous.get(partial.cost)
            if prior is not None:
                assert partial.level_progress - prior <= every + slack
            previous[partial.cost] = partial.level_progress

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partials_reuse_across_backends(self, backend):
        # Enumeration is backend-independent, so a partial written by
        # one backend resumes on the other (same guarantee the level
        # checkpoints already carry).
        other = "scalar" if backend == "vector" else "vector"
        _, levels, partials, _ = run_with_partials(backend)
        reference = Session(EngineConfig(backend=other)).synthesize(SPEC)
        partial = partials[-1]
        engine = Session(EngineConfig(backend=other)).make_engine(
            SynthesisRequest(spec=SPEC)
        )
        engine.restore_levels(
            [lv for cost, lv in levels if cost < partial.cost]
        )
        engine.restore_partial(partial)
        assert engine.run(40) == "success"
        assert engine.solution_cost == reference.cost
        assert engine.generated == reference.generated

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preempt_probe_stops_with_a_partial(self, backend):
        session = Session(EngineConfig(backend=backend))
        engine = session.make_engine(SynthesisRequest(spec=SPEC))
        partials = []
        engine.on_partial = partials.append
        calls = {"n": 0}

        def preempt():
            calls["n"] += 1
            return calls["n"] > 5

        engine.preempt_check = preempt
        assert engine.run(40) == STATUS_PREEMPTED
        assert engine.solution is None
        # Mid-level preemption writes a partial; preemption probed at a
        # level boundary needs none (the completed level is the resume
        # point).  Either way there is something to resume from.
        assert partials or engine.levels_built > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preempted_session_result_is_not_a_final_answer(self, backend):
        events = []
        calls = {"n": 0}
        result = Session(EngineConfig(backend=backend)).synthesize(
            SynthesisRequest(
                spec=SPEC,
                preempt=lambda: next_true(calls),
                on_progress=events.append,
            )
        )
        assert result.status == STATUS_PREEMPTED
        assert result.regex is None
        # The terminal done-event belongs to the attempt that finishes.
        assert not any(event.done for event in events)


def next_true(calls, after=5):
    calls["n"] += 1
    return calls["n"] > after


# ----------------------------------------------------------------------
# Partial records in the checkpoint store
# ----------------------------------------------------------------------
class TestStorePartials:
    def make_partial(self, backend="vector"):
        _, levels, partials, _ = run_with_partials(backend)
        return levels, partials

    def test_completed_level_supersedes_its_partials(self, tmp_path):
        levels, partials = self.make_partial()
        store = CheckpointStore(tmp_path)
        completed = {cost for cost, _ in levels}
        # The last partial sits in the (never-completed) solution level;
        # supersession needs one whose level did finish.
        partial = [p for p in partials if p.cost in completed][0]
        for cost, level in levels:
            if cost < partial.cost:
                store.append_level("q", level)
        assert store.append_partial("q", partial)
        assert store.load_partial("q").cost == partial.cost
        for cost, level in levels:
            if cost == partial.cost:
                store.append_level("q", level)
        # The finished level covers everything the partial knew.
        assert store.load_partial("q") is None
        assert not store.append_partial("q", partial)

    def test_newer_partial_replaces_older(self, tmp_path):
        _, partials = self.make_partial()
        first, last = partials[0], partials[-1]
        store = CheckpointStore(tmp_path)
        assert store.append_partial("q", first)
        assert store.append_partial("q", last)
        loaded = store.load_partial("q")
        assert (loaded.cost, loaded.level_progress) == (
            last.cost, last.level_progress
        )
        kinds = [r["kind"] for r in store._read_manifest("q")]
        assert kinds.count("partial") == 1

    def test_corrupt_partial_heals_and_keeps_levels(self, tmp_path):
        levels, partials = self.make_partial()
        store = CheckpointStore(tmp_path)
        partial = partials[-1]
        prior = [lv for cost, lv in levels if cost < partial.cost]
        for level in prior:
            store.append_level("q", level)
        store.append_partial("q", partial)
        journal = store._journal_path("q")
        data = bytearray(journal.read_bytes())
        data[-3] ^= 0xFF  # flip a bit inside the partial's payload
        journal.write_bytes(bytes(data))
        assert store.load_partial("q") is None  # digest mismatch → heal
        restored = store.load_levels("q")
        assert [lv.cost for lv in restored] == [lv.cost for lv in prior]

    def test_kill_between_partial_journal_and_manifest(self, tmp_path):
        # The new fault point: the partial's journal bytes land but the
        # manifest never sees them — the store must stay consistent and
        # simply not know about that partial.
        levels, partials = self.make_partial()
        store = CheckpointStore(tmp_path)
        store.append_level("q", levels[0][1])
        faults.inject("checkpoint.append_partial", "raise")
        with pytest.raises(OSError):
            store.append_partial("q", partials[-1])
        assert store.load_partial("q") is None
        assert [lv.cost for lv in store.load_levels("q")] == [1]
        # And a later append works normally.
        assert store.append_partial("q", partials[-1])
        assert store.load_partial("q") is not None


# ----------------------------------------------------------------------
# Store-backed session: preempt, journal, resume
# ----------------------------------------------------------------------
class TestStoreBackedPreemption:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_preempted_run_resumes_bit_identically(self, backend, tmp_path):
        config = EngineConfig(backend=backend)
        reference = Session(config).synthesize(SPEC)
        store = CheckpointStore(tmp_path)
        preempted = StoreBackedSession(
            config, checkpoint_store=store,
            partial_every_candidates=10, partial_every_s=None,
        )
        calls = {"n": 0}
        result = preempted.synthesize(
            SynthesisRequest(spec=SPEC, preempt=lambda: next_true(calls, 12))
        )
        assert result.status == STATUS_PREEMPTED
        assert preempted.partial_saves >= 1
        resumed_session = StoreBackedSession(config, checkpoint_store=store)
        resumed = resumed_session.synthesize(SPEC)
        assert resumed_session.partial_loads == 1
        assert resumed.extra["partial_resumes"] == 1
        assert_identical(resumed, reference)


# ----------------------------------------------------------------------
# Pool protocol: preempt, requeue, resume; jittered backoff
# ----------------------------------------------------------------------
class TestBackoffJitter:
    def test_delay_within_jitter_band(self):
        pool = WorkerPool(workers=1, retry_backoff_s=0.1, retry_jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.1 * 2 ** (attempt - 1)
            for _ in range(16):
                delay = pool._backoff_delay(attempt)
                assert base <= delay <= base * 1.5

    def test_zero_jitter_is_deterministic(self):
        pool = WorkerPool(workers=1, retry_backoff_s=0.1, retry_jitter=0.0)
        assert pool._backoff_delay(1) == pytest.approx(0.1)
        assert pool._backoff_delay(3) == pytest.approx(0.4)

    def test_negative_jitter_is_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=1, retry_jitter=-0.1)


class TestPoolPreemption:
    def arm(self, monkeypatch, tmp_path, spec):
        monkeypatch.setenv(faults.ENV_FAULTS, spec)
        monkeypatch.setenv(faults.ENV_FAULTS_DIR, str(tmp_path / "sentinels"))
        (tmp_path / "sentinels").mkdir(exist_ok=True)
        faults.reset()  # forked workers re-read the environment

    def preempt_once_running(self, client, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if client.preempt(job_id):
                return True
            time.sleep(0.01)
        return False

    def test_preempted_job_resumes_and_matches(self, tmp_path):
        config = EngineConfig(backend="scalar")
        reference = Session(config).synthesize(SLOW_SPEC)
        with ServiceClient(
            workers=1,
            config=config,
            store_dir=str(tmp_path / "store"),
            retry_backoff_s=0.02,
            partial_every_candidates=2_000,
            partial_every_s=None,
        ) as client:
            handle = client.submit(SLOW_SPEC)
            assert self.preempt_once_running(client, handle.job_id)
            result = handle.result(timeout=120)
            stats = client.stats
        assert result.extra["preemptions"] == 1
        # Preemption is scheduling, not failure: the retry budget is
        # untouched and nothing lands in the crash counters.
        assert result.extra["attempts"] == 1
        assert stats["preemptions"] == 1
        assert stats["retries"] == 0
        assert stats["failed"] == 0
        assert_identical(result, reference)

    def test_worker_killed_after_preempt_still_recovers(
        self, monkeypatch, tmp_path
    ):
        # The preempted result is computed, the partial is journaled,
        # and then the worker dies before reporting — the crash-retry
        # path takes over and resumes from the partial checkpoint.
        self.arm(monkeypatch, tmp_path, "pool.worker.preempt:kill:1:once")
        config = EngineConfig(backend="scalar")
        reference = Session(config).synthesize(SLOW_SPEC)
        with ServiceClient(
            workers=1,
            config=config,
            store_dir=str(tmp_path / "store"),
            retry_backoff_s=0.02,
            partial_every_candidates=2_000,
            partial_every_s=None,
        ) as client:
            handle = client.submit(SLOW_SPEC)
            assert self.preempt_once_running(client, handle.job_id)
            result = handle.result(timeout=120)
            stats = client.stats
        assert result.extra["attempts"] == 2
        assert stats["retries"] == 1 and stats["respawns"] == 1
        assert_identical(result, reference)

    def test_preempt_unknown_job_is_false(self, tmp_path):
        with ServiceClient(
            workers=1, store_dir=str(tmp_path / "store")
        ) as client:
            assert not client.preempt("no-such-job")
            assert client.preempt_longest_running() is None


# ----------------------------------------------------------------------
# Admission: brownout state machine (pure, injectable clock)
# ----------------------------------------------------------------------
class TestBrownout:
    def controller(self, **kwargs):
        self.now = [0.0]
        kwargs.setdefault("slots", {CLASS_INTERACTIVE: 1, CLASS_BATCH: 1})
        kwargs.setdefault("max_queue", {CLASS_INTERACTIVE: 4, CLASS_BATCH: 4})
        kwargs.setdefault("brownout_enter_after_s", 2.0)
        kwargs.setdefault("brownout_exit_after_s", 5.0)
        return AdmissionController(clock=lambda: self.now[0], **kwargs)

    def test_enters_only_after_sustained_saturation(self):
        ac = self.controller()
        assert ac.try_admit(CLASS_INTERACTIVE).admitted  # lane now full
        assert ac.interactive_saturated()
        assert ac.try_admit(CLASS_BATCH).admitted  # not sustained yet
        self.now[0] = 1.9
        assert ac.try_admit(CLASS_BATCH).admitted
        self.now[0] = 2.1
        verdict = ac.try_admit(CLASS_BATCH)
        assert not verdict.admitted and verdict.reason == "brownout"
        assert ac.brownout_snapshot() == {"active": True, "rejections": 1}

    def test_interactive_admissions_unaffected(self):
        ac = self.controller()
        assert ac.try_admit(CLASS_INTERACTIVE).admitted
        self.now[0] = 3.0
        assert not ac.try_admit(CLASS_BATCH).admitted
        assert ac.try_admit(CLASS_INTERACTIVE).admitted

    def test_exit_needs_sustained_calm(self):
        ac = self.controller()
        assert ac.try_admit(CLASS_INTERACTIVE).admitted
        self.now[0] = 3.0
        assert not ac.try_admit(CLASS_BATCH).admitted
        ac.release(CLASS_INTERACTIVE)  # calm starts at t=3
        self.now[0] = 7.0
        assert not ac.try_admit(CLASS_BATCH).admitted  # 4 s calm < 5 s
        self.now[0] = 8.1
        assert ac.try_admit(CLASS_BATCH).admitted
        assert ac.brownout_snapshot()["active"] is False

    def test_flap_resets_the_calm_clock(self):
        ac = self.controller()
        assert ac.try_admit(CLASS_INTERACTIVE).admitted
        self.now[0] = 3.0
        assert not ac.try_admit(CLASS_BATCH).admitted
        ac.release(CLASS_INTERACTIVE)
        self.now[0] = 6.0
        assert ac.try_admit(CLASS_INTERACTIVE).admitted  # saturates again
        ac.release(CLASS_INTERACTIVE)  # calm restarts at t=6
        self.now[0] = 10.0
        assert not ac.try_admit(CLASS_BATCH).admitted
        self.now[0] = 11.5
        assert ac.try_admit(CLASS_BATCH).admitted

    def test_brownout_rejection_suggests_retry_after(self):
        ac = self.controller()
        assert ac.try_admit(CLASS_INTERACTIVE).admitted
        self.now[0] = 3.0
        verdict = ac.try_admit(CLASS_BATCH)
        assert verdict.retry_after_s >= 1.0


# ----------------------------------------------------------------------
# Bearer-token auth end to end
# ----------------------------------------------------------------------
class TestAuth:
    @pytest.fixture()
    def server(self, tmp_path):
        with SynthesisServer(
            store_dir=str(tmp_path / "store"),
            interactive_workers=1,
            batch_workers=1,
            auth_token="open-sesame",
        ) as server:
            yield server

    def test_missing_or_wrong_token_is_401(self, server):
        for client in (
            HttpServiceClient(server.address),
            HttpServiceClient(server.address, auth_token="wrong"),
        ):
            with client:
                with pytest.raises(ServerError) as err:
                    client.healthz()
                assert err.value.status == 401

    def test_bearer_token_grants_access(self, server):
        with HttpServiceClient(
            server.address, auth_token="open-sesame"
        ) as client:
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["brownout"] == {"active": False, "rejections": 0}
            result = client.synthesize(SPEC, timeout=120)
            assert result["status"] == "success"

    def test_metrics_exports_preemption_families(self, server):
        with HttpServiceClient(
            server.address, auth_token="open-sesame"
        ) as client:
            text = client.metrics()
        for family in (
            "repro_brownout_active",
            "repro_brownout_rejections_total",
            "repro_preemptions_total",
            "repro_preemption_triggers_total",
        ):
            assert family in text, family
