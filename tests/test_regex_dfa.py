"""DFA pipeline tests: determinisation, minimisation, products,
equivalence, and cross-checks against the derivative matcher."""

import pytest
from hypothesis import given, settings

from _fixtures import regexes, words
from repro.regex import dfa
from repro.regex.ast import Char
from repro.regex.derivatives import matches
from repro.regex.parser import parse


class TestFromRegex:
    def test_accepts_matches_semantics(self):
        automaton = dfa.from_regex(parse("10(0+1)*"), "01")
        assert automaton.accepts("10")
        assert automaton.accepts("1011")
        assert not automaton.accepts("")
        assert not automaton.accepts("01")

    def test_is_complete_over_given_alphabet(self):
        automaton = dfa.from_regex(Char("0"), "01")
        # every state has transitions for both symbols
        for row in automaton.transitions:
            assert set(row) == {"0", "1"}

    def test_symbol_outside_alphabet_rejected(self):
        automaton = dfa.from_regex(Char("0"), "01")
        assert not automaton.accepts("x")


class TestEmptinessAndComplement:
    def test_empty(self):
        assert dfa.from_regex(parse("∅"), "01").is_empty()
        assert not dfa.from_regex(parse("0"), "01").is_empty()

    def test_complement(self):
        automaton = dfa.from_regex(parse("0*"), "01").complement()
        assert automaton.accepts("1")
        assert not automaton.accepts("00")


class TestMinimize:
    def test_minimal_dfa_for_even_zeros(self):
        # Even number of 0s: minimal complete DFA has exactly 2 states.
        automaton = dfa.from_regex(parse("(1*01*0)*1*"), "01")
        minimal = dfa.minimize(automaton)
        assert minimal.n_states == 2
        assert minimal.accepts("00")
        assert not minimal.accepts("0")

    def test_minimization_preserves_language(self):
        automaton = dfa.from_regex(parse("10(0+1)*"), "01")
        minimal = dfa.minimize(automaton)
        assert dfa.equivalent(automaton, minimal)
        assert minimal.n_states <= automaton.n_states


class TestProductsAndEquivalence:
    def test_product_requires_same_alphabet(self):
        a = dfa.from_regex(Char("0"), "0")
        b = dfa.from_regex(Char("1"), "01")
        with pytest.raises(ValueError):
            dfa.product(a, b, "and")

    def test_intersection(self):
        a = dfa.from_regex(parse("0(0+1)*"), "01")   # starts with 0
        b = dfa.from_regex(parse("(0+1)*1"), "01")   # ends with 1
        both = dfa.product(a, b, "and")
        assert both.accepts("01")
        assert both.accepts("011")
        assert not both.accepts("0")
        assert not both.accepts("11")

    def test_union_product(self):
        a = dfa.from_regex(parse("00"), "01")
        b = dfa.from_regex(parse("11"), "01")
        either = dfa.product(a, b, "or")
        assert either.accepts("00")
        assert either.accepts("11")
        assert not either.accepts("01")

    def test_unknown_mode(self):
        a = dfa.from_regex(Char("0"), "01")
        with pytest.raises(ValueError):
            dfa.product(a, a, "xor")

    def test_regex_equivalence_classics(self):
        assert dfa.regex_equivalent(parse("(0+1)*"), parse("(0*1*)*"), "01")
        assert dfa.regex_equivalent(parse("0?"), parse("ε+0"), "01")
        assert not dfa.regex_equivalent(parse("0*"), parse("0?"), "01")


class TestEnumerateWords:
    def test_shortlex_enumeration(self):
        automaton = dfa.from_regex(parse("0*"), "01")
        accepted = list(dfa.enumerate_words(automaton, 3))
        assert accepted == ["", "0", "00", "000"]

    def test_rejected_enumeration(self):
        automaton = dfa.from_regex(parse("(0+1)*"), "01")
        assert list(dfa.enumerate_words(automaton, 2, accepted=False)) == []


class TestAgainstDerivatives:
    @given(regexes(max_leaves=6), words(max_size=5))
    @settings(max_examples=120, deadline=None)
    def test_dfa_agrees_with_derivatives(self, regex, word):
        automaton = dfa.from_regex(regex, "01")
        assert automaton.accepts(word) == matches(regex, word)

    @given(regexes(max_leaves=5))
    @settings(max_examples=40, deadline=None)
    def test_minimize_preserves_language_random(self, regex):
        automaton = dfa.from_regex(regex, "01")
        assert dfa.equivalent(automaton, dfa.minimize(automaton))
